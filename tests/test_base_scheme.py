"""Direct tests of the shared query/reply engine (schemes/base.py)."""

import pytest

from repro.engine import Simulation, SimulationConfig
from repro.net.message import Category, QueryMessage, ReplyMessage


def chain_sim(scheme="pcx", n=6, **overrides):
    defaults = dict(
        scheme=scheme,
        num_nodes=n,
        topology="chain",
        hop_latency_mean=0.001,
        duration=50_000.0,
        warmup=0.0,
        threshold_c=1,
        seed=1,
    )
    defaults.update(overrides)
    sim = Simulation(SimulationConfig(**defaults))
    sim.start()
    sim.env.run(until=0.0)
    return sim


class TestQueryPath:
    def test_query_records_full_path(self):
        sim = chain_sim()
        captured = []
        original = sim.scheme._serve

        def capturing_serve(node, message, version):
            captured.append(list(message.path))
            original(node, message, version)

        sim.scheme._serve = capturing_serve
        sim.scheme.on_local_query(5)
        sim.env.run(until=2.0)
        assert captured == [[5, 4, 3, 2, 1, 0]]

    def test_reply_caches_every_hop(self):
        sim = chain_sim()
        sim.scheme.on_local_query(5)
        sim.env.run(until=2.0)
        for node in (1, 2, 3, 4, 5):
            assert sim.cache(node).peek(sim.key) is not None

    def test_served_midway_when_intermediate_warm(self):
        sim = chain_sim()
        sim.scheme.on_local_query(3)  # warms 1..3
        sim.env.run(until=2.0)
        sim.scheme.on_local_query(5)
        sim.env.run(until=4.0)
        # The second query is served at node 3: 2 request hops.
        assert sim.latency.samples[-1] == 2.0


class TestReplyRerouting:
    def test_reply_skips_departed_hop(self):
        # Drive a reply whose recorded path contains a node that departed
        # while the reply was in flight: the forwarder must skip it.
        sim = chain_sim(n=6)
        version = sim.authority.current
        sim.scheme.on_node_left(3)
        reply = ReplyMessage(
            key=sim.key,
            version=version,
            path=[5, 4, 3, 2, 1, 0],
            position=3,  # currently at node 2; next recorded hop is 3
            request_hops=5,
            issued_at=0.0,
        )
        sim.scheme._handle_reply(2, reply)
        sim.env.run(until=3.0)
        # The reply rerouted around the missing hop; the query completed.
        assert sim.latency.count == 1
        assert sim.latency.samples[0] == 5.0
        assert sim.cache(4).peek(sim.key) is not None
        assert sim.cache(5).peek(sim.key) is not None

    def test_reply_dropped_when_origin_departed(self):
        sim = chain_sim(n=6)
        version = sim.authority.current
        sim.scheme.on_node_left(5)
        reply = ReplyMessage(
            key=sim.key,
            version=version,
            path=[5, 4, 3, 2, 1, 0],
            position=1,  # at node 1; only the departed origin remains
            request_hops=5,
            issued_at=0.0,
        )
        sim.scheme._handle_reply(1, reply)
        sim.env.run(until=3.0)
        assert sim.latency.count == 0
        assert sim._incomplete == 1


class TestPiggybackToggle:
    def test_disabled_piggyback_charges_control(self):
        on = chain_sim("dup", piggyback=True)
        off = chain_sim("dup", piggyback=False)
        for sim in (on, off):
            # subscribe recipe (miss, hit, miss-with-subscription)
            sim.scheme.on_local_query(5)
            sim.env.run(until=3550.0)
            sim.scheme.on_local_query(5)
            sim.env.run(until=3650.0)
            sim.scheme.on_local_query(5)
            sim.env.run(until=3700.0)
            assert sim.scheme.protocol.is_subscribed(5)
        assert on.ledger.hops(Category.CONTROL) == 0
        assert off.ledger.hops(Category.CONTROL) > 0

    def test_both_modes_reach_same_subscription_state(self):
        on = chain_sim("dup", piggyback=True)
        off = chain_sim("dup", piggyback=False)
        for sim in (on, off):
            sim.scheme.on_local_query(5)
            sim.env.run(until=3550.0)
            sim.scheme.on_local_query(5)
            sim.env.run(until=3650.0)
            sim.scheme.on_local_query(5)
            sim.env.run(until=3700.0)
        for node in (0, 1, 2, 3, 4, 5):
            assert set(on.scheme.protocol.s_list(node)) == set(
                off.scheme.protocol.s_list(node)
            )


class TestMessageContracts:
    def test_unexpected_push_rejected_by_passive_scheme(self):
        from repro.net.message import PushMessage

        sim = chain_sim("pcx")
        with pytest.raises(TypeError):
            sim.scheme.on_message(
                3, PushMessage(key=sim.key, version=None, sender=0)
            )

    def test_reply_records_request_hops_not_total(self):
        sim = chain_sim()
        sim.scheme.on_local_query(5)
        sim.env.run(until=3.0)
        # latency is the 5 request hops; cost counts both directions.
        assert sim.latency.samples[0] == 5.0
        assert sim.ledger.total_hops == 10
