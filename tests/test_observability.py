"""Tests of the metrics registry, percentile reporting, and JSONL export."""

import math

import pytest

from repro.cli import main
from repro.engine import Simulation, SimulationConfig, run_simulation
from repro.metrics import (
    LatencyRecorder,
    MetricsRegistry,
    MetricsReport,
    read_jsonl,
    write_jsonl,
)
from repro.metrics.export import export_messages, export_registry
from repro.stats import percentile
from repro.stats.confidence import ConfidenceInterval


class TestPercentileFunction:
    def test_interpolates_like_numpy(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)


class TestLatencyPercentiles:
    def recorder(self, samples):
        recorder = LatencyRecorder(clock=lambda: 10.0)
        for value in samples:
            recorder.record(value, issued_at=5.0)
        return recorder

    def test_percentiles_over_samples(self):
        recorder = self.recorder([0, 0, 0, 0, 2, 5])
        tails = recorder.percentiles()
        assert set(tails) == {"p50", "p95", "p99"}
        assert tails["p50"] == 0.0
        assert tails["p95"] <= tails["p99"] <= 5.0

    def test_requires_kept_samples(self):
        recorder = LatencyRecorder(clock=lambda: 0.0, keep_samples=False)
        recorder.record(1, issued_at=0.0)
        with pytest.raises(RuntimeError):
            recorder.percentile(95)


class TestMetricsRegistry:
    def test_counter_roundtrip(self):
        registry = MetricsRegistry()
        counter = registry.counter("queries")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("queries") is counter
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_callback(self):
        registry = MetricsRegistry()
        manual = registry.gauge("depth")
        manual.set(3.5)
        assert manual.value == 3.5
        live = registry.gauge("pop", fn=lambda: 42.0)
        assert live.value == 42.0
        with pytest.raises(ValueError):
            live.set(1.0)
        with pytest.raises(ValueError):
            registry.gauge("pop", fn=lambda: 0.0)

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in (0, 1, 2, 3, 10):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 5
        assert summary["min"] == 0.0
        assert summary["max"] == 10.0
        assert summary["p50"] == 2.0

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_inspection(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names == ("a", "b")
        assert "a" in registry and "z" not in registry
        assert len(registry) == 2
        with pytest.raises(KeyError):
            registry.get("z")

    def test_snapshot_series(self):
        times = iter([1.0, 2.0])
        registry = MetricsRegistry(clock=lambda: next(times))
        registry.counter("n").inc(7)
        registry.histogram("h").observe(3.0)
        first = registry.record_snapshot()
        assert first["time"] == 1.0
        assert first["values"]["n"] == 7
        assert first["values"]["h"]["count"] == 1
        registry.record_snapshot()
        assert len(registry.snapshots) == 2


class TestMetricsReport:
    def report(self, **overrides):
        defaults = dict(
            scheme="dup",
            queries=100,
            mean_latency=0.25,
            latency_ci=ConfidenceInterval(0.25, 0.05, 0.95, 100),
            cost_per_query=1.5,
            hit_rate=0.8,
            hop_breakdown={"query": 20, "reply": 20},
            latency_percentiles={"p50": 0.0, "p95": 1.0, "p99": 3.0},
            dropped=4,
        )
        defaults.update(overrides)
        return MetricsReport(**defaults)

    def test_row_carries_percentiles_and_drops(self):
        row = self.report().to_row()
        assert row["p50"] == 0.0
        assert row["p95"] == 1.0
        assert row["p99"] == 3.0
        assert row["dropped"] == 4

    def test_str_renders_percentiles_and_drops(self):
        text = str(self.report())
        assert "p50=0" in text and "p95=1" in text and "p99=3" in text
        assert "dropped=4" in text

    def test_str_omits_absent_tails(self):
        text = str(self.report(latency_percentiles={}, dropped=0))
        assert "p95" not in text
        assert "dropped" not in text
        row = self.report(latency_percentiles={}).to_row()
        assert math.isnan(row["p95"])


def small_config(scheme, **overrides):
    defaults = dict(
        scheme=scheme,
        num_nodes=64,
        query_rate=2.0,
        ttl=600.0,
        duration=4_000.0,
        warmup=500.0,
        threshold_c=2,
        seed=3,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestSchemeReports:
    @pytest.mark.parametrize("scheme", ["pcx", "cup", "dup"])
    def test_report_has_tail_percentiles(self, scheme):
        result = run_simulation(small_config(scheme))
        assert set(result.latency_percentiles) == {"p50", "p95", "p99"}
        row = result.report.to_row()
        for key in ("p50", "p95", "p99"):
            assert math.isfinite(row[key])
        assert f"p95={result.latency_percentiles['p95']:.4g}"[:4] in str(
            result
        )


class TestJsonlExport:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "records.jsonl"
        records = [
            {"type": "snapshot", "time": 1.0, "values": {"x": 2}},
            {"type": "snapshot", "time": 2.0, "values": {"x": float("nan")}},
        ]
        assert write_jsonl(str(path), records) == 2
        loaded = read_jsonl(str(path))
        assert loaded[0]["values"]["x"] == 2
        # Non-finite floats become null so any JSON reader can load it.
        assert loaded[1]["values"]["x"] is None

    def test_registry_export_falls_back_to_current(self, tmp_path):
        registry = MetricsRegistry(clock=lambda: 9.0)
        registry.counter("n").inc(3)
        path = tmp_path / "metrics.jsonl"
        assert export_registry(registry, str(path)) == 1
        [record] = read_jsonl(str(path))
        assert record["type"] == "snapshot"
        assert record["time"] == 9.0
        assert record["values"]["n"] == 3

    def test_message_log_export(self, tmp_path):
        from repro.engine.tracing import MessageLog

        sim = Simulation(small_config("pcx", num_nodes=8, topology="chain"))
        sim.start()
        log = MessageLog.attach(sim)
        sim.scheme.on_local_query(7)
        sim.env.run(until=5.0)
        path = tmp_path / "messages.jsonl"
        count = export_messages(log, str(path))
        assert count == len(log) > 0
        records = read_jsonl(str(path))
        assert all(r["type"] == "message" for r in records)
        assert records[0]["category"] == "query"


class TestTraceExportAcceptance:
    """The ISSUE acceptance path: simulate --trace-out yields JSONL where
    every post-warm-up query's reconstructed hop count matches the
    latency the recorder reported for it."""

    def test_simulate_trace_out(self, tmp_path, capsys):
        trace_path = tmp_path / "traces.jsonl"
        code = main(
            [
                "simulate",
                "--scheme",
                "dup",
                "--nodes",
                "64",
                "--rate",
                "2",
                "--duration",
                "4000",
                "--warmup",
                "500",
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace records" in out
        records = read_jsonl(str(trace_path))
        assert records, "no traces exported"
        complete = [r for r in records if r["status"] == "complete"]
        assert complete, "no completed traces"
        for record in complete:
            delivered_request_hops = sum(
                1
                for span in record["spans"]
                if span["category"] == "query"
                and span["status"] == "delivered"
            )
            assert record["latency_hops"] == record["request_hops"]
            assert record["request_hops"] == delivered_request_hops

    def test_simulate_trace_count_matches_recorder(self, tmp_path):
        config = small_config("dup")
        sim = Simulation(config)
        tracer = sim.enable_tracing()
        sim.run()
        assert tracer.completed == sim.latency.count
        assert sorted(tracer.latencies) == sorted(sim.latency.samples)

    def test_metrics_out_snapshots(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.jsonl"
        code = main(
            [
                "simulate",
                "--scheme",
                "pcx",
                "--nodes",
                "32",
                "--rate",
                "1",
                "--duration",
                "2000",
                "--warmup",
                "0",
                "--metrics-out",
                str(metrics_path),
                "--snapshot-interval",
                "500",
            ]
        )
        assert code == 0
        records = read_jsonl(str(metrics_path))
        assert len(records) == 4  # 2000s / 500s
        assert [r["time"] for r in records] == [500.0, 1000.0, 1500.0, 2000.0]
        assert "hops.total" in records[-1]["values"]


class TestObserveCommand:
    def test_observe_runs_and_exports(self, tmp_path, capsys):
        trace_path = tmp_path / "traces.jsonl"
        metrics_path = tmp_path / "metrics.jsonl"
        code = main(
            [
                "observe",
                "--scheme",
                "dup",
                "--nodes",
                "64",
                "--rate",
                "2",
                "--duration",
                "4000",
                "--warmup",
                "500",
                "--trace-out",
                str(trace_path),
                "--metrics-out",
                str(metrics_path),
                "--top",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "latency percentiles (hops):" in out
        assert "traces:" in out
        assert "trace#" in out
        assert trace_path.exists() and metrics_path.exists()
