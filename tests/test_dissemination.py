"""Tests of the dissemination platform (the paper's future-work extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dissemination import DisseminationPlatform
from repro.dissemination.platform import TopicError
from repro.errors import NodeNotFoundError
from repro.sim import Environment
from repro.stats.distributions import Deterministic


def make_platform(n=64, seed=3, env=None):
    env = env or Environment()
    platform = DisseminationPlatform(
        env, num_nodes=n, seed=seed, hop_latency=Deterministic(0.01)
    )
    return env, platform


def collect_deliveries(platform, nodes):
    log = []
    for node in nodes:
        platform.on_delivery(node, log.append)
    return log


class TestTopics:
    def test_create_topic_is_idempotent(self):
        _, platform = make_platform()
        first = platform.create_topic("news")
        second = platform.create_topic("news")
        assert first.authority == second.authority

    def test_distinct_topics_get_distinct_authorities_usually(self):
        _, platform = make_platform(n=64)
        authorities = {
            platform.create_topic(f"topic-{i}").authority for i in range(16)
        }
        assert len(authorities) > 4  # hashing spreads topics over the ring

    def test_unknown_topic_rejected(self):
        _, platform = make_platform()
        with pytest.raises(TopicError):
            platform.subscribe(platform.nodes[0], "nope")

    def test_unknown_node_rejected(self):
        _, platform = make_platform()
        platform.create_topic("news")
        with pytest.raises(NodeNotFoundError):
            platform.subscribe(-1, "news")


class TestDelivery:
    def test_subscriber_receives_publication(self):
        env, platform = make_platform()
        platform.create_topic("news")
        subscriber = platform.nodes[5]
        publisher = platform.nodes[9]
        log = collect_deliveries(platform, [subscriber])
        platform.subscribe(subscriber, "news")
        event_id = platform.publish(publisher, "news", {"headline": "hi"})
        env.run()
        assert len(log) == 1
        delivery = log[0]
        assert delivery.event_id == event_id
        assert delivery.payload == {"headline": "hi"}
        assert delivery.subscriber == subscriber
        assert delivery.publisher == publisher
        assert delivery.delay > 0

    def test_every_subscriber_gets_every_event_once(self):
        env, platform = make_platform(n=80)
        platform.create_topic("news")
        subscribers = list(platform.nodes[::7])
        log = collect_deliveries(platform, subscribers)
        for node in subscribers:
            platform.subscribe(node, "news")
        for index in range(5):
            platform.publish(platform.nodes[1], "news", index)
        env.run()
        got = {(d.subscriber, d.payload) for d in log}
        expected = {(s, i) for s in subscribers for i in range(5)}
        # The authority may be among the subscribers; it sees everything.
        assert got >= expected - {(None, None)}
        assert len(log) == len(got)  # exactly-once

    def test_non_subscribers_receive_nothing(self):
        env, platform = make_platform()
        platform.create_topic("news")
        bystander = platform.nodes[3]
        log = collect_deliveries(platform, [bystander])
        platform.subscribe(platform.nodes[10], "news")
        platform.publish(platform.nodes[11], "news", "x")
        env.run()
        assert log == []

    def test_unsubscribe_stops_delivery(self):
        env, platform = make_platform()
        platform.create_topic("news")
        node = platform.nodes[5]
        log = collect_deliveries(platform, [node])
        platform.subscribe(node, "news")
        platform.publish(platform.nodes[8], "news", "first")
        env.run()
        platform.unsubscribe(node, "news")
        platform.publish(platform.nodes[8], "news", "second")
        env.run()
        assert [d.payload for d in log] == ["first"]

    def test_topics_are_isolated(self):
        env, platform = make_platform()
        platform.create_topic("sports")
        platform.create_topic("weather")
        node = platform.nodes[4]
        log = collect_deliveries(platform, [node])
        platform.subscribe(node, "sports")
        platform.publish(platform.nodes[7], "weather", "rain")
        platform.publish(platform.nodes[7], "sports", "goal")
        env.run()
        assert [d.payload for d in log] == ["goal"]

    def test_subscribe_idempotent(self):
        env, platform = make_platform()
        platform.create_topic("news")
        node = platform.nodes[5]
        platform.subscribe(node, "news")
        hops = platform.stats.control_hops
        platform.subscribe(node, "news")
        assert platform.stats.control_hops == hops

    def test_publisher_can_also_subscribe(self):
        env, platform = make_platform()
        platform.create_topic("news")
        node = platform.nodes[6]
        log = collect_deliveries(platform, [node])
        platform.subscribe(node, "news")
        platform.publish(node, "news", "self")
        env.run()
        assert [d.payload for d in log] == ["self"]


class TestCostModel:
    def test_push_cost_tracks_dup_tree(self):
        env, platform = make_platform(n=64)
        platform.create_topic("news")
        for node in platform.nodes[:8]:
            platform.subscribe(node, "news")
        handle = platform.topic("news")
        expected = handle.dup_tree_edges()
        before = platform.stats.push_hops
        platform.publish(platform.nodes[20], "news", "x")
        env.run()
        assert platform.stats.push_hops - before == expected

    def test_dup_beats_path_union_fanout(self):
        # The SCRIBE comparison from the paper's related work: DUP skips
        # intermediate relays, so its per-event fan-out cost is at most
        # the path-union cost (and usually much lower for sparse groups).
        env, platform = make_platform(n=128)
        platform.create_topic("news")
        rng = np.random.default_rng(5)
        for node in rng.choice(platform.nodes, size=10, replace=False):
            platform.subscribe(int(node), "news")
        dup_cost, scribe_cost = platform.multicast_cost_bound("news")
        assert dup_cost <= scribe_cost
        assert dup_cost > 0

    def test_publish_charges_route_to_authority(self):
        env, platform = make_platform()
        platform.create_topic("news")
        handle = platform.topic("news")
        publisher = next(
            n for n in platform.nodes if n != handle.authority
        )
        depth = None
        # depth of publisher in topic tree:
        topic = platform._require_topic("news")
        depth = topic.tree.depth(publisher)
        before = platform.stats.publish_hops
        platform.publish(publisher, "news", "x")
        assert platform.stats.publish_hops - before == depth


class TestPlatformProperties:
    @given(
        st.integers(8, 60),
        st.integers(0, 2**31),
        st.lists(st.integers(0, 2**31), min_size=1, max_size=25),
    )
    @settings(max_examples=40, deadline=None)
    def test_exactly_once_delivery_for_random_groups(
        self, n, seed, subscription_seeds
    ):
        env = Environment()
        platform = DisseminationPlatform(
            env, num_nodes=n, seed=seed, hop_latency=Deterministic(0.001)
        )
        platform.create_topic("t")
        log = collect_deliveries(platform, platform.nodes)
        subscribed = set()
        for sub_seed in subscription_seeds:
            rng = np.random.default_rng(sub_seed)
            node = int(rng.choice(platform.nodes))
            if node in subscribed and rng.random() < 0.5:
                platform.unsubscribe(node, "t")
                subscribed.discard(node)
            else:
                platform.subscribe(node, "t")
                subscribed.add(node)
        platform.publish(platform.nodes[0], "t", "payload")
        env.run()
        delivered_to = [d.subscriber for d in log]
        assert sorted(delivered_to) == sorted(subscribed)
        assert len(set(delivered_to)) == len(delivered_to)
        assert platform.stats.duplicate_suppressions == 0
