"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import ProcessError, SchedulingError, SimulationError
from repro.sim import AllOf, AnyOf, Environment, Interrupt


class TestEnvironmentBasics:
    def test_clock_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_clock_starts_at_initial_time(self):
        assert Environment(initial_time=5.5).now == 5.5

    def test_run_without_events_returns_none(self):
        env = Environment()
        assert env.run() is None

    def test_run_until_time_advances_clock(self):
        env = Environment()
        env.run(until=42.0)
        assert env.now == 42.0

    def test_run_until_past_time_raises(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(SchedulingError):
            env.run(until=5.0)

    def test_step_without_events_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_peek_empty_queue_is_infinite(self):
        assert Environment().peek() == float("inf")


class TestTimeout:
    def test_timeout_advances_time(self):
        env = Environment()
        env.timeout(3.0)
        env.run()
        assert env.now == 3.0

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SchedulingError):
            env.timeout(-1.0)

    def test_zero_delay_fires_immediately(self):
        env = Environment()
        fired = []
        timeout = env.timeout(0.0, value="go")
        timeout.callbacks.append(lambda e: fired.append(e.value))
        env.run()
        assert fired == ["go"]

    def test_timeouts_fire_in_time_order(self):
        env = Environment()
        order = []
        for delay in (5.0, 1.0, 3.0):
            timeout = env.timeout(delay, value=delay)
            timeout.callbacks.append(lambda e: order.append(e.value))
        env.run()
        assert order == [1.0, 3.0, 5.0]

    def test_ties_fire_in_scheduling_order(self):
        env = Environment()
        order = []
        for tag in ("a", "b", "c"):
            timeout = env.timeout(1.0, value=tag)
            timeout.callbacks.append(lambda e: order.append(e.value))
        env.run()
        assert order == ["a", "b", "c"]


class TestCallLater:
    def test_call_later_invokes_function(self):
        env = Environment()
        calls = []
        env.call_later(2.0, calls.append, "hello")
        env.run()
        assert calls == ["hello"]
        assert env.now == 2.0

    def test_call_later_passes_multiple_args(self):
        env = Environment()
        calls = []
        env.call_later(1.0, lambda a, b: calls.append(a + b), 2, 3)
        env.run()
        assert calls == [5]


class TestProcesses:
    def test_process_runs_to_completion(self):
        env = Environment()
        log = []

        def proc(env):
            yield env.timeout(1.0)
            log.append(env.now)
            yield env.timeout(2.0)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [1.0, 3.0]

    def test_process_return_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            return "done"

        process = env.process(proc(env))
        assert env.run(until=process) == "done"

    def test_timeout_value_is_sent_into_process(self):
        env = Environment()
        got = []

        def proc(env):
            value = yield env.timeout(1.0, value="payload")
            got.append(value)

        env.process(proc(env))
        env.run()
        assert got == ["payload"]

    def test_process_waits_on_other_process(self):
        env = Environment()

        def worker(env):
            yield env.timeout(5.0)
            return 99

        def waiter(env, child):
            result = yield child
            return result + 1

        child = env.process(worker(env))
        parent = env.process(waiter(env, child))
        assert env.run(until=parent) == 100

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(ProcessError):
            env.process(lambda: None)

    def test_yielding_non_event_fails_process(self):
        env = Environment()

        def bad(env):
            yield 42

        env.process(bad(env))
        with pytest.raises(ProcessError):
            env.run()

    def test_exception_in_process_propagates(self):
        env = Environment()

        def boom(env):
            yield env.timeout(1.0)
            raise ValueError("bang")

        env.process(boom(env))
        with pytest.raises(ValueError, match="bang"):
            env.run()

    def test_is_alive_lifecycle(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)

        process = env.process(proc(env))
        assert process.is_alive
        env.run()
        assert not process.is_alive


class TestInterrupt:
    def test_interrupt_delivers_cause(self):
        env = Environment()
        caught = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                caught.append((env.now, interrupt.cause))

        def interrupter(env, target):
            yield env.timeout(1.0)
            target.interrupt("wake up")

        target = env.process(sleeper(env))
        env.process(interrupter(env, target))
        env.run()
        assert caught == [(1.0, "wake up")]

    def test_interrupting_dead_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(0.0)

        process = env.process(quick(env))
        env.run()
        with pytest.raises(SchedulingError):
            process.interrupt()

    def test_interrupted_process_can_continue(self):
        env = Environment()
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            log.append(env.now)

        def interrupter(env, target):
            yield env.timeout(2.0)
            target.interrupt()

        target = env.process(sleeper(env))
        env.process(interrupter(env, target))
        env.run()
        assert log == [3.0]


class TestEvents:
    def test_manual_succeed(self):
        env = Environment()
        event = env.event()
        results = []

        def waiter(env, ev):
            value = yield ev
            results.append(value)

        env.process(waiter(env, event))
        event.succeed("v")
        env.run()
        assert results == ["v"]

    def test_double_trigger_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed(1)
        with pytest.raises(SchedulingError):
            event.succeed(2)

    def test_fail_propagates_to_waiter(self):
        env = Environment()
        event = env.event()

        def waiter(env, ev):
            yield ev

        env.process(waiter(env, event))
        event.fail(RuntimeError("nope"))
        with pytest.raises(RuntimeError, match="nope"):
            env.run()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_waiting_on_processed_event_resumes_immediately(self):
        env = Environment()
        results = []
        first = env.timeout(1.0, value="early")

        def late_waiter(env, ev):
            yield env.timeout(5.0)
            value = yield ev  # already processed
            results.append((env.now, value))

        env.process(late_waiter(env, first))
        env.run()
        assert results == [(5.0, "early")]


class TestConditions:
    def test_any_of_fires_on_first(self):
        env = Environment()
        results = []

        def waiter(env):
            got = yield AnyOf(env, [env.timeout(5.0, "slow"), env.timeout(1.0, "fast")])
            results.append((env.now, sorted(got.values())))

        env.process(waiter(env))
        env.run()
        assert results[0][0] == 1.0
        assert "fast" in results[0][1]

    def test_all_of_waits_for_all(self):
        env = Environment()
        results = []

        def waiter(env):
            got = yield AllOf(env, [env.timeout(5.0, "slow"), env.timeout(1.0, "fast")])
            results.append((env.now, sorted(got.values())))

        env.process(waiter(env))
        env.run()
        assert results == [(5.0, ["fast", "slow"])]

    def test_empty_all_of_fires_immediately(self):
        env = Environment()
        condition = AllOf(env, [])
        assert condition.triggered


class TestKernelProperties:
    def test_events_fire_in_time_order_property(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=50))
        @settings(max_examples=80, deadline=None)
        def check(delays):
            env = Environment()
            fired = []
            for delay in delays:
                timeout = env.timeout(delay, value=delay)
                timeout.callbacks.append(lambda e: fired.append(e.value))
            env.run()
            assert fired == sorted(delays)
            assert env.now == max(delays)

        check()

    def test_nested_process_chains(self):
        env = Environment()

        def leaf(env, depth):
            yield env.timeout(1.0)
            return depth

        def chain(env, depth):
            if depth == 0:
                result = yield env.process(leaf(env, 0))
                return result
            result = yield env.process(chain(env, depth - 1))
            return result + 1

        process = env.process(chain(env, 10))
        assert env.run(until=process) == 10

    def test_many_concurrent_processes(self):
        env = Environment()
        done = []

        def worker(env, index):
            yield env.timeout(float(index % 7))
            done.append(index)

        for index in range(500):
            env.process(worker(env, index))
        env.run()
        assert len(done) == 500
        assert sorted(done) == list(range(500))
