"""Tests of the multi-key simulation engine."""

import pytest

from repro.engine import SimulationConfig
from repro.engine.multikey import MultiKeySimulation
from repro.errors import ConfigError
from repro.workload import ChurnConfig


def multikey_config(**overrides):
    defaults = dict(
        scheme="dup",
        topology="chord",
        num_nodes=96,
        query_rate=4.0,
        duration=3600.0 * 4,
        warmup=3600.0,
        seed=8,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestConstruction:
    def test_requires_chord(self):
        with pytest.raises(ConfigError):
            MultiKeySimulation(multikey_config(topology="random-tree"))

    def test_requires_positive_keys(self):
        with pytest.raises(ConfigError):
            MultiKeySimulation(multikey_config(), num_keys=0)

    def test_rejects_churn(self):
        churn = ChurnConfig(join_rate=0.1)
        with pytest.raises(ConfigError):
            MultiKeySimulation(multikey_config(churn=churn))

    def test_per_key_trees_have_distinct_roots_usually(self):
        sim = MultiKeySimulation(multikey_config(), num_keys=8)
        roots = {slice_.tree.root for slice_ in sim.slices.values()}
        assert len(roots) >= 4

    def test_every_tree_spans_the_ring(self):
        sim = MultiKeySimulation(multikey_config(), num_keys=4)
        for slice_ in sim.slices.values():
            assert len(slice_.tree) == len(sim.ring)
            slice_.tree.validate()


class TestRun:
    @pytest.fixture(scope="class")
    def result(self):
        return MultiKeySimulation(multikey_config(), num_keys=6).run()

    def test_queries_flow(self, result):
        assert result.queries > 100
        assert 0 <= result.hit_rate <= 1

    def test_per_key_counts_sum_to_total(self, result):
        per_key = result.extras["queries_per_key"]
        assert sum(per_key.values()) == result.queries

    def test_key_popularity_is_skewed(self, result):
        counts = sorted(result.extras["queries_per_key"].values(), reverse=True)
        assert counts[0] > counts[-1]

    def test_subscriptions_span_keys(self, result):
        assert result.extras.get("total_subscriptions", 0) > 0

    def test_runs_once(self):
        sim = MultiKeySimulation(multikey_config(), num_keys=2)
        sim.run()
        with pytest.raises(RuntimeError):
            sim.run()


class TestCrossKeyIsolation:
    def test_caches_hold_multiple_keys(self):
        sim = MultiKeySimulation(multikey_config(), num_keys=4)
        sim.run()
        multi = [
            node
            for node, cache in sim._caches.items()
            if len(cache) >= 2
        ]
        assert multi  # some node cached more than one index

    def test_dup_beats_pcx_aggregate(self):
        results = {}
        for scheme in ("pcx", "dup"):
            sim = MultiKeySimulation(
                multikey_config(scheme=scheme, query_rate=8.0), num_keys=6
            )
            results[scheme] = sim.run()
        assert (
            results["dup"].mean_latency <= results["pcx"].mean_latency
        )
        assert (
            results["dup"].cost_per_query
            <= results["pcx"].cost_per_query * 1.05
        )

    def test_determinism(self):
        first = MultiKeySimulation(multikey_config(), num_keys=3).run()
        second = MultiKeySimulation(multikey_config(), num_keys=3).run()
        assert first.mean_latency == second.mean_latency
        assert first.extras["queries_per_key"] == second.extras[
            "queries_per_key"
        ]


class TestScaleEngine:
    """The sharded scale path: determinism, conservation, worker parity."""

    def _scale_config(self, **overrides):
        defaults = dict(
            scheme="dup",
            topology="chord",
            num_nodes=192,
            query_rate=6.0,
            duration=3600.0 * 2,
            warmup=1800.0,
            seed=8,
            keep_latency_samples=False,
        )
        defaults.update(overrides)
        return SimulationConfig(**defaults)

    def _fingerprint(self, merged):
        return repr(
            (
                merged.queries,
                merged.mean_latency,
                merged.hit_rate,
                merged.cost_per_query,
                merged.extras["latency_p95"],
                merged.extras["parents_touched"],
                merged.extras["swept_entries"],
                sorted(merged.extras["queries_per_key"].items()),
            )
        )

    def test_workers_1_and_4_bit_identical(self):
        from repro.engine.multikey import run_scale

        merged = {
            workers: run_scale(
                self._scale_config(),
                num_keys=24,
                key_zipf_theta=0.8,
                workers=workers,
            )
            for workers in (1, 4)
        }
        assert self._fingerprint(merged[1]) == self._fingerprint(merged[4])

    def test_shard_count_is_pure_function_of_keys(self):
        from repro.engine.multikey import default_shard_count

        assert default_shard_count(1) == 1
        assert default_shard_count(4) == 4
        assert default_shard_count(1024) == 8
        # Worker-count invariance hinges on this: the shard plan must
        # never depend on how many processes execute it.

    def test_scale_run_conserves_queries_across_shards(self):
        from repro.engine.multikey import run_scale

        merged = run_scale(
            self._scale_config(), num_keys=16, key_zipf_theta=0.8, workers=1
        )
        per_key = merged.extras["queries_per_key"]
        assert sum(per_key.values()) == merged.queries
        assert merged.queries > 0
        assert len(per_key) == 16

    def test_scale_rejects_churn_and_non_chord(self):
        from repro.engine.multikey import MultiKeyScaleSimulation

        with pytest.raises(ConfigError):
            MultiKeyScaleSimulation(
                self._scale_config(topology="random-tree"), num_keys=8
            )
        with pytest.raises(ConfigError):
            MultiKeyScaleSimulation(
                self._scale_config(churn=ChurnConfig(join_rate=0.1)),
                num_keys=8,
            )
        with pytest.raises(ConfigError):
            MultiKeyScaleSimulation(
                self._scale_config(), num_keys=4, shard_count=8
            )
