"""Focused tests on the three CUP variants' distinguishing mechanics.

The reproduction ships three readings of CUP (see ``repro/schemes``):
``cup-popularity`` (raw branch-traffic gating), ``cup`` (soft-state
registrations riding queries — the faithful baseline), and ``cup-ideal``
(hard-state transitive registration).  These tests pin down the exact
behavioural differences the ablation measures in aggregate.
"""

import pytest

from repro.engine import Simulation, SimulationConfig
from repro.net.message import Category


def chain_sim(scheme, **overrides):
    defaults = dict(
        scheme=scheme,
        num_nodes=6,
        topology="chain",
        hop_latency_mean=0.001,
        duration=80_000.0,
        warmup=0.0,
        threshold_c=1,
        seed=1,
    )
    defaults.update(overrides)
    sim = Simulation(SimulationConfig(**defaults))
    sim.start()
    sim.env.run(until=0.0)
    return sim


def full_miss_walks(sim, node, count, settle=5.0):
    """Issue ``count`` queries from ``node`` with all caches cleared."""
    for _ in range(count):
        for cached in range(1, 6):
            sim.cache(cached).clear()
        sim.scheme.on_local_query(node)
        sim.env.run(until=sim.env.now + settle)


class TestSoftStateLifecycle:
    def test_registration_refresh_extends_lifetime(self):
        sim = chain_sim("cup")
        full_miss_walks(sim, 5, 3)
        # Keep refreshing with full-walk queries each half TTL: the
        # registration chain must stay alive across many windows.
        for step in range(1, 6):
            sim.env.run(until=step * 1800.0)
            full_miss_walks(sim, 5, 1)
        assert 5 in sim.scheme.live_registrations(4)

    def test_cut_off_then_revival(self):
        sim = chain_sim("cup")
        full_miss_walks(sim, 5, 3)
        # Quiet for > TTL: the chain decays.
        sim.env.run(until=sim.env.now + 4000.0)
        assert 5 not in sim.scheme.live_registrations(4)
        # Two more misses revive the chain (the node must re-qualify as
        # interested: more than c=1 queries in the window).
        full_miss_walks(sim, 5, 2)
        assert 5 in sim.scheme.live_registrations(4)

    def test_wants_updates_transitivity(self):
        sim = chain_sim("cup")
        full_miss_walks(sim, 5, 3)
        # Node 2 is not interested itself, but forwards for node 3's
        # registration chain.
        assert sim.scheme.wants_updates(2)

    def test_miss_interval_roughly_doubles_vs_pcx(self):
        # The 50% mechanism: fetch warms TTL, then pushes warm ~1 more
        # TTL; PCX misses every TTL, CUP roughly every other TTL.
        counts = {}
        for scheme in ("pcx", "cup"):
            sim = chain_sim(scheme, threshold_c=0)
            # Query every 600 s for 20 simulated hours (interest stays
            # alive; every miss is visible as a nonzero latency sample).
            for step in range(120):
                sim.env.run(until=(step + 1) * 600.0)
                sim.scheme.on_local_query(5)
            sim.env.run(until=sim.env.now + 5.0)
            counts[scheme] = sum(1 for s in sim.latency.samples if s > 0)
        assert counts["cup"] < counts["pcx"]
        ratio = counts["cup"] / counts["pcx"]
        assert 0.25 < ratio < 0.85


class TestIdealRegistration:
    def test_unregisters_lazily_on_wasted_push(self):
        sim = chain_sim("cup-ideal")
        full_miss_walks(sim, 5, 3)
        assert sim.scheme.is_registered_up(5)
        # Interest lapses; the next push finds the node uninterested and
        # triggers an explicit unregister (charged control hop).
        sim.env.run(until=sim.env.now + 2 * 3600.0 + 200.0)
        assert not sim.scheme.is_registered_up(5)
        assert sim.ledger.hops(Category.CONTROL) > 0

    def test_pushes_persist_while_interested(self):
        sim = chain_sim("cup-ideal")
        full_miss_walks(sim, 5, 3)
        for cycle in range(1, 4):
            sim.scheme.on_local_query(5)  # keep interest alive
            sim.scheme.on_local_query(5)
            before = sim.ledger.hops(Category.PUSH)
            sim.env.run(until=3540.0 * cycle + 60.0)
            assert sim.ledger.hops(Category.PUSH) > before


class TestVariantOrdering:
    def test_latencies_ordered_on_shared_workload(self):
        # popularity >= soft-state >= ideal, on an identical random
        # workload at a size where the differences are visible.
        results = {}
        for scheme in ("cup-popularity", "cup", "cup-ideal"):
            config = SimulationConfig(
                scheme=scheme,
                num_nodes=256,
                query_rate=5.0,
                duration=3600.0 * 5,
                warmup=3600.0 * 2,
                seed=6,
            )
            results[scheme] = Simulation(config).run().mean_latency
        assert results["cup-popularity"] >= results["cup"] * 0.95
        assert results["cup"] >= results["cup-ideal"] * 0.95
