"""Tests of authority replication, standby promotion, and chaos scenarios."""

import pytest

from repro.engine import Simulation, SimulationConfig
from repro.engine.chaos import SCENARIOS, ChaosScenario, get_scenario
from repro.errors import ConfigError, TopologyError
from repro.index.authority import Authority, AuthorityState, StandbyPool
from repro.net.faults import FaultPlan, PartitionWindow
from repro.sim.core import Environment
from repro.topology.tree import SearchTree
from repro.workload.churn import ChurnConfig


# -- authority state and stop ------------------------------------------------


class TestAuthorityState:
    def make(self, env, **kwargs):
        return Authority(env, key=7, ttl=100.0, push_lead=10.0, **kwargs)

    def test_state_snapshots_the_counter(self):
        env = Environment()
        authority = self.make(env, value="payload")
        env.run(until=0.0)  # issue version 0
        state = authority.state()
        assert state == AuthorityState(
            key=7, next_version=1, value="payload", replicated_at=0.0
        )

    def test_initial_version_offsets_the_sequence(self):
        env = Environment()
        authority = self.make(env, initial_version=41)
        env.run(until=0.0)
        assert authority.current.version == 41

    def test_initial_version_must_be_non_negative(self):
        with pytest.raises(ConfigError):
            self.make(Environment(), initial_version=-1)

    def test_stop_halts_rotation_and_rejects_updates(self):
        env = Environment()
        authority = self.make(env)
        env.run(until=200.0)  # a couple of rotations
        rotated = authority.current.version
        assert rotated >= 1
        authority.stop()
        assert authority.stopped
        env.run(until=1000.0)
        assert authority.current.version == rotated
        with pytest.raises(RuntimeError):
            authority.force_update()
        authority.stop()  # idempotent


class TestStandbyPool:
    def make(self, env=None):
        return StandbyPool(
            env or Environment(), standbys=[3, 5, 9], failover_timeout=60.0
        )

    def state(self, at=0.0):
        return AuthorityState(
            key=0, next_version=4, value=None, replicated_at=at
        )

    def test_records_only_known_standbys(self):
        pool = self.make()
        pool.record_state(5, self.state())
        pool.record_state(42, self.state())
        pool.record_heartbeat(42)
        assert pool.state_at(5) is not None
        assert pool.state_at(42) is None

    def test_not_starved_while_heartbeats_flow(self):
        env = Environment()
        pool = self.make(env)
        env.run(until=59.0)
        assert not pool.starved(lambda n: True)
        env.run(until=61.0)
        assert pool.starved(lambda n: True)

    def test_heartbeat_resets_the_silence_clock(self):
        env = Environment()
        pool = self.make(env)
        env.run(until=50.0)
        for standby in (3, 5, 9):
            pool.record_heartbeat(standby)
        env.run(until=100.0)
        assert not pool.starved(lambda n: True)

    def test_starvation_needs_every_functioning_standby_silent(self):
        env = Environment()
        pool = self.make(env)
        env.run(until=100.0)
        pool.record_heartbeat(9)
        # 3 and 5 are starved but 9 just heard from the authority.
        assert not pool.starved(lambda n: True)
        # ...unless 9 is itself dead: the survivors' silence decides.
        assert pool.starved(lambda n: n != 9)

    def test_no_functioning_standby_means_no_starvation_call(self):
        env = Environment()
        pool = self.make(env)
        env.run(until=1000.0)
        assert not pool.starved(lambda n: False)

    def test_promote_prefers_rank_order_with_state(self):
        pool = self.make()
        pool.record_state(5, self.state())
        pool.record_state(9, self.state())
        assert pool.promote(lambda n: True) == 5
        assert pool.promoted == 5

    def test_promote_skips_dead_standbys(self):
        pool = self.make()
        pool.record_state(3, self.state())
        pool.record_state(9, self.state())
        assert pool.promote(lambda n: n != 3) == 9

    def test_promote_without_state_needs_force(self):
        pool = self.make()
        assert pool.promote(lambda n: True) is None
        assert pool.promote(lambda n: True, force=True) == 3

    def test_promotion_is_final(self):
        pool = self.make()
        pool.record_state(3, self.state())
        assert pool.promote(lambda n: True) == 3
        assert pool.promote(lambda n: True) is None
        assert not pool.starved(lambda n: True)


# -- tree surgery ------------------------------------------------------------


class TestPromoteToRoot:
    def make_tree(self):
        tree = SearchTree(0)
        tree.add_leaf(0, 1)
        tree.add_leaf(1, 2)
        tree.add_leaf(1, 3)
        return tree

    def test_promotes_interior_node(self):
        tree = self.make_tree()
        absorber = tree.promote_to_root(1)
        # The dead root leaves the tree; its direct child absorbed 1's
        # children first, so they transfer to the promoted node.
        assert tree.root == 1
        assert absorber == 0
        assert 0 not in tree
        assert set(tree.children(1)) == {2, 3}
        tree.validate()

    def test_promotes_leaf(self):
        tree = self.make_tree()
        absorber = tree.promote_to_root(3)
        assert tree.root == 3
        assert absorber == 1
        assert 0 not in tree
        assert tree.parent(1) == 3
        assert set(tree.children(1)) == {2}
        tree.validate()

    def test_rejects_current_root_and_strangers(self):
        tree = self.make_tree()
        with pytest.raises(TopologyError):
            tree.promote_to_root(0)
        with pytest.raises(TopologyError):
            tree.promote_to_root(99)


# -- config gates ------------------------------------------------------------


class TestFailoverConfig:
    def test_crash_requires_standbys(self):
        with pytest.raises(ConfigError):
            SimulationConfig(authority_crash_at=100.0)

    def test_root_churn_requires_standbys(self):
        with pytest.raises(ConfigError):
            SimulationConfig(
                churn=ChurnConfig(
                    fail_rate=0.01, allow_root_failure=True
                )
            )

    def test_standbys_must_fit_the_overlay(self):
        with pytest.raises(ConfigError):
            SimulationConfig(num_nodes=4, authority_standbys=4)


# -- chaos scenarios ---------------------------------------------------------


class TestChaosScenarios:
    BASE = dict(
        scheme="dup",
        num_nodes=64,
        ttl=600.0,
        push_lead=60.0,
        warmup=900.0,
        duration=3600.0,
        seed=1,
    )

    def test_calm_is_the_identity(self):
        config = SimulationConfig(**self.BASE)
        assert get_scenario("calm").apply(config) is config

    def test_blackout_sets_every_knob(self):
        config = get_scenario("blackout").apply(
            SimulationConfig(**self.BASE)
        )
        assert config.authority_standbys == 2
        assert config.authority_crash_at == 900.0 + 330.0
        assert config.audit_interval == 150.0
        plan = config.faults
        assert plan.loss_rate == 0.10
        assert plan.silent_failures
        assert plan.partitions == (
            PartitionWindow(start=1200.0, duration=60.0, components=2),
        )

    def test_apply_merges_with_existing_faults(self):
        config = SimulationConfig(
            faults=FaultPlan(
                loss_rate=0.25,
                partitions=(
                    PartitionWindow(start=2000.0, duration=30.0),
                ),
            ),
            **self.BASE,
        )
        merged = get_scenario("blackout").apply(config).faults
        assert merged.loss_rate == 0.25  # max wins
        assert merged.silent_failures
        assert [w.start for w in merged.partitions] == [1200.0, 2000.0]

    def test_crash_without_standbys_rejected(self):
        with pytest.raises(ConfigError):
            ChaosScenario(name="bad", description="", crash_offset=10.0)

    def test_partition_past_horizon_rejected(self):
        scenario = ChaosScenario(
            name="late",
            description="",
            partitions=((10_000.0, 60.0, 2),),
        )
        with pytest.raises(ConfigError):
            scenario.apply(SimulationConfig(**self.BASE))

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError):
            get_scenario("nope")

    def test_stock_scenarios_apply_cleanly(self):
        config = SimulationConfig(**self.BASE)
        for name in SCENARIOS:
            applied = get_scenario(name).apply(config)
            applied.validate()


# -- end-to-end failover -----------------------------------------------------


class TestFailoverIntegration:
    def run_sim(self, **overrides):
        defaults = dict(
            scheme="dup",
            num_nodes=48,
            query_rate=3.0,
            ttl=600.0,
            push_lead=60.0,
            duration=3600.0,
            warmup=600.0,
            threshold_c=2,
            seed=11,
            authority_standbys=2,
            failover_timeout=120.0,
        )
        defaults.update(overrides)
        sim = Simulation(SimulationConfig(**defaults))
        result = sim.run()
        return sim, result

    def test_oracle_crash_promotes_immediately(self):
        sim, result = self.run_sim(authority_crash_at=1500.0)
        assert result.extras["failover_promoted"] >= 0
        assert result.extras["failover_at"] == 1500.0
        assert sim.tree.root == result.extras["failover_promoted"]
        # The successor's authority kept the version counter monotone
        # and resumed rotation for the rest of the horizon.
        refresh = 600.0 - 60.0
        assert sim.authority.current.version > 1500.0 / refresh
        assert not sim.authority.stopped

    def test_silent_crash_detected_under_heavy_control_loss(self):
        # The ISSUE's probe: 40% control-message loss must not stop the
        # standby from detecting the silent authority crash (detection
        # rides heartbeat silence, not any single delivery).
        sim, result = self.run_sim(
            authority_crash_at=1500.0,
            faults=FaultPlan(
                loss_by_category={"control": 0.4},
                silent_failures=True,
            ),
            retry_budget=4,
            ack_timeout=2.0,
            lease_ttl=300.0,
        )
        assert result.extras["failover_promoted"] >= 0
        failover_at = result.extras["failover_at"]
        # Detection needs at least one failover_timeout of silence, and
        # the watch loop fires every quarter timeout.
        assert 1500.0 < failover_at < 1500.0 + 3 * 120.0
        # Version rotation resumed after the hand-off.
        versions_by_failover = failover_at / (600.0 - 60.0)
        assert sim.authority.current.version > versions_by_failover
        assert result.extras["standby_replications"] > 0
        assert result.extras["standby_heartbeats"] > 0

    def test_no_failover_without_a_crash(self):
        sim, result = self.run_sim()
        assert result.extras["failover_promoted"] == -1
        assert "failover_at" not in result.extras
