"""End-to-end resilience tests: Section III-C failure cases under loss.

The synchronous driver tests in ``test_dup_maintenance.py`` verify the
repair *logic* of every failure case with perfectly delivered control
messages.  These tests re-run the failure cases through the full engine
with a hostile transport — 40% control-plane loss plus silent failures
— and assert that the retry channel and the lease machinery still
converge the tree to an invariant-clean state.

Pattern: a lossy *storm* phase in which the victim fails and repair
messages are genuinely lost and retransmitted, followed (where needed)
by a *calm* phase with the injector detached, after which the state
must be exactly what the lossless driver tests predict.
"""

import pytest

from repro.core import check_dup_invariants
from repro.engine import Simulation, SimulationConfig
from repro.errors import ProtocolError
from repro.net.faults import FaultPlan

LEASE_TTL = 600.0


def lossy_sim(**overrides):
    defaults = dict(
        scheme="dup",
        num_nodes=6,
        topology="chain",
        hop_latency_mean=0.001,
        duration=50_000.0,
        warmup=0.0,
        threshold_c=1,
        seed=1,
        piggyback=False,
        faults=FaultPlan(
            loss_by_category={"control": 0.4}, silent_failures=True
        ),
        retry_budget=5,
        ack_timeout=1.0,
        lease_ttl=LEASE_TTL,
    )
    defaults.update(overrides)
    sim = Simulation(SimulationConfig(**defaults))
    sim.start()
    sim.env.run(until=0.0)
    return sim


def subscribe(sim, *nodes):
    """Drive the query recipe that leaves ``nodes`` subscribed."""
    for at in (None, 3550.0, 3650.0):
        if at is not None:
            sim.env.run(until=at)
        for node in nodes:
            sim.scheme.on_local_query(node)
    sim.env.run(until=3700.0)


def run_until(sim, predicate, deadline, step=50.0, keep_interested=()):
    """Advance the sim until ``predicate()`` holds (or fail the test).

    ``keep_interested`` nodes get a query every step so the interest
    cut-off does not unsubscribe them while repair is in progress.
    """
    while not predicate():
        if sim.env.now >= deadline:
            pytest.fail(
                f"did not converge by t={deadline} (now={sim.env.now})"
            )
        sim.env.run(until=sim.env.now + step)
        for node in keep_interested:
            if node in sim.tree and sim.functioning(node):
                sim.scheme.on_local_query(node)


def invariants_hold(sim):
    try:
        check_dup_invariants(sim.scheme.protocol, sim.tree)
    except ProtocolError:
        return False
    return True


def calm_phase(sim, duration=2.5 * LEASE_TTL / 3.0):
    """Detach the injector and let the lease machinery settle."""
    sim.transport.use_injector(None)
    sim.env.run(until=sim.env.now + duration)


def s_list(sim, node):
    return set(sim.scheme.protocol.s_list(node))


class TestCase1Uninvolved:
    def test_failure_off_the_virtual_paths_disturbs_nothing(self):
        sim = lossy_sim()
        subscribe(sim, 5, 3)
        # A leaf under node 1 sits on no virtual path.
        leaf = sim.allocate_node_id()
        sim.scheme.on_node_joined_leaf(1, leaf)
        sim.fail_silently(leaf)
        sim.env.run(until=sim.env.now + 2 * LEASE_TTL)
        # Nobody ever sends to it, so nobody ever suspects it — the
        # blackhole model is honest about undetectable failures.
        assert leaf in sim.injector.undetected()
        # The subscription structure is untouched.
        assert s_list(sim, 3) == {3, 5}
        assert s_list(sim, 4) == {5}
        assert invariants_hold(sim)


class TestCase2EndNode:
    def test_dead_subscriber_pruned_via_lease_expiry(self):
        sim = lossy_sim()
        subscribe(sim, 5, 3)
        assert s_list(sim, 4) == {5}
        sim.fail_silently(5)
        # Node 5 stops refreshing; node 4's lease on it expires and the
        # suspicion runs failure case 2 despite the lossy control plane.
        run_until(
            sim,
            lambda: 5 not in sim.tree,
            deadline=3700.0 + 3 * LEASE_TTL,
            keep_interested=(3,),
        )
        assert sim.injector.detected_count == 1
        assert sim.scheme.lease_expiries > 0
        calm_phase(sim)
        assert s_list(sim, 4) == set()
        assert s_list(sim, 3) == {3}
        assert invariants_hold(sim)
        # Detection latency made it into the metrics histogram.
        assert sim._detection_latency.count == 1


class TestCase3Relay:
    def test_dead_relay_spliced_and_path_reconnected(self):
        sim = lossy_sim()
        subscribe(sim, 5, 3)
        sim.fail_silently(4)
        # Node 4 carries no pushes (the virtual path collapses past
        # it), but node 5's lease refreshes blackhole against it and
        # the request-timeout suspicion fires.
        run_until(
            sim,
            lambda: 4 not in sim.tree,
            deadline=3700.0 + 3 * LEASE_TTL,
            keep_interested=(5, 3),
        )
        assert sim.injector.detected_count == 1
        calm_phase(sim)
        assert sim.tree.parent(5) == 3
        assert s_list(sim, 3) == {3, 5}
        assert invariants_hold(sim)


class TestCase4Junction:
    def test_dead_junction_repaired_by_orphan_resubscribes(self):
        sim = lossy_sim()
        subscribe(sim, 5, 3)
        assert s_list(sim, 3) == {3, 5}  # 3 is the junction
        sim.fail_silently(3)
        run_until(
            sim,
            lambda: 3 not in sim.tree,
            deadline=3700.0 + 3 * LEASE_TTL,
            keep_interested=(5,),
        )
        assert sim.injector.detected_count == 1
        calm_phase(sim)
        # Orphan 5 re-subscribed through the repaired chain 0-1-2-4-5
        # even though some of its refresh-subscribes were lost.
        for upstream in (0, 1, 2, 4):
            assert s_list(sim, upstream) == {5}
        assert s_list(sim, 5) == {5}
        assert invariants_hold(sim)

    def test_repair_retries_actually_fired(self):
        # The storm phase must really have exercised loss + retry; a
        # vacuous pass (nothing lost) would not test convergence.
        sim = lossy_sim()
        subscribe(sim, 5, 3)
        sim.fail_silently(3)
        run_until(
            sim,
            lambda: 3 not in sim.tree,
            deadline=3700.0 + 3 * LEASE_TTL,
            keep_interested=(5,),
        )
        assert sim.injector.injected_losses > 0
        assert sim.reliable.retries > 0


class TestCase5Root:
    def test_root_replacement_briefed_by_child_despite_loss(self):
        sim = lossy_sim()
        subscribe(sim, 5, 3)
        new_root = sim.allocate_node_id()
        sim.scheme.on_root_failed(new_root)
        assert sim.tree.root == new_root
        # The surviving child briefs the new root on its branch
        # representative; the brief travels on the reliable channel.
        sim.env.run(until=sim.env.now + 30.0)
        assert s_list(sim, new_root) == {3}
        assert s_list(sim, 3) == {3, 5}
        assert invariants_hold(sim)


class TestFalseSuspicion:
    def test_wrongly_suspected_live_node_resubscribes_via_lease(self):
        # A suspicion against a healthy peer must only cost local state:
        # the next lease refresh arrives with an unknown subject and is
        # treated as a subscribe, healing the path.
        sim = lossy_sim(faults=None, retry_budget=0)
        subscribe(sim, 5, 3)
        sim.suspect_peer(4, 5)
        assert 5 in sim.tree  # overlay untouched
        assert s_list(sim, 4) == set()  # local entry dropped
        sim.env.run(until=sim.env.now + LEASE_TTL)
        assert s_list(sim, 4) == {5}
        assert invariants_hold(sim)
