"""Shared test fixtures and the synchronous DUP protocol driver."""

from __future__ import annotations

import pytest

from repro.core.maintenance import DupMaintenance
from repro.core.protocol import DupProtocol
from repro.topology.tree import SearchTree


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current run "
        "instead of comparing against them",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    """Whether golden files should be rewritten rather than asserted."""
    return request.config.getoption("--update-goldens")


class SyncDupDriver:
    """Drives the DUP protocol synchronously over a search tree.

    Control payloads are walked hop-by-hop toward the root immediately
    (no simulated latency), mirroring the engine's bundled-in-order
    semantics.  ``control_hops`` counts the charged hops so tests can
    reason about maintenance cost.
    """

    def __init__(self, tree: SearchTree):
        self.tree = tree
        self.protocol = DupProtocol(is_root=lambda n: n == tree.root)
        self.maintenance = DupMaintenance(
            self.protocol,
            tree,
            emit=self._emit,
            charge=self._charge,
        )
        self.control_hops = 0
        self.interested: set[int] = set()

    # -- interest-driven operations ----------------------------------------
    def subscribe(self, node: int) -> None:
        """Node becomes interested and subscribes (Figure 3 (A))."""
        self.interested.add(node)
        if node == self.tree.root:
            return
        result = self.protocol.ensure_subscribed(node)
        self._walk(node, result.upstream)

    def unsubscribe(self, node: int) -> None:
        """Node loses interest and unsubscribes (Figure 3 (D))."""
        self.interested.discard(node)
        if node not in self.tree:
            return
        result = self.protocol.drop_subscription(node)
        self._walk(node, result.upstream)

    # -- churn operations ------------------------------------------------------
    def join_edge(self, new: int, upper: int, lower: int) -> None:
        self.maintenance.node_joined_edge(new, upper, lower)

    def join_leaf(self, parent: int, new: int) -> None:
        self.maintenance.node_joined_leaf(parent, new)

    def leave(self, node: int) -> None:
        self.interested.discard(node)
        self.maintenance.node_left(node)

    def fail(self, node: int) -> None:
        self.interested.discard(node)
        self.maintenance.node_failed(node)

    def fail_root(self, new_root: int) -> None:
        self.maintenance.root_failed(new_root)

    # -- inspection ------------------------------------------------------------
    def s_list(self, node: int) -> set[int]:
        return set(self.protocol.s_list(node))

    def push_recipients(self) -> set[int]:
        """Every node a push from the root reaches."""
        root = self.tree.root
        reached: set[int] = set()
        frontier = [root]
        while frontier:
            sender = frontier.pop()
            if sender != root and not self.protocol.in_dup_tree(sender):
                continue
            for target in self.protocol.push_targets(sender):
                if target not in reached:
                    reached.add(target)
                    frontier.append(target)
        return reached

    def push_hops(self) -> int:
        """Hop cost of one full push round (1 per DUP-tree edge)."""
        root = self.tree.root
        hops = 0
        seen: set[int] = set()
        frontier = [root]
        while frontier:
            sender = frontier.pop()
            if sender != root and not self.protocol.in_dup_tree(sender):
                continue
            for target in self.protocol.push_targets(sender):
                hops += 1
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return hops

    # -- internals ----------------------------------------------------------
    def _emit(self, from_node: int, payload: object) -> None:
        self._walk(from_node, [payload])

    def _charge(self, hops: int) -> None:
        self.control_hops += hops

    def _walk(self, from_node: int, payloads: list) -> None:
        current = from_node
        pending = list(payloads)
        while pending:
            parent = self.tree.parent(current)
            if parent is None:
                break
            self.control_hops += len(pending)
            continuations = []
            for payload in pending:
                result = self.protocol.step(parent, payload)
                continuations.extend(result.upstream)
            pending = continuations
            current = parent


@pytest.fixture
def figure2_tree() -> SearchTree:
    """The paper's Figure 1/2 topology: N1..N8."""
    tree = SearchTree(root=1)
    tree.add_leaf(1, 2)
    tree.add_leaf(2, 3)
    tree.add_leaf(3, 4)
    tree.add_leaf(3, 5)
    tree.add_leaf(5, 6)
    tree.add_leaf(6, 7)
    tree.add_leaf(6, 8)
    return tree


@pytest.fixture
def driver(figure2_tree) -> SyncDupDriver:
    return SyncDupDriver(figure2_tree)
