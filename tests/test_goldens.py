"""Golden-file regression tests for the experiment pipeline.

Every experiment run is a pure function of its configuration and root
seed, so the full output of a smoke-scale run can be pinned as a checked
in JSON golden: any change to the simulation kernel, the schemes, the
seed derivation, or the metrics plumbing that moves a single number
fails here first, with a readable diff.

When a change *intentionally* moves the numbers (and the diff has been
reviewed), regenerate with::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens

The goldens are recorded with the serial engine; because the parallel
engine is bit-identical by construction, the same goldens must hold
under any ``REPRO_WORKERS`` setting — CI's workers=2 matrix leg proves
it on every push.
"""

from __future__ import annotations

import json
import math
import pathlib

from repro.experiments import get_experiment

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


def canonical(result) -> str:
    """Stable JSON text of an ExperimentResult's observable output."""

    def clean(value):
        if isinstance(value, float):
            if math.isnan(value):
                return "NaN"
            if math.isinf(value):
                return "Infinity" if value > 0 else "-Infinity"
            # Full precision: the golden pins bit-identical floats.
            return float.hex(value)
        if isinstance(value, dict):
            return {str(k): clean(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [clean(v) for v in value]
        return value

    record = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "rows": [clean(dict(row)) for row in result.rows],
        "shape_checks": [
            {"claim": check.claim, "passed": check.passed}
            for check in result.shape_checks
        ],
    }
    return json.dumps(record, indent=2, sort_keys=True) + "\n"


def check_golden(result, name: str, update: bool) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    text = canonical(result)
    if update or not path.exists():
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return
    expected = path.read_text(encoding="utf-8")
    if text != expected:
        # Flush the protocol flight recorder (when one is armed, e.g.
        # CI's REPRO_FLIGHT leg) so the drifted run leaves a post-mortem.
        from repro import flightrec

        flightrec.dump_anomaly(f"golden-mismatch-{name}")
    assert text == expected, (
        f"{name} output drifted from its golden; if the change is "
        f"intended, rerun with --update-goldens and review the diff of "
        f"{path}"
    )


class TestGoldens:
    def test_figure4_smoke_matches_golden(self, update_goldens):
        result = get_experiment("figure4")(
            scale="smoke", replications=1, seed=1, rates=(1.0, 10.0)
        )
        check_golden(result, "figure4_smoke", update_goldens)

    def test_resilience_smoke_matches_golden(self, update_goldens):
        result = get_experiment("resilience")(
            scale="smoke", replications=1, seed=1
        )
        check_golden(result, "resilience_smoke", update_goldens)

    def test_partition_smoke_matches_golden(self, update_goldens):
        result = get_experiment("partition")(
            scale="smoke", replications=1, seed=1
        )
        check_golden(result, "partition_smoke", update_goldens)

    def test_overload_smoke_matches_golden(self, update_goldens):
        result = get_experiment("overload")(
            scale="smoke", replications=1, seed=1
        )
        check_golden(result, "overload_smoke", update_goldens)

    def test_adaptive_smoke_matches_golden(self, update_goldens):
        result = get_experiment("adaptive")(
            scale="smoke", replications=1, seed=1
        )
        check_golden(result, "adaptive_smoke", update_goldens)

    def test_fluctuation_smoke_matches_golden(self, update_goldens):
        result = get_experiment("fluctuation")(
            scale="smoke", replications=1, seed=1
        )
        check_golden(result, "fluctuation_smoke", update_goldens)

    def test_scale_smoke_matches_golden(self, update_goldens):
        # The scale rows carry no wall-clock or RSS numbers (those live
        # in BENCH_scale.json), so this golden is machine-independent
        # and pins the sharded engine bit-for-bit — including its
        # worker-count invariance, via CI's REPRO_WORKERS matrix.
        result = get_experiment("scale")(
            scale="smoke", replications=1, seed=1
        )
        check_golden(result, "scale_smoke", update_goldens)
