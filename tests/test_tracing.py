"""Tests of the message log, transport observers, and query tracing."""

import pytest

from repro.engine import Simulation, SimulationConfig
from repro.engine.tracing import MessageLog, TraceCollector
from repro.net.message import Category, QueryMessage
from repro.workload.churn import ChurnConfig


def chain_sim(scheme="dup", **overrides):
    defaults = dict(
        scheme=scheme,
        num_nodes=6,
        topology="chain",
        hop_latency_mean=0.001,
        duration=50_000.0,
        warmup=0.0,
        threshold_c=1,
        seed=1,
    )
    defaults.update(overrides)
    sim = Simulation(SimulationConfig(**defaults))
    sim.start()
    sim.env.run(until=0.0)
    return sim


class TestMessageLog:
    def test_records_query_and_reply(self):
        sim = chain_sim("pcx")
        log = MessageLog.attach(sim)
        sim.scheme.on_local_query(5)
        sim.env.run(until=5.0)
        assert log.summary() == {"query": 5, "reply": 5}
        kinds = {entry.kind for entry in log}
        assert kinds == {"query", "reply"}

    def test_entries_carry_details(self):
        sim = chain_sim("pcx")
        log = MessageLog.attach(sim)
        sim.scheme.on_local_query(5)
        sim.env.run(until=5.0)
        first = next(iter(log))
        assert "origin=5" in first.detail
        assert first.destination == 4
        assert "query" in str(first)

    def test_push_and_control_logged(self):
        sim = chain_sim("dup")
        log = MessageLog.attach(sim)
        # subscribe recipe: miss, hit, miss-with-subscription
        sim.scheme.on_local_query(5)
        sim.env.run(until=3550.0)
        sim.scheme.on_local_query(5)
        sim.env.run(until=3650.0)
        sim.scheme.on_local_query(5)
        sim.env.run(until=7200.0)  # push cycle at 7080
        categories = log.summary()
        assert categories.get("push", 0) >= 1
        pushes = log.of_category(Category.PUSH)
        assert pushes[-1].destination == 5
        assert "version=" in pushes[-1].detail

    def test_between_and_to_node(self):
        sim = chain_sim("pcx")
        log = MessageLog.attach(sim)
        sim.scheme.on_local_query(5)
        sim.env.run(until=5.0)
        assert len(log.between(0.0, 5.0)) == len(log)
        assert log.between(100.0, 200.0) == []
        assert all(e.destination == 3 for e in log.to_node(3))

    def test_ring_buffer_eviction(self):
        log = MessageLog(limit=3)
        from repro.net.message import QueryMessage

        for index in range(5):
            log.record(float(index), index, QueryMessage(key=1, origin=0))
        assert len(log) == 3
        assert log.total_recorded == 5
        assert [e.time for e in log] == [2.0, 3.0, 4.0]

    def test_tail_renders(self):
        sim = chain_sim("pcx")
        log = MessageLog.attach(sim)
        sim.scheme.on_local_query(5)
        sim.env.run(until=5.0)
        text = log.tail(3)
        assert text.count("\n") == 2

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            MessageLog(limit=0)

    def test_detach_stops_recording(self):
        sim = chain_sim("pcx")
        log = MessageLog.attach(sim)
        sim.scheme.on_local_query(5)
        sim.env.run(until=5.0)
        recorded = len(log)
        assert recorded > 0
        log.detach()
        sim.scheme.on_local_query(4)
        sim.env.run(until=10.0)
        assert len(log) == recorded
        log.detach()  # idempotent


class TestTransportObserver:
    def test_stacked_observers_in_order(self):
        sim = chain_sim("pcx")
        seen = []
        sim.transport.add_observer(lambda e: seen.append(("a", e.kind)))
        sim.transport.add_observer(lambda e: seen.append(("b", e.kind)))
        sim.scheme.on_local_query(5)
        sim.env.run(until=5.0)
        assert seen, "observers saw no events"
        # Both observers see every event, in registration order.
        assert seen[0][0] == "a" and seen[1][0] == "b"
        assert len(seen) % 2 == 0
        assert {kind for _, kind in seen} == {"send", "deliver"}

    def test_remove_observer(self):
        sim = chain_sim("pcx")
        events = []
        observer = sim.transport.add_observer(events.append)
        sim.scheme.on_local_query(5)
        sim.env.run(until=5.0)
        count = len(events)
        sim.transport.remove_observer(observer)
        sim.scheme.on_local_query(4)
        sim.env.run(until=10.0)
        assert len(events) == count
        with pytest.raises(ValueError):
            sim.transport.remove_observer(observer)

    def test_send_events_carry_sender(self):
        sim = chain_sim("pcx")
        sends = []
        sim.transport.add_observer(
            lambda e: sends.append(e) if e.kind == "send" else None
        )
        sim.scheme.on_local_query(5)
        sim.env.run(until=5.0)
        query_hops = [
            (e.sender, e.destination)
            for e in sends
            if e.message.category is Category.QUERY
        ]
        assert query_hops == [(5, 4), (4, 3), (3, 2), (2, 1), (1, 0)]
        reply_hops = [
            (e.sender, e.destination)
            for e in sends
            if e.message.category is Category.REPLY
        ]
        assert reply_hops == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]

    def test_drop_event_counts(self):
        sim = chain_sim("pcx")
        drops = []
        sim.transport.add_observer(
            lambda e: drops.append(e) if e.kind == "drop" else None
        )
        before = sim.transport.dropped
        sim.transport.drop(QueryMessage(key=sim.key, origin=5))
        assert sim.transport.dropped == before + 1
        assert len(drops) == 1


def traced_chain_sim(scheme="pcx", **overrides):
    sim = chain_sim(scheme, **overrides)
    tracer = sim.enable_tracing()
    return sim, tracer


class TestTraceCollector:
    def test_full_chain_reconstruction(self):
        sim, tracer = traced_chain_sim("pcx")
        sim.scheme.on_local_query(5)
        sim.env.run(until=5.0)
        assert tracer.completed == 1
        trace = tracer.traces("complete")[0]
        assert trace.origin == 5
        assert trace.status == "complete"
        assert trace.latency_hops == 5
        assert trace.request_hops == 5
        # Request climbs the chain contiguously from the origin...
        query_spans = trace.spans_of(Category.QUERY)
        assert query_spans[0].sender == 5
        for earlier, later in zip(query_spans, query_spans[1:]):
            assert later.sender == earlier.destination
        assert query_spans[-1].destination == 0
        # ... and the reply retraces it back down.
        reply_spans = trace.spans_of(Category.REPLY)
        assert [s.destination for s in reply_spans] == [1, 2, 3, 4, 5]
        assert all(s.status == "delivered" for s in trace.spans)
        # Span levels are the chain depth of the destination.
        assert [s.level for s in query_spans] == [4, 3, 2, 1, 0]
        # The serving node annotated the trace.
        assert any(n.event == "serve" and n.node == 0
                   for n in trace.annotations)

    def test_local_hit_completes_with_no_spans(self):
        sim, tracer = traced_chain_sim("pcx")
        sim.scheme.on_local_query(5)
        sim.env.run(until=5.0)
        sim.scheme.on_local_query(5)  # cache still warm: local hit
        sim.env.run(until=6.0)
        hits = [t for t in tracer.traces("complete") if t.hit]
        assert len(hits) == 1
        assert hits[0].latency_hops == 0
        assert hits[0].spans == []

    def test_warmup_queries_not_traced(self):
        sim, tracer = traced_chain_sim("pcx", warmup=100.0)
        sim.scheme.on_local_query(5)
        sim.env.run(until=5.0)
        assert tracer.untraced == 1
        assert len(tracer.traces()) == 0
        assert sim.latency.count == 0  # recorder gated identically

    def test_dup_annotations_and_traced_control(self):
        sim, tracer = traced_chain_sim("dup")
        # Subscribe recipe: miss, hit, miss-with-subscription.
        sim.scheme.on_local_query(5)
        sim.env.run(until=3550.0)
        sim.scheme.on_local_query(5)
        sim.env.run(until=3650.0)
        sim.scheme.on_local_query(5)
        sim.env.run(until=3700.0)
        events = [
            note.event
            for trace in tracer.traces()
            for note in trace.annotations
        ]
        assert "dup.subscribe" in events

    def test_aggregates_survive_eviction(self):
        sim, tracer = traced_chain_sim("pcx")
        tracer._keep = 2
        for _ in range(5):
            sim.scheme.on_local_query(5)
            sim.env.run(until=sim.env.now + 10.0)
        assert tracer.completed == 5
        assert len(tracer.traces()) <= 2
        assert len(tracer.latencies) == 5
        assert tracer.percentile(50) >= 0

    def test_percentiles_and_summary(self):
        sim, tracer = traced_chain_sim("pcx")
        sim.scheme.on_local_query(5)
        sim.env.run(until=5.0)
        tails = tracer.percentiles()
        assert set(tails) == {"p50", "p95", "p99"}
        assert tails["p50"] == 5.0
        summary = tracer.summary()
        assert summary["completed"] == 1
        assert summary["hops_by_level"] == {0: 1, 1: 1, 2: 1, 3: 1, 4: 1}
        assert "TraceCollector" in repr(tracer)

    def test_invalid_keep(self):
        with pytest.raises(ValueError):
            TraceCollector(clock=lambda: 0.0, keep=0)


def check_trace_invariants(tracer):
    for trace in tracer.traces():
        assert trace.status in ("complete", "incomplete", "open")
        delivered_queries = [
            s for s in trace.spans_of(Category.QUERY)
            if s.status == "delivered"
        ]
        # Request hops form a contiguous chain from the origin even
        # when later nodes departed.
        if delivered_queries:
            assert delivered_queries[0].sender == trace.origin
            for earlier, later in zip(
                delivered_queries, delivered_queries[1:]
            ):
                assert later.sender == earlier.destination
        if trace.status == "complete":
            # The acceptance invariant: the reconstructed hop count
            # equals the latency the recorder was told.
            assert trace.request_hops == trace.latency_hops
        elif trace.status == "incomplete":
            # Abandoned: never recorded a latency, but the abandon
            # time is known.  (The chain may end without a dropped
            # span when a reply found its whole remaining path dead
            # before the next hop was even attempted.)
            assert trace.latency_hops is None
            assert trace.completed_at is not None
            assert not any(
                s.category in ("query", "reply")
                and s.status == "delivered"
                and s.delivered_at > trace.completed_at
                for s in trace.spans
            ), "orphan hop delivered after the trace was abandoned"


class TestTracingUnderChurn:
    """Traces stay orphan-free and consistent when path nodes depart."""

    def run_churny(self, scheme="dup"):
        config = SimulationConfig(
            scheme=scheme,
            num_nodes=96,
            query_rate=2.0,
            hop_latency_mean=15.0,
            ttl=600.0,
            duration=12_000.0,
            warmup=1_000.0,
            threshold_c=2,
            seed=7,
            churn=ChurnConfig(
                join_rate=0.04, leave_rate=0.02, fail_rate=0.02
            ),
        )
        sim = Simulation(config)
        tracer = sim.enable_tracing()
        result = sim.run()
        return sim, tracer, result

    # DUP's pushes keep caches warm enough that nothing is in flight
    # when nodes depart; PCX keeps long request/reply chains in the air
    # and reliably loses some to churn.
    @pytest.mark.parametrize("scheme", ["dup", "pcx"])
    def test_traces_consistent_under_churn(self, scheme):
        sim, tracer, result = self.run_churny(scheme)
        assert tracer.completed > 100, "churn run produced too few traces"
        if scheme == "pcx":
            assert tracer.incomplete > 0, "churn never broke a path"
        self.check_invariants(tracer)

    def check_invariants(self, tracer):
        check_trace_invariants(tracer)

    def test_completed_traces_biject_with_recorder(self):
        sim, tracer, result = self.run_churny("dup")
        # Every post-warm-up recorded latency belongs to exactly one
        # completed trace and vice versa.
        assert tracer.completed == sim.latency.count
        assert sorted(tracer.latencies) == sorted(sim.latency.samples)
        begun = tracer.completed + tracer.incomplete + tracer.open_count
        assert begun == tracer._next_id - 1


class TestTracingAcrossFailoverAndRepair:
    """Trace-id inheritance beyond the steady state: control payloads
    keep their carrier's trace id hop by hop, traces stay bijective
    with the latency recorder across an authority failover re-root
    (``promote_to_root``), and auditor-initiated repairs run as
    untraced background flows that never bleed into query traces."""

    def test_subscribe_control_inherits_the_carrier_trace(self):
        # Deterministic chain: the third query carries the subscribe up
        # the whole chain, and every hop that processes it annotates
        # the SAME trace — the id is inherited, not re-minted.
        sim, tracer = traced_chain_sim("dup")
        sim.scheme.on_local_query(5)  # miss: interest noted
        sim.env.run(until=3550.0)
        sim.scheme.on_local_query(5)  # hit: threshold crossed
        sim.env.run(until=3650.0)
        sim.scheme.on_local_query(5)  # miss: subscribe rides the request
        sim.env.run(until=3700.0)
        subscribed = [
            trace
            for trace in tracer.traces()
            if any(n.event == "dup.subscribe" for n in trace.annotations)
        ]
        assert len(subscribed) == 1, "subscribe attributed to >1 trace"
        trace = subscribed[0]
        nodes = [
            note.node
            for note in trace.annotations
            if note.event == "dup.subscribe"
        ]
        assert nodes == [4, 3, 2, 1, 0]
        # The annotated trace is the query that carried the payload.
        assert trace.origin == 5
        assert trace.status == "complete"

    def run_failover(self):
        config = SimulationConfig(
            scheme="dup",
            num_nodes=48,
            query_rate=3.0,
            ttl=600.0,
            push_lead=60.0,
            duration=3600.0,
            warmup=600.0,
            threshold_c=2,
            seed=11,
            authority_standbys=2,
            failover_timeout=120.0,
            authority_crash_at=1500.0,
        )
        sim = Simulation(config)
        tracer = sim.enable_tracing()
        result = sim.run()
        return sim, tracer, result

    def test_traces_consistent_across_failover_rerooting(self):
        sim, tracer, result = self.run_failover()
        promoted = result.extras["failover_promoted"]
        assert promoted >= 0
        assert sim.tree.root == promoted
        # The recorder bijection survives the re-root: no query is lost
        # or double-counted while the tree changes authority mid-run.
        assert tracer.completed == sim.latency.count
        assert sorted(tracer.latencies) == sorted(sim.latency.samples)
        failover_at = result.extras["failover_at"]
        post = [
            trace
            for trace in tracer.traces("complete")
            if trace.issued_at > failover_at
        ]
        assert post, "no queries completed after the re-root"
        check_trace_invariants(tracer)

    def test_auditor_repairs_stay_out_of_query_traces(self):
        config = SimulationConfig(
            scheme="dup",
            num_nodes=96,
            query_rate=2.0,
            hop_latency_mean=15.0,
            ttl=600.0,
            duration=12_000.0,
            warmup=1_000.0,
            threshold_c=2,
            seed=7,
            audit_interval=300.0,
            churn=ChurnConfig(
                join_rate=0.04, leave_rate=0.02, fail_rate=0.02
            ),
        )
        sim = Simulation(config)
        tracer = sim.enable_tracing()
        result = sim.run()
        # The sweeps actually repaired something, and the bijection with
        # the latency recorder held while they did.
        assert result.extras["audit_repairs"] > 0
        assert tracer.completed == sim.latency.count
        assert sorted(tracer.latencies) == sorted(sim.latency.samples)
        check_trace_invariants(tracer)
        events = {
            note.event
            for trace in tracer.traces()
            for note in trace.annotations
        }
        # Query-carried control still annotates its carrier's trace...
        assert "dup.subscribe" in events
        # ... but auditor rewalks travel as background control with no
        # carrier trace, so they never annotate any query's trace.
        assert "dup.refreshsubscribe" not in events
