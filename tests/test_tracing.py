"""Tests of the message log."""

import pytest

from repro.engine import Simulation, SimulationConfig
from repro.engine.tracing import MessageLog
from repro.net.message import Category


def chain_sim(scheme="dup", **overrides):
    defaults = dict(
        scheme=scheme,
        num_nodes=6,
        topology="chain",
        hop_latency_mean=0.001,
        duration=50_000.0,
        warmup=0.0,
        threshold_c=1,
        seed=1,
    )
    defaults.update(overrides)
    sim = Simulation(SimulationConfig(**defaults))
    sim.start()
    sim.env.run(until=0.0)
    return sim


class TestMessageLog:
    def test_records_query_and_reply(self):
        sim = chain_sim("pcx")
        log = MessageLog.attach(sim)
        sim.scheme.on_local_query(5)
        sim.env.run(until=5.0)
        assert log.summary() == {"query": 5, "reply": 5}
        kinds = {entry.kind for entry in log}
        assert kinds == {"query", "reply"}

    def test_entries_carry_details(self):
        sim = chain_sim("pcx")
        log = MessageLog.attach(sim)
        sim.scheme.on_local_query(5)
        sim.env.run(until=5.0)
        first = next(iter(log))
        assert "origin=5" in first.detail
        assert first.destination == 4
        assert "query" in str(first)

    def test_push_and_control_logged(self):
        sim = chain_sim("dup")
        log = MessageLog.attach(sim)
        # subscribe recipe: miss, hit, miss-with-subscription
        sim.scheme.on_local_query(5)
        sim.env.run(until=3550.0)
        sim.scheme.on_local_query(5)
        sim.env.run(until=3650.0)
        sim.scheme.on_local_query(5)
        sim.env.run(until=7200.0)  # push cycle at 7080
        categories = log.summary()
        assert categories.get("push", 0) >= 1
        pushes = log.of_category(Category.PUSH)
        assert pushes[-1].destination == 5
        assert "version=" in pushes[-1].detail

    def test_between_and_to_node(self):
        sim = chain_sim("pcx")
        log = MessageLog.attach(sim)
        sim.scheme.on_local_query(5)
        sim.env.run(until=5.0)
        assert len(log.between(0.0, 5.0)) == len(log)
        assert log.between(100.0, 200.0) == []
        assert all(e.destination == 3 for e in log.to_node(3))

    def test_ring_buffer_eviction(self):
        log = MessageLog(limit=3)
        from repro.net.message import QueryMessage

        for index in range(5):
            log.record(float(index), index, QueryMessage(key=1, origin=0))
        assert len(log) == 3
        assert log.total_recorded == 5
        assert [e.time for e in log] == [2.0, 3.0, 4.0]

    def test_tail_renders(self):
        sim = chain_sim("pcx")
        log = MessageLog.attach(sim)
        sim.scheme.on_local_query(5)
        sim.env.run(until=5.0)
        text = log.tail(3)
        assert text.count("\n") == 2

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            MessageLog(limit=0)
