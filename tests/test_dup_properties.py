"""Property-based tests: the DUP invariants survive arbitrary histories.

Hypothesis drives random trees through random interleavings of
subscribe / unsubscribe / join / leave / fail operations (executed
synchronously, i.e. quiescently), then checks the global invariants:
every interested node is subscribed and push-reachable, lists are
branch-unique and local, and the virtual paths are continuous.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import check_dup_invariants
from repro.topology import random_search_tree

from tests.conftest import SyncDupDriver


@st.composite
def interest_scenario(draw):
    """A tree plus a sequence of subscribe/unsubscribe operations."""
    size = draw(st.integers(2, 40))
    seed = draw(st.integers(0, 2**31))
    steps = draw(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 2**31)),
            min_size=1,
            max_size=40,
        )
    )
    return size, seed, steps


@st.composite
def churn_scenario(draw):
    """A tree plus interleaved interest and churn operations."""
    size = draw(st.integers(4, 30))
    seed = draw(st.integers(0, 2**31))
    steps = draw(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["sub", "unsub", "join-edge", "join-leaf", "leave", "fail"]
                ),
                st.integers(0, 2**31),
            ),
            min_size=1,
            max_size=30,
        )
    )
    return size, seed, steps


class TestInterestProperties:
    @given(interest_scenario())
    @settings(max_examples=120, deadline=None)
    def test_invariants_after_every_step(self, scenario):
        size, seed, steps = scenario
        tree = random_search_tree(size, 4, np.random.default_rng(seed))
        driver = SyncDupDriver(tree)
        non_root = [n for n in tree.nodes if n != tree.root]
        for subscribe, step_seed in steps:
            rng = np.random.default_rng(step_seed)
            node = non_root[int(rng.integers(len(non_root)))]
            if subscribe:
                driver.subscribe(node)
            else:
                driver.unsubscribe(node)
            check_dup_invariants(
                driver.protocol, driver.tree, driver.interested
            )

    @given(interest_scenario())
    @settings(max_examples=60, deadline=None)
    def test_push_reaches_exactly_interested_plus_junctions(self, scenario):
        size, seed, steps = scenario
        tree = random_search_tree(size, 4, np.random.default_rng(seed))
        driver = SyncDupDriver(tree)
        non_root = [n for n in tree.nodes if n != tree.root]
        for subscribe, step_seed in steps:
            rng = np.random.default_rng(step_seed)
            node = non_root[int(rng.integers(len(non_root)))]
            if subscribe:
                driver.subscribe(node)
            else:
                driver.unsubscribe(node)
        recipients = driver.push_recipients()
        interested = driver.interested - {tree.root}
        # Everyone interested gets the push...
        assert interested <= recipients
        # ...and everyone else receiving it forwards it (DUP-tree interior).
        for extra in recipients - interested:
            assert driver.protocol.in_dup_tree(extra)

    @given(interest_scenario())
    @settings(max_examples=60, deadline=None)
    def test_subscriber_lists_bounded_by_degree(self, scenario):
        size, seed, steps = scenario
        tree = random_search_tree(size, 4, np.random.default_rng(seed))
        driver = SyncDupDriver(tree)
        non_root = [n for n in tree.nodes if n != tree.root]
        for subscribe, step_seed in steps:
            rng = np.random.default_rng(step_seed)
            node = non_root[int(rng.integers(len(non_root)))]
            if subscribe:
                driver.subscribe(node)
            else:
                driver.unsubscribe(node)
            for member in tree.nodes:
                assert (
                    len(driver.s_list(member)) <= tree.degree(member) + 1
                )

    @given(interest_scenario())
    @settings(max_examples=40, deadline=None)
    def test_unsubscribing_everyone_resets_state(self, scenario):
        size, seed, steps = scenario
        tree = random_search_tree(size, 4, np.random.default_rng(seed))
        driver = SyncDupDriver(tree)
        non_root = [n for n in tree.nodes if n != tree.root]
        for subscribe, step_seed in steps:
            rng = np.random.default_rng(step_seed)
            node = non_root[int(rng.integers(len(non_root)))]
            if subscribe:
                driver.subscribe(node)
            else:
                driver.unsubscribe(node)
        for node in list(driver.interested):
            driver.unsubscribe(node)
        assert driver.push_recipients() == set()
        for node in tree.nodes:
            assert driver.s_list(node) == set()


class TestChurnProperties:
    @given(churn_scenario())
    @settings(max_examples=120, deadline=None)
    def test_invariants_survive_churn(self, scenario):
        size, seed, steps = scenario
        tree = random_search_tree(size, 4, np.random.default_rng(seed))
        driver = SyncDupDriver(tree)
        next_id = size
        for kind, step_seed in steps:
            rng = np.random.default_rng(step_seed)
            non_root = [n for n in tree.nodes if n != tree.root]
            if kind == "sub" and non_root:
                driver.subscribe(non_root[int(rng.integers(len(non_root)))])
            elif kind == "unsub" and non_root:
                driver.unsubscribe(non_root[int(rng.integers(len(non_root)))])
            elif kind == "join-edge" and non_root:
                lower = non_root[int(rng.integers(len(non_root)))]
                driver.join_edge(next_id, tree.parent(lower), lower)
                next_id += 1
            elif kind == "join-leaf":
                nodes = list(tree.nodes)
                driver.join_leaf(nodes[int(rng.integers(len(nodes)))], next_id)
                next_id += 1
            elif kind == "leave" and len(non_root) > 1:
                driver.leave(non_root[int(rng.integers(len(non_root)))])
            elif kind == "fail" and len(non_root) > 1:
                driver.fail(non_root[int(rng.integers(len(non_root)))])
            tree.validate()
            check_dup_invariants(
                driver.protocol, driver.tree, driver.interested
            )

    @given(churn_scenario())
    @settings(max_examples=60, deadline=None)
    def test_interested_survivors_always_reachable(self, scenario):
        size, seed, steps = scenario
        tree = random_search_tree(size, 4, np.random.default_rng(seed))
        driver = SyncDupDriver(tree)
        next_id = size
        for kind, step_seed in steps:
            rng = np.random.default_rng(step_seed)
            non_root = [n for n in tree.nodes if n != tree.root]
            if kind == "sub" and non_root:
                driver.subscribe(non_root[int(rng.integers(len(non_root)))])
            elif kind == "unsub" and non_root:
                driver.unsubscribe(non_root[int(rng.integers(len(non_root)))])
            elif kind == "join-edge" and non_root:
                lower = non_root[int(rng.integers(len(non_root)))]
                driver.join_edge(next_id, tree.parent(lower), lower)
                next_id += 1
            elif kind == "join-leaf":
                nodes = list(tree.nodes)
                driver.join_leaf(nodes[int(rng.integers(len(nodes)))], next_id)
                next_id += 1
            elif kind == "leave" and len(non_root) > 1:
                driver.leave(non_root[int(rng.integers(len(non_root)))])
            elif kind == "fail" and len(non_root) > 1:
                driver.fail(non_root[int(rng.integers(len(non_root)))])
            recipients = driver.push_recipients()
            assert driver.interested - {tree.root} <= recipients
