"""Tests for the protocol flight recorder.

Three layers:

- unit behaviour of the ring buffer (eviction, all-time counts, dumps,
  anomaly naming);
- the zero-perturbation guarantee — arming the recorder leaves a run
  bit-identical;
- the acceptance criterion — a chaos ``split`` run's recorded
  failover/repair/partition events match the counters the engine and
  the consistency auditor report in the result extras.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import flightrec
from repro.engine import Simulation, SimulationConfig
from repro.engine.chaos import get_scenario
from repro.metrics.export import read_jsonl

SMOKE = dict(
    num_nodes=64,
    duration=3600.0 * 2,
    warmup=1800.0,
    query_rate=3.0,
)


def fingerprint(result) -> str:
    """Canonical JSON of a result, minus wall-clock and config (the
    config legitimately differs by the ``flight_recorder`` flag)."""
    record = dataclasses.asdict(result)
    record.pop("wall_seconds")
    record.pop("config")
    return json.dumps(record, sort_keys=True, default=repr)


class TestRecorderUnit:
    def test_ring_evicts_but_counts_survive(self):
        clock = iter(float(i) for i in range(100))
        recorder = flightrec.FlightRecorder(
            clock=lambda: next(clock), capacity=4
        )
        for i in range(10):
            recorder.record("tree-graft", node=i)
        assert len(recorder) == 4
        assert recorder.total_recorded == 10
        assert recorder.counts() == {"tree-graft": 10}
        assert [event.node for event in recorder.events] == [6, 7, 8, 9]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            flightrec.FlightRecorder(clock=lambda: 0.0, capacity=0)

    def test_records_and_dump(self, tmp_path):
        recorder = flightrec.FlightRecorder(clock=lambda: 1.5)
        recorder.record("subscribe", node=3, subject=None, detail="x")
        path = tmp_path / "flight.jsonl"
        written = recorder.dump(str(path))
        assert written == 2  # summary header + one event
        records = read_jsonl(str(path))
        assert records[0]["type"] == "flight-summary"
        assert records[0]["counts"] == {"subscribe": 1}
        assert records[1] == {
            "type": "flight-event",
            "time": 1.5,
            "kind": "subscribe",
            "node": 3,
            "subject": None,
            "detail": "x",
        }

    def test_anomaly_derives_path_per_reason(self, tmp_path):
        base = tmp_path / "flight.jsonl"
        recorder = flightrec.FlightRecorder(
            clock=lambda: 0.0, anomaly_path=str(base)
        )
        recorder.record("tree-prune", node=1)
        written = recorder.anomaly("golden-mismatch")
        assert written == str(tmp_path / "flight-golden-mismatch.jsonl")
        assert read_jsonl(written)[0]["type"] == "flight-summary"
        assert recorder.anomalies == {"golden-mismatch": 1}

    def test_anomaly_without_dump_path_is_counted_but_unwritten(self):
        recorder = flightrec.FlightRecorder(clock=lambda: 0.0)
        previous = flightrec.set_dump_path(None)
        try:
            assert recorder.anomaly("whatever") is None
        finally:
            flightrec.set_dump_path(previous)
        assert recorder.anomalies == {"whatever": 1}

    def test_module_hook_tolerates_no_recorder(self):
        previous = flightrec.LAST
        flightrec.LAST = None
        try:
            assert flightrec.dump_anomaly("nothing") is None
        finally:
            flightrec.LAST = previous

    def test_set_enabled_round_trips(self):
        previous = flightrec.set_enabled(True)
        try:
            assert flightrec.ENABLED is True
        finally:
            flightrec.set_enabled(previous)


class TestRecorderIsPureObserver:
    """Arming the recorder must leave the run bit-identical."""

    def run_one(self, armed: bool) -> str:
        # Pin the process-wide default off so the unarmed lane stays
        # unarmed even under CI's REPRO_FLIGHT=1 environment.
        previous = flightrec.set_enabled(False)
        try:
            config = SimulationConfig(
                scheme="dup", seed=5, flight_recorder=armed, **SMOKE
            )
            sim = Simulation(config)
            result = sim.run()
        finally:
            flightrec.set_enabled(previous)
        if armed:
            assert sim.recorder is not None
            assert sim.recorder.total_recorded > 0
        else:
            assert sim.recorder is None
        return fingerprint(result)

    def test_armed_run_bit_identical_to_unarmed(self):
        assert self.run_one(False) == self.run_one(True)

    def test_env_default_arms_the_recorder(self):
        previous = flightrec.set_enabled(True)
        try:
            sim = Simulation(SimulationConfig(scheme="dup", seed=5, **SMOKE))
            assert sim.recorder is not None
        finally:
            flightrec.set_enabled(previous)


class TestChaosEventCounts:
    """Acceptance: flight events reconcile with the engine's counters."""

    def run_scenario(self, name: str, seed: int = 3):
        config = get_scenario(name).apply(
            SimulationConfig(
                scheme="dup", seed=seed, flight_recorder=True, **SMOKE
            )
        )
        sim = Simulation(config)
        result = sim.run()
        return sim, result

    def test_split_repairs_match_auditor(self):
        sim, result = self.run_scenario("split")
        counts = sim.recorder.counts()
        assert counts.get("audit-repair", 0) == result.extras["audit_repairs"]
        assert (
            counts.get("audit-detect", 0) == result.extras["audit_violations"]
        )
        assert (
            counts.get("partition-open", 0)
            == result.extras["partitions_started"]
            == 1
        )
        assert counts.get("partition-heal", 0) == 1
        assert counts.get("subscribe", 0) > 0

    def test_regicide_promotion_events_match_failover(self):
        sim, result = self.run_scenario("regicide")
        counts = sim.recorder.counts()
        promoted = int(bool(result.extras["failover_promoted"]))
        assert counts.get("failover-promotion", 0) == promoted
        # For DUP the tree re-roots exactly once per promotion.
        assert counts.get("failover-reroot", 0) == promoted

    def test_dump_flight_round_trips(self, tmp_path):
        sim, _ = self.run_scenario("split")
        path = tmp_path / "flight.jsonl"
        written = sim.dump_flight(str(path))
        records = read_jsonl(str(path))
        assert written == len(records) == len(sim.recorder) + 1
        header = records[0]
        assert header["type"] == "flight-summary"
        assert header["counts"] == sim.recorder.counts()
        kinds = {record["kind"] for record in records[1:]}
        assert "partition-open" in kinds

    def test_unarmed_dump_is_a_noop(self, tmp_path):
        previous = flightrec.set_enabled(False)
        try:
            sim = Simulation(SimulationConfig(scheme="dup", seed=1, **SMOKE))
        finally:
            flightrec.set_enabled(previous)
        assert sim.dump_flight(str(tmp_path / "none.jsonl")) == 0


class TestCliFlightDump:
    def test_chaos_split_writes_flight_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "flight.jsonl"
        code = main(
            [
                "chaos",
                "split",
                "--scheme",
                "dup",
                "--nodes",
                "48",
                "--duration",
                "2700",
                "--warmup",
                "600",
                "--seed",
                "3",
                "--flight-out",
                str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flight records" in out
        records = read_jsonl(str(path))
        assert records[0]["type"] == "flight-summary"
        assert any(r["type"] == "flight-event" for r in records[1:])
