"""Tests of the overload layer: bounded inboxes, breakers, storms.

The four ISSUE-mandated cases anchor this file — a zero-capacity inbox,
control traffic starving (evicting) the data class, the breaker
half-open race with a concurrently healed peer, and worker-count
independence of every drop decision — surrounded by the plan-validation
and accounting tests the layer's determinism story rests on.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.engine import SimulationConfig, run_replications
from repro.errors import ConfigError
from repro.flightrec import FlightRecorder
from repro.index.entry import IndexVersion
from repro.net.message import (
    ControlMessage,
    PushMessage,
    QueryMessage,
    Subscribe,
)
from repro.net.overload import (
    SHED_COALESCED,
    SHED_CONTROL_OVERFLOW,
    SHED_EVICTED,
    SHED_INBOX_FULL,
    OverloadManager,
    OverloadPlan,
    build_manager,
)
from repro.sim.core import Environment
from repro.workload.storms import StormPhase, StormPlan


def version(key: int, number: int) -> IndexVersion:
    return IndexVersion(
        key=key, version=number, issued_at=0.0, ttl=600.0, value=None
    )


def query(key: int = 0, origin: int = 1) -> QueryMessage:
    return QueryMessage(key=key, origin=origin)


def push(key: int = 0, number: int = 1) -> PushMessage:
    return PushMessage(key=key, version=version(key, number), sender=0)


def control(subject: int = 1) -> ControlMessage:
    return ControlMessage(
        key=0, payloads=[Subscribe(subject=subject)], sender=subject
    )


def manager(plan: OverloadPlan, delivered=None, recorder=None):
    env = Environment()
    log = delivered if delivered is not None else []
    mgr = OverloadManager(
        env, plan, lambda dst, msg: log.append((env.now, dst, msg)), recorder
    )
    return env, mgr, log


# -- plan validation ----------------------------------------------------------


class TestOverloadPlan:
    def test_defaults_leave_the_layer_disabled(self):
        plan = OverloadPlan()
        assert not plan.enabled
        assert not plan.inboxes_enabled
        assert not plan.breakers_enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(service_rate=1.0),
            dict(max_subscribers=4),
            dict(authority_coalesce_gap=10.0),
            dict(breaker_threshold=3),
        ],
    )
    def test_any_knob_enables(self, kwargs):
        assert OverloadPlan(**kwargs).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(inbox_capacity=-1),
            dict(service_rate=-0.5),
            dict(max_subscribers=-2),
            dict(authority_coalesce_gap=-1.0),
            dict(breaker_threshold=-1),
            dict(breaker_threshold=2, breaker_cooldown=0.0),
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            OverloadPlan(**kwargs)

    def test_build_manager_is_none_when_disabled(self):
        env = Environment()
        deliver = lambda dst, msg: None  # noqa: E731
        assert build_manager(env, None, deliver) is None
        assert build_manager(env, OverloadPlan(), deliver) is None
        assert build_manager(env, OverloadPlan(service_rate=2.0), deliver)


# -- bounded priority inbox ---------------------------------------------------


class TestBoundedInbox:
    def test_idle_node_processes_immediately(self):
        env, mgr, log = manager(OverloadPlan(service_rate=1.0))
        assert mgr.admit(7, query()) is True
        assert mgr.offered == 1
        assert mgr.shed_total == 0

    def test_zero_capacity_inbox_sheds_everything_queued(self):
        # ISSUE case 1: capacity 0 leaves no waiting room at all.
        env, mgr, log = manager(
            OverloadPlan(service_rate=1.0, inbox_capacity=0)
        )
        assert mgr.admit(7, query()) is True  # idle: server slot, not queue
        assert mgr.admit(7, query()) is False
        assert mgr.shed_data == 1
        # Control with no data to evict is dropped too: nowhere to sit.
        assert mgr.admit(7, control()) is False
        assert mgr.shed_control == 1
        assert mgr.max_queue_depth == 0

    def test_control_evicts_newest_queued_data(self):
        # ISSUE case 2: control starves the data class, never vice versa.
        env, mgr, log = manager(
            OverloadPlan(service_rate=1.0, inbox_capacity=2)
        )
        mgr.admit(7, query(origin=1))  # served now
        first, second = query(origin=2), query(origin=3)
        assert mgr.admit(7, first) is False  # queued
        assert mgr.admit(7, second) is False  # queued, inbox now full
        assert mgr.admit(7, control(subject=4)) is False  # evicts `second`
        assert mgr.admit(7, control(subject=5)) is False  # evicts `first`
        assert mgr.shed_data == 2
        assert mgr.evicted_for_control == 2
        assert mgr.shed_control == 0
        # The inbox is now all-control: only now may control be dropped.
        assert mgr.admit(7, control(subject=6)) is False
        assert mgr.shed_control == 1

    def test_drain_serves_control_before_older_data(self):
        env, mgr, log = manager(
            OverloadPlan(service_rate=1.0, inbox_capacity=4)
        )
        mgr.admit(7, query(origin=1))
        late_control = control(subject=9)
        early_data = query(origin=2)
        mgr.admit(7, early_data)
        mgr.admit(7, late_control)
        env.run(until=10.0)
        # Service completions at t=1, 2, 3: control overtakes the data
        # message that arrived before it.
        assert [entry[2] for entry in log] == [late_control, early_data]
        assert [entry[0] for entry in log] == [1.0, 2.0]

    def test_server_goes_idle_and_recovers(self):
        env, mgr, log = manager(OverloadPlan(service_rate=1.0))
        mgr.admit(7, query())
        env.run(until=5.0)
        # Queue drained; the next arrival is served immediately again.
        assert mgr.admit(7, query()) is True

    def test_pushes_coalesce_to_newest_version(self):
        env, mgr, log = manager(
            OverloadPlan(service_rate=1.0, inbox_capacity=8)
        )
        mgr.admit(7, query())  # occupy the server
        mgr.admit(7, push(key=3, number=1))
        assert mgr.admit(7, push(key=3, number=2)) is False
        assert mgr.pushes_coalesced == 1
        # A stale duplicate coalesces without replacing the newer slot.
        assert mgr.admit(7, push(key=3, number=1)) is False
        assert mgr.pushes_coalesced == 2
        env.run(until=10.0)
        versions = [
            entry[2].version.version
            for entry in log
            if type(entry[2]) is PushMessage
        ]
        assert versions == [2]
        # Coalesces are not sheds: the update still arrives, once.
        assert mgr.shed_total == 0
        assert mgr.shed_fraction == 0.0

    def test_coalescing_respects_distinct_keys(self):
        env, mgr, log = manager(
            OverloadPlan(service_rate=1.0, inbox_capacity=8)
        )
        mgr.admit(7, query())
        mgr.admit(7, push(key=3, number=1))
        mgr.admit(7, push(key=4, number=1))
        assert mgr.pushes_coalesced == 0

    def test_accounting_and_gauges(self):
        recorder = FlightRecorder(clock=lambda: 0.0)
        env = Environment()
        mgr = OverloadManager(
            env,
            OverloadPlan(service_rate=1.0, inbox_capacity=1),
            lambda dst, msg: None,
            recorder,
        )
        mgr.admit(7, query())  # served
        mgr.admit(7, query())  # queued (peak depth 1)
        mgr.admit(7, query())  # shed: inbox-full
        mgr.admit(7, control())  # evicts the queued query
        mgr.admit(7, control())  # all-control: control-overflow
        counters = mgr.counters()
        assert counters["overload_offered"] == 5
        assert counters["overload_shed_data"] == 2
        assert counters["overload_shed_control"] == 1
        assert counters["overload_evicted_for_control"] == 1
        assert counters["max_queue_depth"] == 1
        assert counters["shed_fraction"] == pytest.approx(3 / 5)
        details = [e.detail.split(":")[0] for e in recorder.events]
        assert details == [SHED_INBOX_FULL, SHED_EVICTED, SHED_CONTROL_OVERFLOW]
        assert recorder.counts()["overload-shed"] == 3
        assert SHED_COALESCED  # exported for dashboards; not hit here


# -- per-peer circuit breakers ------------------------------------------------


def breaker_manager(threshold=3, cooldown=60.0):
    return manager(
        OverloadPlan(breaker_threshold=threshold, breaker_cooldown=cooldown)
    )


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        env, mgr, _ = breaker_manager(threshold=3)
        for _ in range(2):
            mgr.record_failure(1, 2, reason="give-up")
        assert mgr.breaker_state(1, 2) == "closed"
        assert mgr.allows(1, 2)
        mgr.record_failure(1, 2, reason="give-up")
        assert mgr.breaker_state(1, 2) == "open"
        assert mgr.breaker_trips == 1
        assert not mgr.allows(1, 2)
        assert mgr.breaker_suppressed == 1

    def test_breakers_are_per_ordered_pair(self):
        env, mgr, _ = breaker_manager(threshold=1)
        mgr.record_failure(1, 2)
        assert not mgr.allows(1, 2)
        assert mgr.allows(2, 1)
        assert mgr.allows(1, 3)

    def test_half_open_lets_exactly_one_probe_through(self):
        env, mgr, _ = breaker_manager(threshold=1, cooldown=10.0)
        mgr.record_failure(1, 2)
        env.run(until=10.0)
        assert mgr.allows(1, 2)  # the probe
        assert mgr.breaker_state(1, 2) == "half-open"
        assert mgr.breaker_probes == 1
        assert not mgr.allows(1, 2)  # everything behind the probe waits

    def test_failed_probe_reopens(self):
        env, mgr, _ = breaker_manager(threshold=1, cooldown=10.0)
        mgr.record_failure(1, 2)
        env.run(until=10.0)
        assert mgr.allows(1, 2)
        mgr.record_failure(1, 2)
        assert mgr.breaker_state(1, 2) == "open"
        assert mgr.breaker_trips == 2
        # The clock restarts from the failed probe, not the first trip.
        assert not mgr.allows(1, 2)
        env.run(until=20.0)
        assert mgr.allows(1, 2)

    def test_successful_probe_closes(self):
        env, mgr, _ = breaker_manager(threshold=1, cooldown=10.0)
        mgr.record_failure(1, 2)
        env.run(until=10.0)
        assert mgr.allows(1, 2)
        mgr.record_success(1, 2)
        assert mgr.breaker_state(1, 2) == "closed"
        assert mgr.allows(1, 2)

    def test_half_open_race_with_concurrently_healed_peer(self):
        # ISSUE case 3: the peer answers *before* the cooldown elapses
        # (an ack from a retry still in flight).  The success closes the
        # OPEN breaker immediately; no probe window is required.
        env, mgr, _ = breaker_manager(threshold=1, cooldown=60.0)
        mgr.record_failure(1, 2)
        assert mgr.breaker_state(1, 2) == "open"
        env.run(until=5.0)  # well inside the cooldown
        mgr.record_success(1, 2)
        assert mgr.breaker_state(1, 2) == "closed"
        assert mgr.allows(1, 2)
        # And the failure count restarted: one new failure does not trip
        # a threshold-2 breaker.
        env2, mgr2, _ = breaker_manager(threshold=2, cooldown=60.0)
        mgr2.record_failure(1, 2)
        mgr2.record_success(1, 2)
        mgr2.record_failure(1, 2)
        assert mgr2.breaker_state(1, 2) == "closed"

    def test_success_on_unknown_peer_is_a_noop(self):
        env, mgr, _ = breaker_manager()
        mgr.record_success(1, 2)
        assert mgr.breaker_state(1, 2) == "closed"

    def test_disabled_breakers_never_trip(self):
        env, mgr, _ = manager(OverloadPlan(service_rate=1.0))
        for _ in range(10):
            mgr.record_failure(1, 2)
        assert mgr.allows(1, 2)
        assert mgr.breaker_trips == 0


# -- end-to-end determinism and identity -------------------------------------

# Mirrors the overload study's purpose-built config at a shorter
# horizon: 64 nodes keep a genuinely cold Zipf tail (ttl below the
# tail's inter-query gap), which storms need to force any forwarding.
STORMY = dict(
    num_nodes=64,
    duration=1800.0,
    warmup=450.0,
    query_rate=3.0,
    ttl=120.0,
    push_lead=30.0,
)

PLAN = OverloadPlan(
    inbox_capacity=8,
    service_rate=1.5,
    max_subscribers=2,
    authority_coalesce_gap=30.0,
    breaker_threshold=3,
    breaker_cooldown=120.0,
)

STORMS = StormPlan(
    phases=(
        StormPhase(
            kind="flash-crowd",
            start=500.0,
            duration=600.0,
            rate=6.0,
            rank_flips=4,
        ),
        StormPhase(kind="update-storm", start=550.0, duration=500.0, rate=0.8),
        StormPhase(
            kind="thrash", start=600.0, duration=400.0, rate=0.1, burst=17
        ),
    )
)


def fingerprint(result) -> str:
    record = dataclasses.asdict(result)
    record.pop("wall_seconds")
    return json.dumps(record, sort_keys=True, default=repr)


class TestEndToEnd:
    def test_drop_decisions_identical_across_worker_counts(self):
        # ISSUE case 4: every drop decision is a pure function of queue
        # state, so the full result (drop accounting included) is
        # bit-identical under any worker count.
        config = SimulationConfig(
            scheme="dup", seed=3, overload=PLAN, storms=STORMS, **STORMY
        )
        serial = run_replications(config, replications=2, workers=1)
        pooled = run_replications(config, replications=2, workers=4)
        prints = [fingerprint(r) for r in serial.runs]
        assert prints == [fingerprint(r) for r in pooled.runs]
        # The storm genuinely exercised the layer, or this test proves
        # nothing about drop decisions.
        extras = serial.runs[0].extras
        assert extras["overload_offered"] > 0
        assert extras["overload_shed_data"] > 0

    def test_disabled_layer_is_bit_identical_to_no_layer(self):
        # overload=None and an all-default (disabled) plan must produce
        # the same run, byte for byte: the goldens depend on it.
        base = SimulationConfig(scheme="dup", seed=3, **STORMY)
        defaulted = SimulationConfig(
            scheme="dup", seed=3, overload=OverloadPlan(), **STORMY
        )
        without = run_replications(base, replications=1, workers=1)
        with_default = run_replications(defaulted, replications=1, workers=1)

        def observables(result) -> str:
            record = dataclasses.asdict(result)
            record.pop("wall_seconds")
            record.pop("config")  # the configs differ *by construction*
            return json.dumps(record, sort_keys=True, default=repr)

        assert observables(without.runs[0]) == observables(
            with_default.runs[0]
        )
        assert "overload_offered" not in without.runs[0].extras

    def test_cli_overload_and_storm_flags(self, capsys):
        from repro.cli import main

        code = main(
            [
                "simulate",
                "--scheme",
                "dup",
                "--nodes",
                "48",
                "--duration",
                "2000",
                "--warmup",
                "500",
                "--ttl",
                "120",
                "--service-rate",
                "1.5",
                "--inbox-capacity",
                "8",
                "--max-subscribers",
                "2",
                "--breaker-threshold",
                "3",
                "--coalesce-gap",
                "30",
                "--storm",
                "flash-crowd",
                "--storm",
                "thrash",
                "--storm-rate",
                "4",
                "--storm-burst",
                "17",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "overload_offered" in output
        assert "storm_phases_completed': 2" in output

    def test_stampede_scenario_applies_overload_and_storms(self):
        from repro.engine.chaos import get_scenario

        scenario = get_scenario("stampede")
        # The stock scenario is sized for the CLI defaults' horizon.
        config = SimulationConfig(
            scheme="dup",
            seed=1,
            **dict(STORMY, duration=3600.0, warmup=900.0),
        )
        applied = scenario.apply(config)
        assert applied.overload is not None
        assert applied.overload.enabled
        assert [p.kind for p in applied.storms.phases] == [
            "flash-crowd",
            "update-storm",
        ]
        # Offsets resolve against warm-up; a config already carrying an
        # overload plan keeps its own.
        assert applied.storms.phases[0].start == config.warmup + 120.0
        own = config.replace(overload=PLAN)
        assert scenario.apply(own).overload is PLAN

    def test_protected_run_reports_overload_extras(self):
        config = SimulationConfig(
            scheme="dup", seed=3, overload=PLAN, storms=STORMS, **STORMY
        )
        result = run_replications(config, replications=1, workers=1).runs[0]
        for key in (
            "overload_offered",
            "overload_shed_data",
            "overload_shed_control",
            "shed_fraction",
            "max_queue_depth",
            "queue_depth_p99",
            "breaker_trips",
        ):
            assert key in result.extras, key
