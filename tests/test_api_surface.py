"""Hygiene tests over the public API surface.

Every exported name must resolve and be documented; every package module
must carry a module docstring.  These tests keep the library's "open
source release" bar enforced mechanically.
"""

import importlib
import pathlib
import pkgutil

import pytest

import repro

PACKAGE_ROOT = pathlib.Path(repro.__file__).parent


def iter_module_names():
    yield "repro"
    for info in pkgutil.walk_packages([str(PACKAGE_ROOT)], prefix="repro."):
        yield info.name


ALL_MODULES = sorted(set(iter_module_names()))


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_module_imports_and_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize(
        "module_name",
        [name for name in ALL_MODULES if name.count(".") == 1],
    )
    def test_package_all_entries_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_exported_callables_documented(self):
        for name in repro.__all__:
            item = getattr(repro, name, None)
            if callable(item):
                assert item.__doc__, f"repro.{name} lacks a docstring"

    def test_version_matches_pyproject(self):
        pyproject = (PACKAGE_ROOT.parent.parent / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in pyproject


class TestPublicMethodDocstrings:
    @pytest.mark.parametrize(
        "cls_path",
        [
            "repro.core.protocol.DupProtocol",
            "repro.core.subscriber_list.SubscriberList",
            "repro.core.maintenance.DupMaintenance",
            "repro.engine.simulation.Simulation",
            "repro.engine.multikey.MultiKeySimulation",
            "repro.topology.tree.SearchTree",
            "repro.topology.chord.ChordRing",
            "repro.topology.can.CanOverlay",
            "repro.index.cache.IndexCache",
            "repro.index.authority.Authority",
            "repro.dissemination.platform.DisseminationPlatform",
            "repro.sim.core.Environment",
        ],
    )
    def test_public_methods_documented(self, cls_path):
        module_name, cls_name = cls_path.rsplit(".", 1)
        cls = getattr(importlib.import_module(module_name), cls_name)
        assert cls.__doc__, cls_path
        undocumented = [
            name
            for name, member in vars(cls).items()
            if callable(member)
            and not name.startswith("_")
            and not member.__doc__
        ]
        assert not undocumented, f"{cls_path}: {undocumented}"
