"""Tests of dissemination-platform membership churn."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dissemination import DisseminationPlatform
from repro.dissemination.platform import TopicError
from repro.errors import NodeNotFoundError
from repro.sim import Environment
from repro.stats.distributions import Deterministic


def make_platform(n=64, seed=13):
    env = Environment()
    platform = DisseminationPlatform(
        env, num_nodes=n, seed=seed, hop_latency=Deterministic(0.01)
    )
    return env, platform


class TestDeparture:
    def test_departed_subscriber_stops_receiving(self):
        env, platform = make_platform()
        platform.create_topic("t")
        node = platform.nodes[5]
        log = []
        platform.on_delivery(node, log.append)
        platform.subscribe(node, "t")
        platform.publish(platform.nodes[9], "t", "before")
        env.run()
        platform.node_left(node)
        platform.publish(platform.nodes[9], "t", "after")
        env.run()
        assert [d.payload for d in log] == ["before"]

    def test_departed_node_rejected_from_api(self):
        env, platform = make_platform()
        platform.create_topic("t")
        node = platform.nodes[3]
        platform.node_left(node)
        assert not platform.is_member(node)
        with pytest.raises(NodeNotFoundError):
            platform.subscribe(node, "t")
        with pytest.raises(NodeNotFoundError):
            platform.publish(node, "t", "x")

    def test_authority_cannot_leave(self):
        env, platform = make_platform()
        handle = platform.create_topic("t")
        with pytest.raises(TopicError):
            platform.node_left(handle.authority)

    def test_other_subscribers_survive_departure(self):
        env, platform = make_platform(n=80)
        platform.create_topic("t")
        keep = [platform.nodes[7], platform.nodes[21], platform.nodes[40]]
        handle = platform.create_topic("t")
        goner = next(
            n
            for n in platform.nodes
            if n not in keep and n != handle.authority
        )
        log = []
        for node in keep:
            platform.on_delivery(node, log.append)
            platform.subscribe(node, "t")
        platform.subscribe(goner, "t")
        platform.node_left(goner)
        platform.publish(keep[0], "t", "payload")
        env.run()
        assert sorted(d.subscriber for d in log) == sorted(keep)

    def test_topics_created_after_departure_exclude_it(self):
        env, platform = make_platform()
        victim = platform.nodes[10]
        platform.node_left(victim)
        handle = platform.create_topic("fresh")
        # The new topic's tree must not contain the departed node unless
        # it happens to be the authority (excluded by construction).
        assert victim not in platform._require_topic("fresh").tree or (
            victim == handle.authority
        )


class TestChurnProperties:
    @given(
        st.integers(16, 48),
        st.integers(0, 2**31),
        st.lists(st.integers(0, 2**31), min_size=2, max_size=16),
    )
    @settings(max_examples=25, deadline=None)
    def test_delivery_exactness_under_departures(
        self, n, seed, operation_seeds
    ):
        env = Environment()
        platform = DisseminationPlatform(
            env, num_nodes=n, seed=seed, hop_latency=Deterministic(0.001)
        )
        handle = platform.create_topic("t")
        log = []
        for node in platform.nodes:
            platform.on_delivery(node, log.append)
        subscribed: set[int] = set()
        members = set(platform.nodes)
        for op_seed in operation_seeds:
            rng = np.random.default_rng(op_seed)
            candidates = sorted(members - {handle.authority})
            if not candidates:
                break
            node = int(rng.choice(candidates))
            action = rng.random()
            if action < 0.5:
                platform.subscribe(node, "t")
                subscribed.add(node)
            elif action < 0.8 or node not in members:
                platform.unsubscribe(node, "t")
                subscribed.discard(node)
            elif len(members) > 4:
                platform.node_left(node)
                members.discard(node)
                subscribed.discard(node)
        log.clear()
        publisher = handle.authority
        platform.publish(publisher, "t", "final")
        env.run()
        delivered = sorted(d.subscriber for d in log)
        assert delivered == sorted(subscribed)
