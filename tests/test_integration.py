"""End-to-end integration tests: the paper's claims at micro scale.

These run full simulations (all subsystems wired together) at sizes small
enough for the unit suite and assert the qualitative results the paper
reports.  The benchmark harness covers the same claims at larger scale.
"""

import pytest

from repro.engine import SimulationConfig, compare_schemes, run_simulation
from repro.workload import ChurnConfig


def micro(**overrides):
    defaults = dict(
        num_nodes=256,
        query_rate=5.0,
        duration=3600.0 * 5,
        warmup=3600.0 * 2,
        seed=17,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestHeadlineResult:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_schemes(
            micro(), ("pcx", "cup", "cup-ideal", "dup"), replications=2
        )

    def test_latency_ordering(self, comparison):
        dup = comparison.latency("dup").mean
        cup = comparison.latency("cup").mean
        pcx = comparison.latency("pcx").mean
        assert dup < cup < pcx

    def test_dup_latency_gap_is_wide(self, comparison):
        # The paper: "in many cases DUP performs an order of magnitude
        # better than CUP".
        dup = comparison.latency("dup").mean
        cup = comparison.latency("cup").mean
        assert cup / max(dup, 1e-9) > 5

    def test_cost_ordering(self, comparison):
        dup = comparison.relative_cost["dup"].mean
        cup = comparison.relative_cost["cup"].mean
        assert dup < cup < 1.0

    def test_ideal_cup_closes_the_latency_gap(self, comparison):
        # The cut-off mechanism explains CUP's latency: remove it and CUP
        # behaves like DUP latency-wise.
        ideal = comparison.latency("cup-ideal").mean
        cup = comparison.latency("cup").mean
        assert ideal < cup

    def test_hit_rates_ordered(self, comparison):
        assert (
            comparison.by_scheme["dup"].hit_rate
            >= comparison.by_scheme["cup"].hit_rate
            >= comparison.by_scheme["pcx"].hit_rate
        )


class TestCupCeiling:
    def test_cup_latency_roughly_halves_pcx(self):
        # Soft-state registrations turn one miss per TTL into one miss
        # per ~2 TTL: CUP's latency lands in a band around half of PCX's.
        comparison = compare_schemes(
            micro(query_rate=10.0), ("pcx", "cup"), replications=2
        )
        ratio = (
            comparison.latency("cup").mean / comparison.latency("pcx").mean
        )
        assert 0.3 < ratio < 0.9


class TestWorkloadEffects:
    def test_latency_decreases_with_rate(self):
        latencies = []
        for rate in (0.5, 5.0, 20.0):
            result = run_simulation(micro(scheme="pcx", query_rate=rate))
            latencies.append(result.mean_latency)
        assert latencies[0] > latencies[1] > latencies[2]

    def test_latency_grows_with_network(self):
        small = run_simulation(micro(scheme="pcx", num_nodes=64))
        large = run_simulation(micro(scheme="pcx", num_nodes=512))
        assert large.mean_latency > small.mean_latency

    def test_degree_two_is_worst_for_pcx(self):
        deep = run_simulation(micro(scheme="pcx", max_degree=2))
        shallow = run_simulation(micro(scheme="pcx", max_degree=8))
        assert shallow.mean_latency <= deep.mean_latency * 1.1

    def test_pareto_bursts_improve_pcx(self):
        smooth = run_simulation(
            micro(scheme="pcx", arrival="pareto", pareto_alpha=1.6)
        )
        bursty = run_simulation(
            micro(scheme="pcx", arrival="pareto", pareto_alpha=1.05)
        )
        assert bursty.mean_latency <= smooth.mean_latency * 1.1


class TestConservationProperties:
    def test_query_reply_hop_symmetry_without_churn(self):
        # Every request hop is eventually matched by a reply hop when no
        # node disappears (modulo in-flight messages at the horizon).
        result = run_simulation(micro(scheme="pcx"))
        queries = result.hop_breakdown["query"]
        replies = result.hop_breakdown["reply"]
        assert abs(queries - replies) <= 10

    def test_cost_at_least_twice_latency_for_pcx(self):
        # PCX cost = request hops + reply hops = 2x request hops.
        result = run_simulation(micro(scheme="pcx"))
        assert result.cost_per_query == pytest.approx(
            2 * result.mean_latency, rel=0.02
        )

    def test_no_drops_without_churn(self):
        for scheme in ("pcx", "cup", "dup"):
            result = run_simulation(micro(scheme=scheme))
            assert result.dropped_messages == 0
            assert result.incomplete_queries == 0

    def test_churn_keeps_metrics_finite(self):
        churn = ChurnConfig(join_rate=0.02, leave_rate=0.01, fail_rate=0.01)
        result = run_simulation(micro(scheme="dup", churn=churn))
        assert result.mean_latency == result.mean_latency  # not nan
        assert result.cost_per_query >= 0


class TestDeterminism:
    def test_full_stack_reproducibility(self):
        first = run_simulation(micro(scheme="dup"))
        second = run_simulation(micro(scheme="dup"))
        assert first.mean_latency == second.mean_latency
        assert first.hop_breakdown == second.hop_breakdown
        assert first.extras == second.extras

    def test_chord_topology_reproducibility(self):
        first = run_simulation(micro(scheme="dup", topology="chord"))
        second = run_simulation(micro(scheme="dup", topology="chord"))
        assert first.mean_latency == second.mean_latency
