"""Unit and metamorphic tests for the interest measurement policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.interest_model import predicted_dup_relative_push_cost
from repro.core.interest import (
    AdaptiveInterestPolicy,
    EwmaInterestPolicy,
    WindowInterestPolicy,
)
from repro.errors import ConfigError


class TestWindowPolicy:
    def test_threshold_is_strict(self):
        # "greater than a threshold value c" — exactly c is not enough.
        policy = WindowInterestPolicy(window=100.0, threshold=3)
        for t in (1.0, 2.0, 3.0):
            policy.record(t)
        assert not policy.is_interested(4.0)
        policy.record(4.0)
        assert policy.is_interested(5.0)

    def test_window_expiry(self):
        policy = WindowInterestPolicy(window=10.0, threshold=1)
        policy.record(0.0)
        policy.record(1.0)
        assert policy.is_interested(5.0)
        # At t=10.5 the arrival at t=0 left the window; count drops to 1.
        assert not policy.is_interested(10.5)
        assert policy.count(10.5) == 1
        # At t=11.5 both arrivals are gone.
        assert policy.count(11.5) == 0

    def test_boundary_is_half_open(self):
        policy = WindowInterestPolicy(window=10.0, threshold=0)
        policy.record(0.0)
        assert policy.count(10.0) == 0  # arrival exactly window-old: gone
        policy2 = WindowInterestPolicy(window=10.0, threshold=0)
        policy2.record(0.1)
        assert policy2.count(10.0) == 1

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            WindowInterestPolicy(window=0.0, threshold=1)
        with pytest.raises(ConfigError):
            WindowInterestPolicy(window=10.0, threshold=-1)

    def test_zero_threshold(self):
        policy = WindowInterestPolicy(window=10.0, threshold=0)
        assert not policy.is_interested(0.0)
        policy.record(0.0)
        assert policy.is_interested(1.0)


class TestEwmaPolicy:
    def test_burst_triggers_interest(self):
        policy = EwmaInterestPolicy(window=3600.0, threshold=6)
        for t in range(10):
            policy.record(float(t))
        assert policy.is_interested(10.0)

    def test_decay_removes_interest(self):
        policy = EwmaInterestPolicy(
            window=3600.0, threshold=6, half_life=600.0
        )
        for t in range(10):
            policy.record(float(t))
        assert policy.is_interested(10.0)
        # Many half-lives later the estimate has collapsed.
        assert not policy.is_interested(10.0 + 20 * 600.0)

    def test_faster_half_life_reacts_faster_to_bursts(self):
        # The EWMA attributes a burst to roughly its half-life window, so
        # a short half-life sees a small burst as a high rate while a
        # long one dilutes it below the threshold.
        slow = EwmaInterestPolicy(3600.0, 6, half_life=3600.0)
        fast = EwmaInterestPolicy(3600.0, 6, half_life=300.0)
        for t in range(4):
            slow.record(float(t))
            fast.record(float(t))
        assert fast.is_interested(5.0)
        assert not slow.is_interested(5.0)
        # ...and it also forgets the burst within a few half-lives.
        assert not fast.is_interested(5.0 + 10 * 300.0)

    def test_sustained_rate_above_threshold(self):
        # ~12 arrivals per window with threshold 6: steadily interested.
        policy = EwmaInterestPolicy(window=3600.0, threshold=6)
        t = 0.0
        for _ in range(50):
            t += 300.0
            policy.record(t)
        assert policy.is_interested(t + 1.0)

    def test_sustained_rate_below_threshold(self):
        # ~2 arrivals per window with threshold 6: never interested.
        policy = EwmaInterestPolicy(window=3600.0, threshold=6)
        t = 0.0
        for _ in range(50):
            t += 1800.0
            policy.record(t)
        assert not policy.is_interested(t + 1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            EwmaInterestPolicy(window=0.0, threshold=1)
        with pytest.raises(ConfigError):
            EwmaInterestPolicy(window=10.0, threshold=-1)
        with pytest.raises(ConfigError):
            EwmaInterestPolicy(window=10.0, threshold=1, half_life=0.0)

    def test_time_never_runs_backwards_internally(self):
        policy = EwmaInterestPolicy(window=100.0, threshold=1)
        policy.record(10.0)
        # Probing the past must not corrupt the estimate.
        policy.is_interested(5.0)
        policy.record(11.0)
        assert policy.is_interested(11.5)


#: Interleavings of arrivals and probes as (op, gap) steps.  Gaps are
#: quarter-unit multiples so that scaling by a power of two stays exact
#: in binary floating point — the window-boundary comparison is half-open
#: and must not flip from rounding.
_history = st.lists(
    st.tuples(st.sampled_from(("record", "probe")), st.integers(0, 80)),
    min_size=1,
    max_size=60,
)


class TestWindowMetamorphic:
    """Satellite: metamorphic properties of WindowInterestPolicy."""

    @given(_history, st.sampled_from((0.25, 0.5, 2.0, 4.0)), st.integers(0, 5))
    @settings(max_examples=200, deadline=None)
    def test_timestamp_scaling_invariance(self, steps, k, threshold):
        # Scaling every timestamp AND the window by the same factor must
        # leave every interest decision unchanged: the policy measures a
        # pure count over a relative interval, not absolute time.
        base = WindowInterestPolicy(window=16.0, threshold=threshold)
        scaled = WindowInterestPolicy(window=16.0 * k, threshold=threshold)
        t = 0.0
        for op, gap in steps:
            t += gap * 0.25
            if op == "record":
                base.record(t)
                scaled.record(t * k)
            else:
                assert base.is_interested(t) == scaled.is_interested(t * k)
        assert base.count(t) == scaled.count(t * k)


class TestAdaptivePolicy:
    """Unit behaviour of the self-tuning threshold."""

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            AdaptiveInterestPolicy(window=0.0, floor=1, ceiling=2)
        with pytest.raises(ConfigError):
            AdaptiveInterestPolicy(window=10.0, floor=-1, ceiling=2)
        with pytest.raises(ConfigError):
            AdaptiveInterestPolicy(window=10.0, floor=3, ceiling=2)
        with pytest.raises(ConfigError):
            AdaptiveInterestPolicy(window=10.0, floor=1, ceiling=2, gain=-0.1)
        with pytest.raises(ConfigError):
            AdaptiveInterestPolicy(
                window=10.0, floor=1, ceiling=2, smoothing=0.0
            )

    def test_constant_rate_settles_threshold(self):
        # 8 arrivals per epoch, gain 0.5: the smoothed rate converges to
        # 8 and the threshold settles at round(0.5 * 8) = 4.
        policy = AdaptiveInterestPolicy(
            window=100.0, floor=0, ceiling=50, gain=0.5
        )
        for epoch in range(30):
            for j in range(8):
                policy.record(epoch * 100.0 + 5.0 + j * 10.0)
        policy.is_interested(30 * 100.0)
        assert policy.rate_estimate == pytest.approx(8.0, abs=1e-6)
        assert policy.threshold == 4

    def test_idle_decay_returns_threshold_to_floor(self):
        policy = AdaptiveInterestPolicy(
            window=100.0, floor=2, ceiling=50, gain=1.0
        )
        for epoch in range(10):
            for j in range(10):
                policy.record(epoch * 100.0 + 5.0 + j * 9.0)
        policy.is_interested(10 * 100.0)
        assert policy.threshold > 2
        # A long idle stretch folds in as zero-count epochs; the rate
        # estimate collapses and the threshold falls back to the floor.
        assert not policy.is_interested(10 * 100.0 + 40 * 100.0)
        assert policy.threshold == 2

    def test_probing_the_past_does_not_corrupt_state(self):
        policy = AdaptiveInterestPolicy(window=100.0, floor=0, ceiling=10)
        policy.record(150.0)
        policy.is_interested(50.0)
        policy.record(160.0)
        assert policy.count(170.0) == 2


class TestAdaptiveMetamorphic:
    """Satellite: metamorphic properties of AdaptiveInterestPolicy."""

    @given(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 12)),
            min_size=1,
            max_size=20,
        ),
        st.integers(0, 3),
        st.integers(5, 12),
        st.sampled_from((0.25, 0.5, 1.0)),
    )
    @settings(max_examples=200, deadline=None)
    def test_threshold_monotone_in_observed_rate(
        self, epochs, floor, ceiling, gain
    ):
        # Pointwise-greater per-epoch arrival counts can never produce a
        # *smaller* threshold: the smoothed rate is a positive-weighted
        # sum of epoch counts and clamp(round(gain * rate)) is monotone.
        window = 10.0
        hi = AdaptiveInterestPolicy(window, floor, ceiling, gain)
        lo = AdaptiveInterestPolicy(window, floor, ceiling, gain)
        for index, (a, b) in enumerate(epochs):
            lo_count, hi_count = min(a, b), max(a, b)
            start = index * window
            for j in range(hi_count):
                t = start + (j + 1) * window / (hi_count + 1)
                hi.record(t)
                if j < lo_count:
                    lo.record(t)
            close = (index + 1) * window
            hi.is_interested(close)
            lo.is_interested(close)
            assert hi.threshold >= lo.threshold
            assert hi.rate_estimate >= lo.rate_estimate

    @given(_history, st.integers(0, 6))
    @settings(max_examples=200, deadline=None)
    def test_frozen_bounds_match_window_policy(self, steps, c):
        # floor == ceiling == c pins the threshold: every decision must
        # match the static policy exactly (the unit-level face of the
        # simulation-level equivalence in test_differential.py).
        frozen = AdaptiveInterestPolicy(window=25.0, floor=c, ceiling=c)
        static = WindowInterestPolicy(window=25.0, threshold=c)
        t = 0.0
        for op, gap in steps:
            t += gap * 0.25
            if op == "record":
                frozen.record(t)
                static.record(t)
            else:
                assert frozen.is_interested(t) == static.is_interested(t)
        assert frozen.threshold == c
        assert frozen.count(t) == static.count(t)

    @given(_history, st.sampled_from((0.25, 0.5, 2.0, 4.0)))
    @settings(max_examples=200, deadline=None)
    def test_timestamp_scaling_invariance(self, steps, k):
        # Epochs scale with the window, so the whole estimator — not
        # just the decision rule — is invariant under time rescaling.
        base = AdaptiveInterestPolicy(16.0, floor=1, ceiling=8, gain=0.5)
        scaled = AdaptiveInterestPolicy(
            16.0 * k, floor=1, ceiling=8, gain=0.5
        )
        t = 0.0
        for op, gap in steps:
            t += gap * 0.25
            if op == "record":
                base.record(t)
                scaled.record(t * k)
            else:
                assert base.is_interested(t) == scaled.is_interested(t * k)
        assert base.threshold == scaled.threshold
        assert base.rate_estimate == pytest.approx(scaled.rate_estimate)

    @given(_history, st.integers(0, 4), st.integers(4, 9))
    @settings(max_examples=200, deadline=None)
    def test_threshold_always_within_bounds(self, steps, floor, ceiling):
        policy = AdaptiveInterestPolicy(
            window=16.0, floor=floor, ceiling=ceiling, gain=2.0
        )
        t = 0.0
        for op, gap in steps:
            t += gap * 0.25
            if op == "record":
                policy.record(t)
            else:
                policy.is_interested(t)
            assert floor <= policy.threshold <= ceiling


class TestEnvelopeHelper:
    def test_figure2_depth_four(self):
        # Depth 4 gives 1.5/(2*4) = 18.75%; the paper's single-subscriber
        # example (no junctions) reaches 12.5%.
        ratio = predicted_dup_relative_push_cost(
            interested=100, mean_depth=4.0
        )
        assert ratio == pytest.approx(0.1875)

    def test_degenerate_inputs(self):
        import math

        assert math.isnan(predicted_dup_relative_push_cost(0, 4.0))
        assert math.isnan(predicted_dup_relative_push_cost(10, 0.0))
