"""Unit tests for the interest measurement policies."""

import pytest

from repro.analysis.interest_model import predicted_dup_relative_push_cost
from repro.core.interest import EwmaInterestPolicy, WindowInterestPolicy
from repro.errors import ConfigError


class TestWindowPolicy:
    def test_threshold_is_strict(self):
        # "greater than a threshold value c" — exactly c is not enough.
        policy = WindowInterestPolicy(window=100.0, threshold=3)
        for t in (1.0, 2.0, 3.0):
            policy.record(t)
        assert not policy.is_interested(4.0)
        policy.record(4.0)
        assert policy.is_interested(5.0)

    def test_window_expiry(self):
        policy = WindowInterestPolicy(window=10.0, threshold=1)
        policy.record(0.0)
        policy.record(1.0)
        assert policy.is_interested(5.0)
        # At t=10.5 the arrival at t=0 left the window; count drops to 1.
        assert not policy.is_interested(10.5)
        assert policy.count(10.5) == 1
        # At t=11.5 both arrivals are gone.
        assert policy.count(11.5) == 0

    def test_boundary_is_half_open(self):
        policy = WindowInterestPolicy(window=10.0, threshold=0)
        policy.record(0.0)
        assert policy.count(10.0) == 0  # arrival exactly window-old: gone
        policy2 = WindowInterestPolicy(window=10.0, threshold=0)
        policy2.record(0.1)
        assert policy2.count(10.0) == 1

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            WindowInterestPolicy(window=0.0, threshold=1)
        with pytest.raises(ConfigError):
            WindowInterestPolicy(window=10.0, threshold=-1)

    def test_zero_threshold(self):
        policy = WindowInterestPolicy(window=10.0, threshold=0)
        assert not policy.is_interested(0.0)
        policy.record(0.0)
        assert policy.is_interested(1.0)


class TestEwmaPolicy:
    def test_burst_triggers_interest(self):
        policy = EwmaInterestPolicy(window=3600.0, threshold=6)
        for t in range(10):
            policy.record(float(t))
        assert policy.is_interested(10.0)

    def test_decay_removes_interest(self):
        policy = EwmaInterestPolicy(
            window=3600.0, threshold=6, half_life=600.0
        )
        for t in range(10):
            policy.record(float(t))
        assert policy.is_interested(10.0)
        # Many half-lives later the estimate has collapsed.
        assert not policy.is_interested(10.0 + 20 * 600.0)

    def test_faster_half_life_reacts_faster_to_bursts(self):
        # The EWMA attributes a burst to roughly its half-life window, so
        # a short half-life sees a small burst as a high rate while a
        # long one dilutes it below the threshold.
        slow = EwmaInterestPolicy(3600.0, 6, half_life=3600.0)
        fast = EwmaInterestPolicy(3600.0, 6, half_life=300.0)
        for t in range(4):
            slow.record(float(t))
            fast.record(float(t))
        assert fast.is_interested(5.0)
        assert not slow.is_interested(5.0)
        # ...and it also forgets the burst within a few half-lives.
        assert not fast.is_interested(5.0 + 10 * 300.0)

    def test_sustained_rate_above_threshold(self):
        # ~12 arrivals per window with threshold 6: steadily interested.
        policy = EwmaInterestPolicy(window=3600.0, threshold=6)
        t = 0.0
        for _ in range(50):
            t += 300.0
            policy.record(t)
        assert policy.is_interested(t + 1.0)

    def test_sustained_rate_below_threshold(self):
        # ~2 arrivals per window with threshold 6: never interested.
        policy = EwmaInterestPolicy(window=3600.0, threshold=6)
        t = 0.0
        for _ in range(50):
            t += 1800.0
            policy.record(t)
        assert not policy.is_interested(t + 1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            EwmaInterestPolicy(window=0.0, threshold=1)
        with pytest.raises(ConfigError):
            EwmaInterestPolicy(window=10.0, threshold=-1)
        with pytest.raises(ConfigError):
            EwmaInterestPolicy(window=10.0, threshold=1, half_life=0.0)

    def test_time_never_runs_backwards_internally(self):
        policy = EwmaInterestPolicy(window=100.0, threshold=1)
        policy.record(10.0)
        # Probing the past must not corrupt the estimate.
        policy.is_interested(5.0)
        policy.record(11.0)
        assert policy.is_interested(11.5)


class TestEnvelopeHelper:
    def test_figure2_depth_four(self):
        # Depth 4 gives 1.5/(2*4) = 18.75%; the paper's single-subscriber
        # example (no junctions) reaches 12.5%.
        ratio = predicted_dup_relative_push_cost(
            interested=100, mean_depth=4.0
        )
        assert ratio == pytest.approx(0.1875)

    def test_degenerate_inputs(self):
        import math

        assert math.isnan(predicted_dup_relative_push_cost(0, 4.0))
        assert math.isnan(predicted_dup_relative_push_cost(10, 0.0))
