"""Tests for result containers, reports, and the RNG substrate."""

import math

import pytest

from repro.engine import SimulationConfig
from repro.engine.results import ReplicatedResult, SimulationResult
from repro.errors import (
    CacheError,
    ConfigError,
    ProtocolError,
    ReproError,
    SchedulingError,
    SimulationError,
    SubscriptionError,
    TopologyError,
    WorkloadError,
)
from repro.metrics.report import MetricsReport
from repro.sim import RandomStreams
from repro.sim.rng import _stable_hash
from repro.stats.confidence import ConfidenceInterval


def fake_result(scheme="pcx", latency=1.0, cost=2.0, seed=1):
    config = SimulationConfig(
        num_nodes=8, duration=7300.0, warmup=3600.0, seed=seed
    )
    return SimulationResult(
        config=config,
        scheme=scheme,
        queries=100,
        mean_latency=latency,
        latency_ci=ConfidenceInterval(latency, 0.1, 0.95, 100),
        cost_per_query=cost,
        hit_rate=0.5,
        hop_breakdown={"query": 50, "reply": 50},
        dropped_messages=0,
        incomplete_queries=0,
        final_population=8,
        wall_seconds=0.01,
    )


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error",
        [
            SimulationError,
            SchedulingError,
            ConfigError,
            TopologyError,
            ProtocolError,
            SubscriptionError,
            CacheError,
            WorkloadError,
        ],
    )
    def test_all_errors_are_repro_errors(self, error):
        assert issubclass(error, ReproError)
        with pytest.raises(ReproError):
            raise error("boom")

    def test_subscription_is_protocol_error(self):
        assert issubclass(SubscriptionError, ProtocolError)

    def test_scheduling_is_simulation_error(self):
        assert issubclass(SchedulingError, SimulationError)


class TestSimulationResult:
    def test_report_view(self):
        result = fake_result()
        report = result.report
        assert isinstance(report, MetricsReport)
        assert report.scheme == "pcx"
        assert report.mean_latency == 1.0
        assert "pcx" in str(result)

    def test_report_without_ci(self):
        result = fake_result()
        stripped = SimulationResult(
            **{
                **result.__dict__,
                "latency_ci": None,
            }
        )
        report = stripped.report
        assert math.isnan(report.latency_ci.half_width)

    def test_report_row_flattening(self):
        row = fake_result().report.to_row()
        assert row["scheme"] == "pcx"
        assert row["hops_query"] == 50
        assert "latency_ci" in row


class TestReplicatedResult:
    def test_aggregation(self):
        runs = [fake_result(latency=1.0), fake_result(latency=3.0, seed=2)]
        aggregated = ReplicatedResult.from_runs(runs)
        assert aggregated.latency.mean == pytest.approx(2.0)
        assert aggregated.cost.mean == pytest.approx(2.0)
        assert aggregated.hit_rate == pytest.approx(0.5)
        assert "pcx" in str(aggregated)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedResult.from_runs([])


class TestMetricsReport:
    def test_str_contains_key_fields(self):
        report = fake_result().report
        text = str(report)
        assert "latency=1" in text
        assert "cost=2" in text
        assert "query=50" in text


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        streams = RandomStreams(1)
        assert streams.get("a") is streams.get("a")

    def test_reproducible_across_instances(self):
        first = RandomStreams(7).get("arrivals").random(5)
        second = RandomStreams(7).get("arrivals").random(5)
        assert list(first) == list(second)

    def test_streams_independent(self):
        streams = RandomStreams(7)
        a = streams.get("a").random(5)
        b = streams.get("b").random(5)
        assert list(a) != list(b)

    def test_consuming_one_stream_does_not_shift_another(self):
        baseline = RandomStreams(3)
        baseline.get("x")  # never drawn from
        expected = list(baseline.get("y").random(3))

        shifted = RandomStreams(3)
        shifted.get("x").random(1000)  # heavy use of the sibling
        observed = list(shifted.get("y").random(3))
        assert observed == expected

    def test_spawn_offsets_seed(self):
        parent = RandomStreams(10)
        child = parent.spawn(5)
        assert child.seed == 15
        assert list(child.get("a").random(3)) == list(
            RandomStreams(15).get("a").random(3)
        )

    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams("abc")

    def test_stable_hash_is_deterministic_and_distinct(self):
        assert _stable_hash("arrivals") == _stable_hash("arrivals")
        assert _stable_hash("arrivals") != _stable_hash("topology")
        assert 0 <= _stable_hash("x") < 2**63 - 1
