"""Tests for the structure-of-arrays scale core (``repro.core.soa``).

The load-bearing test is the randomized oracle: :class:`SoaTree` must
agree with the dict-backed :class:`SearchTree` on every observable after
any interleaving of the mutators the schemes use (subscribe joins,
unsubscribe leaves, churn splices, authority failover re-roots).  The
rest covers the expiry wheel's lazy-invalidation contract, the flat
subscriber table against a naive dict-of-sets, the vectorized
lease/cache sweeps against their per-item counterparts, the lazy Chord
tree against the eager construction, and the conditional Zipf slices
against the global law.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.leases import LeaseTable
from repro.core.soa import ExpiryWheel, FlatSubscriberTable, SoaTree
from repro.errors import NodeNotFoundError, TopologyError, WorkloadError
from repro.index.cache import IndexCache
from repro.index.entry import IndexVersion
from repro.stats.distributions import ZipfSlice, shared_zipf
from repro.topology.chord import ChordRing
from repro.topology.chord_tree import LazyChordTree, chord_search_tree
from repro.topology.tree import SearchTree


class TestSoaTreeOracle:
    """Random interleavings compared mutator-for-mutator to SearchTree."""

    OPS = ("add", "remove", "splice", "insert", "promote", "replace", "rename")

    def _compare(self, soa, ref, nodes):
        assert len(soa) == len(ref)
        assert soa.root == ref.root
        for node in nodes:
            assert node in soa and node in ref
            assert soa.parent(node) == ref.parent(node)
            assert soa.depth(node) == ref.depth(node)
            assert soa.is_leaf(node) == ref.is_leaf(node)
            assert soa.path_to_root(node) == ref.path_to_root(node)
            assert sorted(soa.children(node)) == sorted(ref.children(node))
        assert soa.height() == ref.height()
        assert soa.mean_depth() == pytest.approx(ref.mean_depth())
        soa.validate()
        ref.validate()

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_interleavings_match_searchtree(self, seed):
        rng = np.random.default_rng(seed)
        soa, ref = SoaTree(0), SearchTree(0)
        nodes = [0]
        fresh = 1
        for step in range(1200):
            op = self.OPS[int(rng.integers(len(self.OPS)))]
            if op == "add" or len(nodes) < 4:
                parent = nodes[int(rng.integers(len(nodes)))]
                soa.add_leaf(parent, fresh)
                ref.add_leaf(parent, fresh)
                nodes.append(fresh)
                fresh += 1
            elif op == "remove":
                leaves = [n for n in nodes if ref.is_leaf(n) and n != ref.root]
                if not leaves:
                    continue
                victim = leaves[int(rng.integers(len(leaves)))]
                soa.remove_leaf(victim)
                ref.remove_leaf(victim)
                nodes.remove(victim)
            elif op == "splice":
                inner = [
                    n
                    for n in nodes
                    if n != ref.root and not ref.is_leaf(n)
                ]
                if not inner:
                    continue
                victim = inner[int(rng.integers(len(inner)))]
                assert soa.splice_out(victim) == ref.splice_out(victim)
                nodes.remove(victim)
            elif op == "insert":
                children = [n for n in nodes if n != ref.root]
                if not children:
                    continue
                child = children[int(rng.integers(len(children)))]
                parent = ref.parent(child)
                soa.insert_on_edge(parent, child, fresh)
                ref.insert_on_edge(parent, child, fresh)
                nodes.append(fresh)
                fresh += 1
            elif op == "promote":
                candidates = [n for n in nodes if n != ref.root]
                if not candidates:
                    continue
                node = candidates[int(rng.integers(len(candidates)))]
                old_root = ref.root
                assert soa.promote_to_root(node) == ref.promote_to_root(node)
                # promote_to_root splices the old root OUT of the tree.
                nodes.remove(old_root)
            elif op == "replace":
                old_root = ref.root
                soa.replace_root(fresh)
                ref.replace_root(fresh)
                nodes.remove(old_root)
                nodes.append(fresh)
                fresh += 1
            elif op == "rename":
                node = nodes[int(rng.integers(len(nodes)))]
                soa.rename(node, fresh)
                ref.rename(node, fresh)
                nodes[nodes.index(node)] = fresh
                fresh += 1
            if step % 100 == 0:
                self._compare(soa, ref, nodes)
        self._compare(soa, ref, nodes)

    def test_growth_past_initial_capacity(self):
        tree = SoaTree(0, capacity=4)
        for node in range(1, 200):
            tree.add_leaf(node - 1, node)
        assert len(tree) == 200
        assert tree.depth(199) == 199
        tree.validate()

    def test_error_types_match_searchtree(self):
        tree = SoaTree(0)
        tree.add_leaf(0, 1)
        with pytest.raises(NodeNotFoundError):
            tree.parent(99)
        with pytest.raises(TopologyError):
            tree.add_leaf(0, 1)  # duplicate
        with pytest.raises(TopologyError):
            tree.remove_leaf(0)  # the root
        with pytest.raises(TopologyError):
            tree.splice_out(0)  # the root needs replace_root


class TestExpiryWheel:
    def test_pop_due_returns_and_compacts(self):
        wheel = ExpiryWheel()
        wheel.push(10.0, 1, 100)
        wheel.push(5.0, 2, 200)
        wheel.push(20.0, 3, 300)
        assert wheel.next_deadline() == 5.0
        due = wheel.pop_due(10.0)
        assert sorted(due) == [(1, 100), (2, 200)]
        assert len(wheel) == 1
        assert wheel.next_deadline() == 20.0

    def test_records_are_hints_renewals_just_push(self):
        # Lazy invalidation: a renewed entry keeps its old record; the
        # consumer revalidates on pop, so duplicates are fine.
        wheel = ExpiryWheel()
        wheel.push(5.0, 7, 0)
        wheel.push(9.0, 7, 0)  # renewal pushes a second hint
        assert len(wheel) == 2
        assert [pair for pair in wheel.pop_due(6.0)] == [(7, 0)]
        assert [pair for pair in wheel.pop_due(10.0)] == [(7, 0)]
        assert len(wheel) == 0

    def test_empty_wheel(self):
        wheel = ExpiryWheel()
        assert wheel.pop_due(1e9) == []
        assert wheel.next_deadline() == float("inf")

    def test_growth(self):
        wheel = ExpiryWheel(capacity=2)
        for i in range(100):
            wheel.push(float(i), i, i)
        assert len(wheel) == 100
        assert wheel.pop_due(49.0) == [(i, i) for i in range(50)]


class TestFlatSubscriberTable:
    def test_matches_naive_dict_of_sets(self):
        rng = np.random.default_rng(4)
        table = FlatSubscriberTable(capacity=4)
        naive: dict[int, set[int]] = {}
        for _ in range(3000):
            holder = int(rng.integers(20))
            entry = int(rng.integers(50))
            if rng.random() < 0.6:
                added = entry not in naive.setdefault(holder, set())
                assert table.add(holder, entry) == added
                naive[holder].add(entry)
            else:
                removed = entry in naive.get(holder, set())
                assert table.discard(holder, entry) == removed
                naive.get(holder, set()).discard(entry)
        assert len(table) == sum(len(s) for s in naive.values())
        for holder, entries in naive.items():
            assert set(table.entries_for(holder).tolist()) == entries
            assert table.count_for(holder) == len(entries)
        counts = [len(s) for s in naive.values() if s]
        assert table.max_fanout() == (max(counts) if counts else 0)
        holders, fanouts = table.fanout()
        assert dict(zip(holders.tolist(), fanouts.tolist())) == {
            h: len(s) for h, s in naive.items() if s
        }


class TestVectorizedSweeps:
    def test_lease_sweep_equals_per_holder_expired(self):
        clock = [0.0]
        table = LeaseTable(ttl=10.0, clock=lambda: clock[0])
        rng = np.random.default_rng(5)
        for holder in range(8):
            for entry in range(int(rng.integers(1, 6))):
                clock[0] = float(rng.uniform(0.0, 20.0))
                table.touch(holder, entry)
        now = 18.0
        swept = set(table.sweep(now))
        per_holder = {
            (holder, entry)
            for holder in range(8)
            for entry in table.expired(holder, now)
        }
        assert swept == per_holder

    def _version(self, key, ttl=10.0, issued=0.0):
        return IndexVersion(key=key, version=1, issued_at=issued, ttl=ttl)

    @pytest.mark.parametrize("population", [6, 64])
    def test_cache_sweep_evicts_exactly_the_expired(self, population):
        # Both the small-cache scan and the vectorized path (>32).
        cache = IndexCache()
        for key in range(population):
            ttl = 5.0 if key % 2 else 50.0
            cache.put(self._version(key, ttl=ttl), now=0.0)
        evicted = cache.sweep(now=10.0)
        assert evicted == population // 2
        for key in range(population):
            if key % 2:
                assert cache.peek(key) is None
            else:
                assert cache.get(key, now=10.0) is not None
        assert cache.stats.evictions == population // 2

    def test_cache_sweep_on_empty_cache(self):
        assert IndexCache().sweep(now=1.0) == 0


class TestLazyChordTree:
    def test_matches_eager_construction(self):
        ring = ChordRing.random(200, np.random.default_rng(9), bits=16)
        for key in (3, 777, 54321):
            eager = chord_search_tree(ring, key)
            lazy = LazyChordTree(ring, key)
            assert lazy.root == eager.root
            for node in ring.node_ids:
                assert lazy.parent(node) == eager.parent(node)
                assert lazy.depth(node) == eager.depth(node)
                assert lazy.path_to_root(node) == eager.path_to_root(node)

    def test_touched_grows_lazily(self):
        ring = ChordRing.random(200, np.random.default_rng(9), bits=16)
        lazy = LazyChordTree(ring, 777)
        assert lazy.touched <= 1
        lazy.path_to_root(ring.node_ids[0])
        touched_once = lazy.touched
        assert 0 < touched_once < len(ring.node_ids)
        for node in ring.node_ids:
            lazy.parent(node)
        # Every non-root parent pointer is now memoized.
        assert lazy.touched >= len(ring.node_ids) - 1
        # materialize() hands back the eager tree for full comparison.
        assert lazy.materialize().root == lazy.root


class TestZipfSlices:
    def test_slices_partition_the_global_law(self):
        parent = shared_zipf(100, 0.8)
        slices = [ZipfSlice(parent, lo, hi) for lo, hi in
                  [(0, 25), (25, 50), (50, 100)]]
        assert sum(s.mass for s in slices) == pytest.approx(1.0)
        # Conditional probabilities recompose the global law exactly.
        for s in slices:
            for rank in range(s.lo, s.hi):
                conditional = parent.probability(rank) / s.mass
                assert conditional > 0
        assert slices[0].mass > slices[2].mass  # hot head outweighs tail

    def test_samples_stay_in_range_and_follow_the_law(self):
        parent = shared_zipf(64, 0.9)
        slice_ = ZipfSlice(parent, 8, 24)
        rng = np.random.default_rng(11)
        draws = np.array([slice_.sample(rng) for _ in range(4000)])
        assert draws.min() >= 8 and draws.max() < 24
        # Rank 8 is the hottest in the slice; it must dominate rank 23.
        assert (draws == 8).sum() > (draws == 23).sum() * 1.5

    def test_shared_zipf_is_memoized(self):
        assert shared_zipf(32, 0.8) is shared_zipf(32, 0.8)
        assert shared_zipf(32, 0.8) is not shared_zipf(32, 0.9)

    def test_slice_bounds_validated(self):
        parent = shared_zipf(10, 0.5)
        with pytest.raises(WorkloadError):
            ZipfSlice(parent, 5, 5)
        with pytest.raises(WorkloadError):
            ZipfSlice(parent, -1, 5)
        with pytest.raises(WorkloadError):
            ZipfSlice(parent, 0, 11)
