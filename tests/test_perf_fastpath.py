"""Regression tests for the hot-path performance layers.

Covers the determinism contract of the fast path (``REPRO_FAST=0`` and
``REPRO_FAST=1`` must produce bit-identical experiment output), the
kernel's timeout pooling rules, trace inheritance edge cases, the search
tree's route memoisation under churn, and the benchmark-harness metadata.
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

from repro import fastpath
from repro.experiments import figure4_arrival_rate
from repro.index.entry import IndexVersion
from repro.net.message import PushMessage, QueryMessage, ReplyMessage
from repro.sim.core import Environment, Timeout
from repro.topology.tree import SearchTree

REPO = pathlib.Path(__file__).parent.parent
BENCHMARKS = REPO / "benchmarks"


class TestFastPathDeterminism:
    def test_flag_reflects_environment_and_toggles(self):
        previous = fastpath.set_enabled(False)
        try:
            assert fastpath.ENABLED is False
            assert fastpath.set_enabled(True) is False
            assert fastpath.ENABLED is True
        finally:
            fastpath.set_enabled(previous)

    def test_environment_captures_flag_at_construction(self):
        previous = fastpath.set_enabled(False)
        try:
            slow_env = Environment()
            fastpath.set_enabled(True)
            fast_env = Environment()
            assert slow_env._fast is False
            assert fast_env._fast is True
        finally:
            fastpath.set_enabled(previous)

    def test_figure4_identical_with_and_without_fast_path(self):
        """The tentpole contract: optimisations change wall-clock only."""

        def run():
            return figure4_arrival_rate.run(
                scale="quick", replications=1, rates=(1.0,), workers=1
            )

        previous = fastpath.set_enabled(False)
        try:
            slow = run()
            fastpath.set_enabled(True)
            fast = run()
        finally:
            fastpath.set_enabled(previous)
        # repr round-trips floats exactly, so this is a bit-level check.
        # (Shape checks need the full rate sweep, so only row equality is
        # asserted on this single-rate run.)
        assert slow.rows and repr(slow.rows) == repr(fast.rows)


class TestBatchedKernel:
    def test_batched_flag_toggles_and_is_captured_at_construction(self):
        previous_fast = fastpath.set_enabled(True)
        previous_batched = fastpath.set_batched(False)
        try:
            unbatched_env = Environment()
            fastpath.set_batched(True)
            batched_env = Environment()
            assert unbatched_env._batched is False
            assert batched_env._batched is True
        finally:
            fastpath.set_batched(previous_batched)
            fastpath.set_enabled(previous_fast)

    def test_batched_requires_fast(self):
        previous_fast = fastpath.set_enabled(False)
        previous_batched = fastpath.set_batched(True)
        try:
            env = Environment()
            assert env._batched is False
        finally:
            fastpath.set_batched(previous_batched)
            fastpath.set_enabled(previous_fast)

    def test_defer_order_matches_call_later(self):
        """Deferred records fire in the exact slots timeouts would."""

        def run(batched):
            fastpath.set_enabled(True)
            fastpath.set_batched(batched)
            env = Environment()
            fired = []
            for index, delay in enumerate([3.0, 1.0, 1.0, 2.0, 0.0]):
                env.defer(delay, fired.append, (delay, index))
            env.run()
            return fired

        previous_fast = fastpath.set_enabled(True)
        previous_batched = fastpath.set_batched(True)
        try:
            assert run(True) == run(False)
        finally:
            fastpath.set_batched(previous_batched)
            fastpath.set_enabled(previous_fast)

    def test_defer_rejects_negative_delay(self):
        previous_fast = fastpath.set_enabled(True)
        previous_batched = fastpath.set_batched(True)
        try:
            env = Environment()
            with pytest.raises(Exception):
                env.defer(-1.0, lambda: None)
        finally:
            fastpath.set_batched(previous_batched)
            fastpath.set_enabled(previous_fast)

    def test_step_handles_deferred_records(self):
        previous_fast = fastpath.set_enabled(True)
        previous_batched = fastpath.set_batched(True)
        try:
            env = Environment()
            fired = []
            env.defer(2.0, fired.append, "a")
            env.step()
            assert fired == ["a"]
            assert env.now == 2.0
        finally:
            fastpath.set_batched(previous_batched)
            fastpath.set_enabled(previous_fast)

    def test_figure4_identical_with_and_without_batching(self):
        """Same-tick batch draining changes wall-clock only."""

        def run():
            return figure4_arrival_rate.run(
                scale="quick", replications=1, rates=(1.0,), workers=1
            )

        previous_fast = fastpath.set_enabled(True)
        previous_batched = fastpath.set_batched(False)
        try:
            unbatched = run()
            fastpath.set_batched(True)
            batched = run()
        finally:
            fastpath.set_batched(previous_batched)
            fastpath.set_enabled(previous_fast)
        assert unbatched.rows and repr(unbatched.rows) == repr(batched.rows)


class TestTimeoutPooling:
    def _drain(self, env, events=64):
        def ticker():
            for _ in range(events):
                yield env.timeout(1.0)

        env.process(ticker(), name="ticker")
        env.run(until=events + 1.0)

    def test_fast_kernel_recycles_process_timeouts(self):
        previous = fastpath.set_enabled(True)
        try:
            env = Environment()
            self._drain(env)
            assert len(env._timeout_pool) >= 1
        finally:
            fastpath.set_enabled(previous)

    def test_slow_kernel_never_pools(self):
        previous = fastpath.set_enabled(False)
        try:
            env = Environment()
            self._drain(env)
            assert env._timeout_pool == []
        finally:
            fastpath.set_enabled(previous)

    def test_value_carrying_timeouts_are_not_recycled(self):
        previous = fastpath.set_enabled(True)
        try:
            env = Environment()
            held = []

            def proc():
                event = env.timeout(1.0, value="payload")
                held.append(event)
                got = yield event
                assert got == "payload"

            env.process(proc(), name="valued")
            env.run(until=5.0)
            assert held[0] not in env._timeout_pool
            # The held reference keeps its processed state.
            assert held[0].callbacks is None
        finally:
            fastpath.set_enabled(previous)

    def test_externally_observed_timeout_is_not_recycled(self):
        """An event with extra callbacks may be referenced elsewhere."""
        previous = fastpath.set_enabled(True)
        try:
            env = Environment()
            seen = []
            event = env.timeout(1.0)
            event.callbacks.append(lambda ev: seen.append(ev))
            env.run(until=2.0)
            assert seen == [event]
            assert event not in env._timeout_pool
        finally:
            fastpath.set_enabled(previous)

    def test_pooled_timeout_is_reused_with_fresh_state(self):
        previous = fastpath.set_enabled(True)
        try:
            env = Environment()
            self._drain(env, events=4)
            pooled = env._timeout_pool[-1]
            reused = env.timeout(2.5)
            assert reused is pooled
            assert isinstance(reused, Timeout)
            assert reused.callbacks == []
            assert reused.delay == 2.5
        finally:
            fastpath.set_enabled(previous)


class TestInheritTrace:
    def _version(self):
        return IndexVersion(key=1, version=1, issued_at=0.0, ttl=60.0)

    def test_adopts_trace_from_message(self):
        query = QueryMessage(key=1, origin=5, issued_at=0.0)
        query.trace_id = 42
        push = PushMessage(key=1, version=self._version(), sender=5)
        assert push.inherit_trace(query) is push
        assert push.trace_id == 42

    def test_traceless_message_source_propagates_none(self):
        query = QueryMessage(key=1, origin=5, issued_at=0.0)
        assert query.trace_id is None
        reply = ReplyMessage(
            key=1,
            version=self._version(),
            path=[5],
            position=0,
            request_hops=0,
        )
        reply.trace_id = 9
        reply.inherit_trace(query)
        assert reply.trace_id is None

    def test_raw_id_and_none_sources(self):
        push = PushMessage(key=1, version=self._version(), sender=5)
        assert push.inherit_trace(17).trace_id == 17
        assert push.inherit_trace(None).trace_id is None

    def test_self_inheritance_is_a_noop(self):
        push = PushMessage(key=1, version=self._version(), sender=5)
        push.trace_id = 7
        assert push.inherit_trace(push) is push
        assert push.trace_id == 7


class TestRouteMemoInvalidation:
    def _chain(self):
        tree = SearchTree(0)
        tree.add_leaf(0, 1)
        tree.add_leaf(1, 2)
        tree.add_leaf(2, 3)
        return tree

    def test_cached_paths_match_fresh_computation(self):
        tree = self._chain()
        first = tree.path_to_root(3)
        assert first == [3, 2, 1, 0]
        # Second call hits the memo and must be identical.
        assert tree.path_to_root(3) == first
        assert tree.depth(3) == 3

    def test_churn_join_invalidates(self):
        tree = self._chain()
        assert tree.path_to_root(3) == [3, 2, 1, 0]
        version = tree.version
        tree.insert_on_edge(1, 2, 9)
        assert tree.version > version
        assert tree.path_to_root(3) == [3, 2, 9, 1, 0]
        assert tree.depth(3) == 4

    def test_churn_leave_invalidates(self):
        tree = self._chain()
        assert tree.path_to_root(3) == [3, 2, 1, 0]
        version = tree.version
        tree.splice_out(2)
        assert tree.version > version
        assert tree.path_to_root(3) == [3, 1, 0]
        assert tree.on_path_to_root(3, 1)

    def test_promote_to_root_invalidates(self):
        """Authority failover re-roots the tree under the memo."""
        tree = self._chain()
        assert tree.path_to_root(3) == [3, 2, 1, 0]
        version = tree.version
        tree.promote_to_root(1)
        assert tree.version > version
        assert tree.root == 1
        # The failed old root leaves the tree; memoised paths through it
        # must be gone.
        assert 0 not in tree
        assert tree.path_to_root(3) == [3, 2, 1]
        assert tree.depth(3) == 2

    def test_replace_root_invalidates(self):
        tree = self._chain()
        assert tree.depth(3) == 3
        tree.replace_root(99)
        assert tree.root == 99
        assert tree.path_to_root(3) == [3, 2, 1, 99]


class TestHarnessMetadata:
    @pytest.fixture()
    def harness(self):
        sys.path.insert(0, str(BENCHMARKS))
        try:
            import _harness

            yield _harness
        finally:
            sys.path.remove(str(BENCHMARKS))

    def test_git_sha_is_short_hash_or_none(self, harness):
        sha = harness._git_sha()
        assert sha is None or (
            isinstance(sha, str) and 6 <= len(sha) <= 16
        )

    def test_load_history_tolerates_missing_and_bad_files(
        self, harness, tmp_path
    ):
        assert harness._load_history(tmp_path / "absent.json") == []
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        assert harness._load_history(bad) == []
        no_hist = tmp_path / "nh.json"
        no_hist.write_text('{"wall_seconds": 1}', encoding="utf-8")
        assert harness._load_history(no_hist) == []

    def test_committed_figure4_record_has_metadata_and_baseline(self):
        record = json.loads(
            (BENCHMARKS / "results" / "BENCH_figure4.json").read_text(
                encoding="utf-8"
            )
        )
        assert record["python_version"].count(".") == 2
        assert record["git_sha"]
        walls = [entry["wall_seconds"] for entry in record["history"]]
        assert len(walls) >= 2
        # The committed history demonstrates the tentpole speedup.
        assert walls[0] / walls[-1] >= 1.5
