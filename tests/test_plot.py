"""Tests of the ASCII plotting helper."""

import pytest

from repro.experiments.plot import ascii_plot, plot_experiment_series


class TestAsciiPlot:
    def test_renders_axes_and_legend(self):
        chart = ascii_plot(
            {"up": [(0.0, 0.0), (1.0, 1.0)], "down": [(0.0, 1.0), (1.0, 0.0)]},
            width=20,
            height=6,
            x_label="t",
            y_label="v",
        )
        assert "o=up" in chart
        assert "x=down" in chart
        assert "t from 0 to 1" in chart
        assert "|" in chart and "+" in chart

    def test_points_land_on_canvas_extremes(self):
        chart = ascii_plot({"s": [(0.0, 0.0), (10.0, 5.0)]}, width=10, height=5)
        lines = chart.splitlines()
        assert lines[0].endswith("o")  # max y, max x at top-right
        # bottom row holds the minimum point at the left edge
        assert "o" in lines[4]

    def test_log_x(self):
        chart = ascii_plot(
            {"s": [(0.1, 1.0), (1.0, 2.0), (10.0, 3.0)]},
            width=21,
            height=5,
            log_x=True,
        )
        assert "log scale" in chart
        # On a log axis, 1.0 sits exactly between 0.1 and 10.
        middle_rows = chart.splitlines()
        column_of = {}
        for row in middle_rows[:5]:
            body = row.split("|", 1)[-1]
            if "o" in body:
                column_of[row] = body.index("o")
        assert len(column_of) == 3

    def test_log_x_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": [(0.0, 1.0)]}, log_x=True)

    def test_empty_series(self):
        assert ascii_plot({}) == "(no data)"
        assert ascii_plot({"s": []}) == "(no data)"

    def test_flat_series_has_padding(self):
        chart = ascii_plot({"s": [(0.0, 5.0), (1.0, 5.0)]}, width=10, height=4)
        assert "5.5" in chart and "4.5" in chart


class TestPlotExperimentSeries:
    def test_from_rows(self):
        rows = [
            {"x": 1.0, "a": 2.0, "b": 3.0},
            {"x": 2.0, "a": 1.0, "b": 4.0},
        ]
        chart = plot_experiment_series(rows, "x", ["a", "b"])
        assert "o=a" in chart
        assert "x=b" in chart

    def test_skips_missing_and_nan_cells(self):
        rows = [
            {"x": 1.0, "a": 2.0},
            {"x": 2.0, "a": float("nan")},
            {"x": 3.0},
        ]
        chart = plot_experiment_series(rows, "x", ["a"])
        canvas_glyphs = sum(
            line.split("|", 1)[1].count("o")
            for line in chart.splitlines()
            if "|" in line
        )
        assert canvas_glyphs == 1
