"""Tests for streaming sweep telemetry: structured progress events,
failure recording, the JSONL writer, and the ``top`` dashboard view."""

from __future__ import annotations

import math

import pytest

from repro.engine import (
    ParallelRunner,
    SimulationConfig,
    TelemetryWriter,
    TrialSpec,
    render_top,
    set_default_event_sink,
)
from repro.engine.parallel import ProgressEvent, run_trials
from repro.errors import ExperimentError
from repro.metrics.export import read_jsonl

SMOKE = dict(
    num_nodes=64,
    duration=3600.0 * 2,
    warmup=1800.0,
    query_rate=3.0,
)


def make_specs(count: int = 2, experiment: str = "probe"):
    config = SimulationConfig(scheme="dup", seed=1, **SMOKE)
    return [
        TrialSpec(
            config=config.replace(seed=i + 1),
            experiment=experiment,
            point=float(i),
            replication=i,
        )
        for i in range(count)
    ]


def broken_spec(experiment: str = "boom", seed: int = 9):
    bad = SimulationConfig(scheme="dup", seed=seed, **SMOKE)
    # Corrupt a validated field after construction so the failure fires
    # inside the worker, not at spec-build time.
    object.__setattr__(bad, "scheme", "no-such-scheme")
    return TrialSpec(config=bad, experiment=experiment, point=1.5)


class TestProgressEvents:
    def test_one_event_per_trial_with_live_gauges(self):
        events: list[ProgressEvent] = []
        runner = ParallelRunner(workers=1, event_sink=events.append)
        runner.run_trials(make_specs(3))
        assert [e.kind for e in events] == ["trial-done"] * 3
        assert [e.done for e in events] == [1, 2, 3]
        assert all(e.total == 3 for e in events)
        assert all(e.failed == 0 for e in events)
        assert all(0.0 <= e.utilization <= 1.0 for e in events)
        assert all(math.isfinite(e.eta_seconds) for e in events)
        assert events[-1].eta_seconds == pytest.approx(0.0)
        assert all(math.isfinite(e.mean_latency) for e in events)
        record = events[0].to_record()
        assert record["type"] == "progress"
        assert record["trial"].startswith("probe")

    def test_default_event_sink_is_used_and_restored(self):
        events = []

        def sink(event):
            events.append(event)

        previous = set_default_event_sink(sink)
        try:
            ParallelRunner(workers=1).run_trials(make_specs(1))
        finally:
            assert set_default_event_sink(previous) is sink
        assert len(events) == 1

    def test_pool_path_emits_events_too(self):
        events = []
        runner = ParallelRunner(workers=2, event_sink=events.append)
        runner.run_trials(make_specs(2))
        assert len(events) == 2
        assert {e.kind for e in events} == {"trial-done"}


class TestKeepGoing:
    def test_strict_default_still_raises_with_failures_attached(self):
        specs = [make_specs(1)[0], broken_spec()]
        for workers in (1, 2):
            with pytest.raises(ExperimentError) as excinfo:
                run_trials(specs, workers=workers)
            failures = excinfo.value.trial_failures
            assert len(failures) == 1
            assert failures[0].experiment == "boom"
            assert "seed=9" in failures[0].trial

    def test_keep_going_records_and_returns_survivors(self):
        events = []
        specs = [make_specs(1)[0], broken_spec(), make_specs(1, "again")[0]]
        for workers in (1, 2):
            runner = ParallelRunner(
                workers=workers, keep_going=True, event_sink=events.append
            )
            results = runner.run_trials(specs)
            assert len(results) == 2
            assert len(runner.failures) == 1
            failure = runner.failures[0]
            assert failure.experiment == "boom"
            assert "no-such-scheme" in failure.error.replace("'", "")
            assert failure.to_record()["type"] == "trial-failure"
        failed_events = [e for e in events if e.kind == "trial-failed"]
        assert len(failed_events) == 2  # one per workers lane
        assert all(e.error for e in failed_events)


class TestRunAllFailureTable:
    def test_format_failure_table_groups_by_experiment(self):
        from repro.engine.parallel import TrialFailure
        from repro.experiments.registry import format_failure_table

        table = format_failure_table(
            [
                TrialFailure("figure4", "figure4 point=1 seed=2", "boom"),
                TrialFailure("figure4", "figure4 point=2 seed=3", "boom"),
                TrialFailure("table2", "table2 point=4 seed=1", "crash"),
            ]
        )
        assert "3 failed trial(s) in 2 experiment(s)" in table
        assert "figure4 (2 failed)" in table
        assert "table2 (1 failed)" in table
        assert format_failure_table([]) == "no failures"


class TestTelemetryWriter:
    def test_streams_events_and_failures_as_jsonl(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with TelemetryWriter(str(path)) as writer:
            runner = ParallelRunner(
                workers=1, keep_going=True, event_sink=writer
            )
            runner.run_trials([make_specs(1)[0], broken_spec()])
            for failure in runner.failures:
                writer.write_record(failure.to_record())
        records = read_jsonl(str(path))
        kinds = [record["type"] for record in records]
        assert kinds == ["progress", "progress", "trial-failure"]
        assert writer.written == 3

    def test_write_after_close_rejected(self, tmp_path):
        writer = TelemetryWriter(str(tmp_path / "x.jsonl"))
        writer.close()
        with pytest.raises(ValueError):
            writer.write_record({"type": "progress"})


class TestRenderTop:
    def make_record(self, **overrides):
        record = {
            "type": "progress",
            "kind": "trial-done",
            "experiment": "figure4",
            "trial": "figure4 point=1.0 scheme=dup rep=0 seed=2",
            "done": 3,
            "failed": 0,
            "total": 8,
            "workers": 4,
            "wall_seconds": 2.0,
            "elapsed_seconds": 10.0,
            "eta_seconds": 16.7,
            "utilization": 0.8,
            "mean_latency": 1.25,
            "cost_per_query": 3.5,
            "error": "",
        }
        record.update(overrides)
        return record

    def test_renders_progress_eta_and_gauges(self):
        view = render_top(
            [
                self.make_record(done=2),
                self.make_record(),
                self.make_record(
                    experiment="table2", done=1, total=4, failed=1,
                    kind="trial-failed", error="RuntimeError('x')",
                ),
            ]
        )
        assert "4/12 trials done" in view
        assert "1 failed" in view
        assert "figure4" in view and "table2" in view
        assert "util=80%" in view
        assert "lat=1.25" in view and "cost=3.50" in view
        assert "[FAIL]" in view and "RuntimeError" in view

    def test_live_events_render_directly(self):
        events = []
        ParallelRunner(workers=1, event_sink=events.append).run_trials(
            make_specs(1)
        )
        view = render_top(events)
        assert "1/1 trials done" in view

    def test_empty_stream_mentions_other_record_types(self):
        assert render_top([]) == "no progress events yet"
        view = render_top([{"type": "timeline"}, {"type": "flight-event"}])
        assert "1 timeline record(s)" in view
        assert "1 flight event(s)" in view


class TestCliTop:
    def test_top_renders_a_telemetry_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "sweep.jsonl"
        with TelemetryWriter(str(path)) as writer:
            ParallelRunner(workers=1, event_sink=writer).run_trials(
                make_specs(2)
            )
        assert main(["top", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2/2 trials done" in out
        assert "recent trials:" in out
