"""Tests of DUP's churn handling against the paper's Section III-C cases."""

import pytest

from repro.core import check_dup_invariants
from repro.errors import TopologyError


class TestNodeArrival:
    def test_join_on_virtual_path_inherits_subscribers(self, driver):
        # Paper: "suppose a new node N3' is inserted between N3 and N5...
        # N3 notifies N3' that N6 is in its subscriber list."
        driver.subscribe(6)
        driver.subscribe(4)  # N3 is now a DUP-tree node listing {4, 6}
        driver.join_edge(new=30, upper=3, lower=5)
        assert driver.s_list(30) == {6}
        # N3' is an intermediate node of the virtual path, not the tree.
        assert not driver.protocol.in_dup_tree(30)
        assert driver.push_recipients() == {3, 4, 6}
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_join_outside_virtual_paths_needs_nothing(self, driver):
        # Paper: "If the arriving node falls outside of any virtual path,
        # such as between N6 and N8, nothing specific needs to be done."
        driver.subscribe(4)
        hops_before = driver.control_hops
        driver.join_edge(new=60, upper=6, lower=8)
        assert driver.s_list(60) == set()
        assert driver.control_hops == hops_before
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_join_leaf_is_free(self, driver):
        driver.subscribe(6)
        hops_before = driver.control_hops
        driver.join_leaf(parent=4, new=40)
        assert driver.control_hops == hops_before
        assert 40 in driver.tree
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_joined_relay_keeps_flows_working(self, driver):
        driver.subscribe(6)
        driver.join_edge(new=30, upper=3, lower=5)
        # A later unsubscribe from N6 must clear the extended path too.
        driver.unsubscribe(6)
        for node in (5, 30, 3, 2, 1):
            assert driver.s_list(node) == set()
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)


class TestNodeDeparture:
    def test_end_node_clears_its_path(self, driver):
        # Paper: "The only exception is when the leaving node is the end
        # node of a virtual path, e.g., N6: it sends unsubscribe(N6)."
        driver.subscribe(6)
        driver.leave(6)
        assert 6 not in driver.tree
        for node in (5, 3, 2, 1):
            assert driver.s_list(node) == set()
        assert driver.push_recipients() == set()
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_relay_departure_hands_over_silently(self, driver):
        # N5 is a pure relay on N6's virtual path; its parent N3 already
        # lists N6, so the handover changes nothing upstream.
        driver.subscribe(6)
        driver.leave(5)
        assert 5 not in driver.tree
        assert driver.tree.parent(6) == 3
        assert driver.s_list(3) == {6}
        assert driver.push_recipients() == {6}
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_tree_node_departure_corrects_upstream(self, driver):
        # N3 (DUP-tree node listing {4, 6}) leaves; N2 absorbs its role
        # and becomes a tree node itself.
        driver.subscribe(6)
        driver.subscribe(4)
        driver.leave(3)
        assert 3 not in driver.tree
        assert driver.s_list(2) == {4, 6}
        assert driver.s_list(1) == {2}
        assert driver.push_recipients() == {2, 4, 6}
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_subscribed_tree_node_departure(self, driver):
        # N6 subscribed and forwarding for N7: S_6 = {6, 7}.  When N6
        # leaves, N5 takes over pushing to N7.
        driver.subscribe(6)
        driver.subscribe(7)
        driver.leave(6)
        assert 6 not in driver.tree
        assert driver.tree.parent(7) == 5
        assert driver.s_list(5) == {7}
        assert driver.push_recipients() == {7}
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_uninvolved_departure_is_free(self, driver):
        # Paper: "No specific action needs to be taken if a leaving node
        # does not belong to any virtual path."
        driver.subscribe(4)
        hops_before = driver.control_hops
        driver.leave(7)
        assert driver.control_hops == hops_before
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_root_cannot_leave_via_node_left(self, driver):
        with pytest.raises(TopologyError):
            driver.leave(1)


class TestNodeFailure:
    def test_case1_uninvolved_failure(self, driver):
        driver.subscribe(4)
        hops_before = driver.control_hops
        driver.fail(8)
        assert driver.control_hops == hops_before
        assert driver.push_recipients() == {4}
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_case2_end_node_failure(self, driver):
        # Paper case 2: the failed node is the last node of a virtual
        # path (N6); N5 detects it and unsubscribes N6 upstream.
        driver.subscribe(6)
        driver.fail(6)
        assert 6 not in driver.tree
        for node in (5, 3, 2, 1):
            assert driver.s_list(node) == set()
        assert driver.push_recipients() == set()
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_case3_relay_failure_repaired_by_downstream(self, driver):
        # Paper case 3: N5 (inside N6's virtual path) fails; N6 repairs
        # by re-subscribing upward.
        driver.subscribe(6)
        driver.fail(5)
        assert driver.tree.parent(6) == 3
        assert driver.s_list(3) == {6}
        assert driver.push_recipients() == {6}
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_case4_tree_node_failure_repaired_by_subscribers(self, driver):
        # Paper case 4: N3 (DUP-tree node with subscribers N4, N6) fails;
        # both send subscribes to the node that replaces it (N2 absorbs).
        driver.subscribe(6)
        driver.subscribe(4)
        driver.fail(3)
        assert 3 not in driver.tree
        assert driver.s_list(2) == {4, 6}
        assert driver.push_recipients() == {2, 4, 6}
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_case5_root_failure(self, driver):
        # Paper case 5: the root fails; N2 informs the new root that it
        # should push to the branch representative.
        driver.subscribe(6)
        driver.subscribe(4)
        driver.fail_root(new_root=100)
        assert driver.tree.root == 100
        assert driver.s_list(100) == {3}
        assert driver.push_recipients() == {3, 4, 6}
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_failure_of_subscribed_interior_node(self, driver):
        # N6 subscribed and forwarding for N7 and N8 fails: both orphans
        # re-subscribe through the repaired topology.
        driver.subscribe(6)
        driver.subscribe(7)
        driver.subscribe(8)
        driver.fail(6)
        # N5 absorbs N6's position; the orphans' refresh-subscribes make
        # it the new junction forwarding to both.
        assert driver.s_list(5) == {7, 8}
        assert driver.push_recipients() >= {7, 8}
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_root_failure_with_no_subscribers(self, driver):
        driver.fail_root(new_root=100)
        assert driver.tree.root == 100
        assert driver.push_recipients() == set()
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_failed_node_state_is_lost(self, driver):
        driver.subscribe(6)
        driver.fail(5)
        assert len(driver.protocol.s_list(5)) == 0

    def test_root_cannot_fail_via_node_failed(self, driver):
        with pytest.raises(TopologyError):
            driver.fail(1)
