"""Unit and property tests for the index search tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NodeNotFoundError, TopologyError
from repro.topology import (
    SearchTree,
    balanced_tree,
    chain_tree,
    random_search_tree,
    star_tree,
)
from repro.topology.generators import complete_tree


@pytest.fixture
def paper_tree():
    """The tree from the paper's Figure 1/2.

    N1 is the root; N1-N2-N3-{N4, N5-{N6-{N7,N8}}}.
    """
    tree = SearchTree(root=1)
    tree.add_leaf(1, 2)
    tree.add_leaf(2, 3)
    tree.add_leaf(3, 4)
    tree.add_leaf(3, 5)
    tree.add_leaf(5, 6)
    tree.add_leaf(6, 7)
    tree.add_leaf(6, 8)
    return tree


class TestConstruction:
    def test_single_node(self):
        tree = SearchTree(root=0)
        assert tree.root == 0
        assert len(tree) == 1
        assert tree.is_leaf(0)
        tree.validate()

    def test_add_leaf(self, paper_tree):
        assert paper_tree.parent(6) == 5
        assert paper_tree.children(6) == (7, 8)
        paper_tree.validate()

    def test_duplicate_node_rejected(self, paper_tree):
        with pytest.raises(TopologyError):
            paper_tree.add_leaf(1, 3)

    def test_missing_parent_rejected(self, paper_tree):
        with pytest.raises(NodeNotFoundError):
            paper_tree.add_leaf(99, 100)


class TestQueries:
    def test_path_to_root(self, paper_tree):
        assert paper_tree.path_to_root(6) == [6, 5, 3, 2, 1]
        assert paper_tree.path_to_root(1) == [1]

    def test_depth(self, paper_tree):
        assert paper_tree.depth(1) == 0
        assert paper_tree.depth(6) == 4
        assert paper_tree.depth(8) == 5

    def test_lca(self, paper_tree):
        assert paper_tree.lca(4, 6) == 3
        assert paper_tree.lca(7, 8) == 6
        assert paper_tree.lca(4, 4) == 4
        assert paper_tree.lca(1, 8) == 1

    def test_distance(self, paper_tree):
        assert paper_tree.distance(4, 6) == 3
        assert paper_tree.distance(7, 8) == 2
        assert paper_tree.distance(1, 6) == 4
        assert paper_tree.distance(5, 5) == 0

    def test_on_path_to_root(self, paper_tree):
        assert paper_tree.on_path_to_root(6, 3)
        assert paper_tree.on_path_to_root(6, 6)
        assert not paper_tree.on_path_to_root(6, 4)

    def test_child_branch(self, paper_tree):
        assert paper_tree.child_branch(3, 6) == 5
        assert paper_tree.child_branch(3, 4) == 4
        assert paper_tree.child_branch(1, 8) == 2

    def test_child_branch_non_descendant_rejected(self, paper_tree):
        with pytest.raises(TopologyError):
            paper_tree.child_branch(6, 4)
        with pytest.raises(TopologyError):
            paper_tree.child_branch(6, 6)

    def test_descendants_and_subtree_size(self, paper_tree):
        assert set(paper_tree.descendants(5)) == {6, 7, 8}
        assert paper_tree.subtree_size(5) == 4
        assert paper_tree.subtree_size(1) == 8

    def test_leaves(self, paper_tree):
        assert set(paper_tree.leaves()) == {4, 7, 8}

    def test_height_and_mean_depth(self, paper_tree):
        assert paper_tree.height() == 5
        depths = [0, 1, 2, 3, 3, 4, 5, 5]
        assert paper_tree.mean_depth() == pytest.approx(sum(depths) / 8)

    def test_to_networkx(self, paper_tree):
        graph = paper_tree.to_networkx()
        assert graph.number_of_nodes() == 8
        assert graph.number_of_edges() == 7
        assert graph.has_edge(6, 5)  # child -> parent


class TestMutation:
    def test_insert_on_edge(self, paper_tree):
        # The paper's join example: N3' inserted between N3 and N5.
        paper_tree.insert_on_edge(3, 5, 30)
        assert paper_tree.parent(5) == 30
        assert paper_tree.parent(30) == 3
        assert 30 in paper_tree.children(3)
        assert 5 not in paper_tree.children(3)
        paper_tree.validate()

    def test_insert_on_non_edge_rejected(self, paper_tree):
        with pytest.raises(TopologyError):
            paper_tree.insert_on_edge(3, 6, 30)

    def test_remove_leaf(self, paper_tree):
        paper_tree.remove_leaf(4)
        assert 4 not in paper_tree
        assert paper_tree.children(3) == (5,)
        paper_tree.validate()

    def test_remove_non_leaf_rejected(self, paper_tree):
        with pytest.raises(TopologyError):
            paper_tree.remove_leaf(5)

    def test_remove_root_rejected(self, paper_tree):
        with pytest.raises(TopologyError):
            paper_tree.remove_leaf(1)

    def test_splice_out(self, paper_tree):
        absorber = paper_tree.splice_out(5)
        assert absorber == 3
        assert paper_tree.parent(6) == 3
        assert set(paper_tree.children(3)) == {4, 6}
        paper_tree.validate()

    def test_splice_preserves_sibling_position(self, paper_tree):
        paper_tree.splice_out(6)
        assert paper_tree.children(5) == (7, 8)
        paper_tree.validate()

    def test_splice_root_rejected(self, paper_tree):
        with pytest.raises(TopologyError):
            paper_tree.splice_out(1)

    def test_replace_root(self, paper_tree):
        paper_tree.replace_root(10)
        assert paper_tree.root == 10
        assert paper_tree.parent(2) == 10
        assert 1 not in paper_tree
        paper_tree.validate()

    def test_rename(self, paper_tree):
        paper_tree.rename(5, 50)
        assert paper_tree.parent(6) == 50
        assert paper_tree.parent(50) == 3
        assert 5 not in paper_tree
        paper_tree.validate()

    def test_rename_root(self, paper_tree):
        paper_tree.rename(1, 11)
        assert paper_tree.root == 11
        paper_tree.validate()


class TestGenerators:
    def test_random_tree_size_and_root(self):
        rng = np.random.default_rng(0)
        tree = random_search_tree(100, max_degree=4, rng=rng)
        assert len(tree) == 100
        assert tree.root == 0
        tree.validate()

    def test_random_tree_degree_bound(self):
        rng = np.random.default_rng(1)
        tree = random_search_tree(500, max_degree=3, rng=rng)
        assert all(tree.degree(node) <= 3 for node in tree.nodes)

    def test_random_tree_deterministic_per_seed(self):
        first = random_search_tree(50, 4, np.random.default_rng(7))
        second = random_search_tree(50, 4, np.random.default_rng(7))
        assert all(first.parent(n) == second.parent(n) for n in range(1, 50))

    def test_random_tree_degree_one_is_chain(self):
        rng = np.random.default_rng(2)
        tree = random_search_tree(10, max_degree=1, rng=rng)
        assert tree.height() == 9

    def test_larger_degree_means_shallower_tree(self):
        # The paper's Figure 6 premise.
        rng = np.random.default_rng(3)
        shallow = random_search_tree(1000, 10, rng)
        rng = np.random.default_rng(3)
        deep = random_search_tree(1000, 2, rng)
        assert shallow.mean_depth() < deep.mean_depth()

    def test_invalid_generator_arguments(self):
        rng = np.random.default_rng(0)
        with pytest.raises(TopologyError):
            random_search_tree(0, 4, rng)
        with pytest.raises(TopologyError):
            random_search_tree(10, 0, rng)

    def test_chain_tree(self):
        tree = chain_tree(5)
        assert tree.height() == 4
        assert tree.path_to_root(4) == [4, 3, 2, 1, 0]
        tree.validate()

    def test_star_tree(self):
        tree = star_tree(6)
        assert tree.height() == 1
        assert tree.degree(0) == 5
        tree.validate()

    def test_balanced_tree(self):
        tree = balanced_tree(depth=3, degree=2)
        assert len(tree) == 15
        assert tree.height() == 3
        tree.validate()

    def test_complete_tree(self):
        tree = complete_tree(10, degree=3)
        assert len(tree) == 10
        assert tree.degree(0) == 3
        assert tree.degree(1) == 3
        tree.validate()


@st.composite
def tree_and_operations(draw):
    """A random tree followed by a random sequence of mutations."""
    size = draw(st.integers(2, 30))
    seed = draw(st.integers(0, 2**31))
    operations = draw(
        st.lists(
            st.tuples(st.sampled_from(["splice", "leaf", "insert", "add"]),
                      st.integers(0, 2**31)),
            max_size=15,
        )
    )
    return size, seed, operations


class TestTreePropertyBased:
    @given(tree_and_operations())
    @settings(max_examples=60, deadline=None)
    def test_invariants_under_random_mutations(self, scenario):
        size, seed, operations = scenario
        rng = np.random.default_rng(seed)
        tree = random_search_tree(size, max_degree=4, rng=rng)
        next_id = size
        for kind, op_seed in operations:
            op_rng = np.random.default_rng(op_seed)
            nodes = [n for n in tree.nodes if n != tree.root]
            if kind == "splice" and nodes:
                victim = nodes[int(op_rng.integers(len(nodes)))]
                tree.splice_out(victim)
            elif kind == "leaf" and nodes:
                leaves = [n for n in nodes if tree.is_leaf(n)]
                if leaves:
                    tree.remove_leaf(leaves[int(op_rng.integers(len(leaves)))])
            elif kind == "insert" and nodes:
                lower = nodes[int(op_rng.integers(len(nodes)))]
                tree.insert_on_edge(tree.parent(lower), lower, next_id)
                next_id += 1
            elif kind == "add":
                all_nodes = list(tree.nodes)
                parent = all_nodes[int(op_rng.integers(len(all_nodes)))]
                tree.add_leaf(parent, next_id)
                next_id += 1
            tree.validate()

    @given(st.integers(2, 200), st.integers(1, 8), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_generated_tree_paths_reach_root(self, n, degree, seed):
        tree = random_search_tree(n, degree, np.random.default_rng(seed))
        tree.validate()
        for node in tree.nodes:
            path = tree.path_to_root(node)
            assert path[0] == node
            assert path[-1] == tree.root
            assert len(path) == tree.depth(node) + 1
