"""Tests of query traces and trace replay."""

import pytest

from repro.engine import Simulation, SimulationConfig
from repro.errors import WorkloadError
from repro.workload import QueryTrace, TraceEvent


class TestTraceConstruction:
    def test_ordering_enforced(self):
        with pytest.raises(WorkloadError):
            QueryTrace([TraceEvent(2.0, 1), TraceEvent(1.0, 2)])

    def test_negative_time_rejected(self):
        with pytest.raises(WorkloadError):
            QueryTrace([TraceEvent(-1.0, 1)])

    def test_basic_access(self):
        trace = QueryTrace([TraceEvent(1.0, 5), TraceEvent(2.0, 7)])
        assert len(trace) == 2
        assert trace[1].node == 7
        assert trace.duration == 2.0
        assert trace.nodes == {5, 7}

    def test_synthesize_matches_model(self):
        trace = QueryTrace.synthesize(
            nodes=list(range(1, 100)),
            rate=2.0,
            duration=5000.0,
            seed=3,
        )
        assert trace.duration < 5000.0
        assert trace.mean_rate() == pytest.approx(2.0, rel=0.15)
        assert trace.nodes <= set(range(1, 100))

    def test_synthesize_deterministic(self):
        kwargs = dict(nodes=[1, 2, 3], rate=1.0, duration=500.0, seed=9)
        first = QueryTrace.synthesize(**kwargs)
        second = QueryTrace.synthesize(**kwargs)
        assert list(first) == list(second)

    def test_synthesize_pareto(self):
        trace = QueryTrace.synthesize(
            nodes=[1, 2], rate=1.0, duration=2000.0, seed=1,
            arrival="pareto", pareto_alpha=1.2,
        )
        assert len(trace) > 0

    def test_clipped_rebases(self):
        trace = QueryTrace(
            [TraceEvent(float(t), 1) for t in range(10)]
        )
        clipped = trace.clipped(3.0, 7.0)
        assert len(clipped) == 4
        assert clipped[0].time == 0.0


class TestTraceSerialization:
    def test_roundtrip(self, tmp_path):
        trace = QueryTrace.synthesize([1, 2, 3], 1.0, 200.0, seed=4)
        path = tmp_path / "workload.trace"
        trace.save(path)
        loaded = QueryTrace.load(path)
        assert len(loaded) == len(trace)
        assert loaded[0].node == trace[0].node
        assert loaded[0].time == pytest.approx(trace[0].time, abs=1e-6)

    def test_parse_with_comments_and_blanks(self):
        text = """
        # a comment
        1.5 10

        2.5 11  # trailing comment
        """
        trace = QueryTrace.parse(text)
        assert [(e.time, e.node) for e in trace] == [(1.5, 10), (2.5, 11)]

    def test_parse_rejects_malformed(self):
        with pytest.raises(WorkloadError):
            QueryTrace.parse("1.0\n")
        with pytest.raises(WorkloadError):
            QueryTrace.parse("abc 2\n")


class TestReplay:
    def make_sim(self, scheme="pcx"):
        config = SimulationConfig(
            scheme=scheme,
            num_nodes=32,
            topology="chain",
            duration=5000.0,
            warmup=0.0,
            seed=1,
        )
        return Simulation(config)

    def test_replay_issues_exact_queries(self):
        trace = QueryTrace(
            [TraceEvent(10.0, 31), TraceEvent(20.0, 31), TraceEvent(30.0, 15)]
        )
        sim = self.make_sim()
        sim.use_trace(trace)
        result = sim.run()
        assert result.queries == 3
        # First query from the chain tail walks 31 hops; the second hits.
        assert sim.latency.samples[0] == 31.0
        assert sim.latency.samples[1] == 0.0

    def test_replay_is_scheme_comparable(self):
        trace = QueryTrace.synthesize(
            nodes=list(range(1, 32)), rate=0.05, duration=4000.0, seed=5
        )
        counts = []
        for scheme in ("pcx", "dup"):
            sim = self.make_sim(scheme)
            sim.use_trace(trace)
            counts.append(sim.run().queries)
        assert counts[0] == counts[1] == len(trace)

    def test_use_trace_after_run_rejected(self):
        sim = self.make_sim()
        sim.run()
        with pytest.raises(RuntimeError):
            sim.use_trace(QueryTrace([]))

    def test_empty_trace(self):
        sim = self.make_sim()
        sim.use_trace(QueryTrace([]))
        result = sim.run()
        assert result.queries == 0
