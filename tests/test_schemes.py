"""Behavioral tests of the schemes on hand-driven micro-simulations.

These tests build a tiny deterministic topology (a chain, so distances
are unambiguous), start the authority, inject queries by hand, and step
virtual time precisely — asserting hop-exact latencies, cache behavior,
subscriptions, pushes, and cut-offs.
"""

import pytest

from repro.engine import Simulation, SimulationConfig
from repro.net.message import Category
from repro.schemes.registry import available_schemes, make_scheme
from repro.errors import ConfigError


def chain_sim(scheme, n=6, **overrides):
    """A chain 0-1-2-...-(n-1) with node 0 as authority."""
    defaults = dict(
        scheme=scheme,
        num_nodes=n,
        topology="chain",
        ttl=3600.0,
        push_lead=60.0,
        hop_latency_mean=0.001,  # fast transport: steps settle quickly
        duration=100_000.0,
        warmup=0.0,
        threshold_c=2,
        seed=1,
    )
    defaults.update(overrides)
    sim = Simulation(SimulationConfig(**defaults))
    sim.start()
    sim.env.run(until=0.0)  # let the authority issue version 0
    return sim


def settle(sim, seconds=5.0):
    """Let in-flight messages drain."""
    sim.env.run(until=sim.env.now + seconds)


def make_subscribed(sim, node):
    """Drive ``node`` through the canonical DUP subscribe sequence.

    Query at t=0 (miss, fetch), a hit at t=3550, then a miss at t=3650
    (the t=0 entry expired at 3600) whose request packet carries the
    subscription: at that point the trailing window holds two arrivals,
    which exceeds threshold_c=1.
    """
    sim.scheme.on_local_query(node)
    settle(sim)
    sim.env.run(until=3550.0)
    sim.scheme.on_local_query(node)
    settle(sim)
    sim.env.run(until=3650.0)
    sim.scheme.on_local_query(node)
    settle(sim)


class TestRegistry:
    def test_available_schemes(self):
        names = available_schemes()
        assert {"pcx", "cup", "dup", "cup-ideal", "nocache", "push-all"} <= set(
            names
        )

    def test_make_scheme(self):
        assert make_scheme("dup").name == "dup"

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError):
            make_scheme("bogus")


class TestPcx:
    def test_first_query_walks_to_root(self):
        sim = chain_sim("pcx")
        sim.scheme.on_local_query(5)
        settle(sim)
        # Request travelled 5 hops up; reply 5 hops down.
        assert sim.latency.count == 1
        assert sim.latency.mean == pytest.approx(5.0)
        assert sim.ledger.hops(Category.QUERY) == 5
        assert sim.ledger.hops(Category.REPLY) == 5

    def test_path_caching_serves_second_query(self):
        sim = chain_sim("pcx")
        sim.scheme.on_local_query(5)
        settle(sim)
        # Node 3 cached the passing reply; its query is a local hit.
        sim.scheme.on_local_query(3)
        settle(sim)
        assert sim.latency.samples[-1] == 0.0

    def test_sibling_served_by_warm_intermediate(self):
        sim = chain_sim("pcx")
        sim.scheme.on_local_query(5)
        settle(sim)
        sim.cache(5).clear()
        sim.scheme.on_local_query(5)
        settle(sim)
        # Node 4 still has the copy: one hop up.
        assert sim.latency.samples[-1] == 1.0

    def test_cache_expires_after_ttl(self):
        sim = chain_sim("pcx")
        sim.scheme.on_local_query(5)
        settle(sim)
        sim.env.run(until=3700.0)  # past the entry TTL
        sim.scheme.on_local_query(5)
        settle(sim)
        assert sim.latency.samples[-1] == 5.0

    def test_no_pushes_ever(self):
        sim = chain_sim("pcx")
        sim.scheme.on_local_query(5)
        sim.env.run(until=8000.0)  # across two refresh cycles
        assert sim.ledger.hops(Category.PUSH) == 0
        assert sim.ledger.warmup_hops(Category.PUSH) == 0

    def test_root_query_is_free(self):
        sim = chain_sim("pcx", root_queries=True)
        sim.scheme.on_local_query(0)
        settle(sim)
        assert sim.latency.samples[-1] == 0.0
        assert sim.ledger.total_hops == 0


class TestNoCache:
    def test_every_query_walks_to_root(self):
        sim = chain_sim("nocache")
        for _ in range(3):
            sim.scheme.on_local_query(5)
            settle(sim)
        assert list(sim.latency.samples) == [5.0, 5.0, 5.0]

    def test_intermediates_do_not_serve(self):
        sim = chain_sim("nocache")
        sim.scheme.on_local_query(5)
        settle(sim)
        sim.scheme.on_local_query(3)
        settle(sim)
        assert sim.latency.samples[-1] == 3.0


class TestPushAll:
    def test_everyone_warm_after_one_cycle(self):
        sim = chain_sim("push-all")
        sim.env.run(until=3600.0)  # first refresh push at t=3540
        for node in range(1, 6):
            sim.scheme.on_local_query(node)
        settle(sim)
        assert all(s == 0.0 for s in sim.latency.samples)

    def test_push_cost_is_tree_size(self):
        sim = chain_sim("push-all")
        sim.env.run(until=3600.0)
        # One push per edge: 5 edges (plus the t=0 initial issue push).
        assert sim.ledger.hops(Category.PUSH) == 10


class TestDup:
    def test_interested_node_subscribes_on_miss(self):
        sim = chain_sim("dup", threshold_c=1)
        sim.scheme.on_local_query(5)
        settle(sim)
        sim.env.run(until=3550.0)
        sim.scheme.on_local_query(5)  # hit; interested but cache warm:
        settle(sim)                   # the subscription is deferred
        assert not sim.scheme.protocol.is_subscribed(5)
        sim.env.run(until=3650.0)  # entry expired -> next query misses
        sim.scheme.on_local_query(5)
        settle(sim)
        assert sim.scheme.protocol.is_subscribed(5)
        # The subscription rode the request packet: zero control hops.
        assert sim.ledger.hops(Category.CONTROL) == 0

    def test_subscriber_receives_direct_pushes(self):
        sim = chain_sim("dup", threshold_c=1)
        make_subscribed(sim, 5)
        assert sim.scheme.protocol.is_subscribed(5)
        push_hops_before = sim.ledger.hops(Category.PUSH)
        sim.env.run(until=7200.0)  # next refresh at 7080
        # Exactly one direct push root -> node 5 (one hop, despite the
        # five-hop tree distance).
        assert sim.ledger.hops(Category.PUSH) == push_hops_before + 1
        sim.scheme.on_local_query(5)
        settle(sim)
        assert sim.latency.samples[-1] == 0.0

    def test_subscriber_never_misses_across_many_cycles(self):
        sim = chain_sim("dup", threshold_c=1)
        make_subscribed(sim, 5)
        for cycle in range(2, 8):
            sim.env.run(until=3600.0 * cycle)
            # Keep the node interested: two queries per cycle.
            sim.scheme.on_local_query(5)
            settle(sim)
            sim.scheme.on_local_query(5)
            settle(sim)
            assert sim.latency.samples[-1] == 0.0

    def test_lapsed_interest_unsubscribes_at_push(self):
        sim = chain_sim("dup", threshold_c=1)
        make_subscribed(sim, 5)
        assert sim.scheme.protocol.is_subscribed(5)
        # Silence for over a TTL: the next push finds the window empty.
        sim.env.run(until=sim.env.now + 2 * 3600.0 + 100.0)
        assert not sim.scheme.protocol.is_subscribed(5)
        # The unsubscribe walked the virtual path explicitly.
        assert sim.ledger.hops(Category.CONTROL) > 0

    def test_forwarded_queries_refresh_intermediate_tracking(self):
        sim = chain_sim("dup", threshold_c=2)
        # Node 5's misses pass through node 4 (caches cleared so every
        # query is a full miss).
        for _ in range(3):
            for node in (1, 2, 3, 4, 5):
                sim.cache(node).clear()
            sim.scheme.on_local_query(5)
            settle(sim)
        assert sim.scheme.is_interested(4)

    def test_dup_tree_size_reporting(self):
        sim = chain_sim("dup", threshold_c=1)
        make_subscribed(sim, 5)
        assert sim.scheme.dup_tree_size() >= 2
        assert 5 in sim.scheme.subscribed_nodes()


class TestCup:
    def test_registration_rides_miss_and_enables_push(self):
        sim = chain_sim("cup", threshold_c=2)
        for _ in range(3):
            for node in (1, 2, 3, 4, 5):
                sim.cache(node).clear()
            sim.scheme.on_local_query(5)
            settle(sim)
        # After 3 full misses node 5 is interested; the last request
        # registered the whole chain (each hop saw 3 queries > c).
        assert sim.scheme.is_interested(5)
        assert 5 in sim.scheme.live_registrations(4)
        assert 1 in sim.scheme.live_registrations(0)
        push_before = sim.ledger.hops(Category.PUSH)
        sim.env.run(until=3600.0)  # refresh at 3540 pushes down the chain
        assert sim.ledger.hops(Category.PUSH) == push_before + 5

    def test_registration_is_zero_cost(self):
        sim = chain_sim("cup", threshold_c=1)
        for _ in range(3):
            sim.scheme.on_local_query(5)
            sim.cache(5).clear()
            settle(sim)
        assert sim.ledger.hops(Category.CONTROL) == 0

    def test_soft_state_cut_off_after_quiet_ttl(self):
        # The paper's Section II-B critique: a push-warmed node stops
        # querying, its registrations decay, and it is cut off.
        sim = chain_sim("cup", threshold_c=1)
        for _ in range(3):
            for node in (1, 2, 3, 4, 5):
                sim.cache(node).clear()
            sim.scheme.on_local_query(5)
            settle(sim)
        sim.env.run(until=3600.0)  # first refresh: push arrives, cache warm
        sim.scheme.on_local_query(5)
        settle(sim)
        assert sim.latency.samples[-1] == 0.0
        # Now the node stays quiet past the registration TTL.
        sim.env.run(until=3540.0 * 3)
        assert 5 not in sim.scheme.live_registrations(4)
        push_before = sim.ledger.hops(Category.PUSH)
        sim.env.run(until=3540.0 * 4)
        assert sim.ledger.hops(Category.PUSH) == push_before  # cut off

    def test_registrations_die_with_served_packet(self):
        sim = chain_sim("cup", threshold_c=0)
        # Warm node 2 via a full walk from node 3.
        sim.scheme.on_local_query(3)
        settle(sim)
        # Node 5's miss is served at node 4; the interest bit must not
        # continue past the serving node as an explicit message.
        sim.cache(5).clear()
        sim.scheme.on_local_query(5)
        settle(sim)
        assert sim.ledger.hops(Category.CONTROL) == 0


class TestCupIdeal:
    def test_registration_is_hard_state(self):
        sim = chain_sim("cup-ideal", threshold_c=2)
        for _ in range(3):
            for node in (1, 2, 3, 4, 5):
                sim.cache(node).clear()
            sim.scheme.on_local_query(5)
            settle(sim)
        assert sim.scheme.is_registered_up(5)
        # Unlike soft-state CUP, pushes keep flowing cycle after cycle
        # as long as the node stays interested.
        for cycle in (1, 2):
            before = sim.ledger.hops(Category.PUSH)
            sim.scheme.on_local_query(5)  # keep interest alive
            settle(sim)
            sim.env.run(until=3540.0 * cycle + 50)
            assert sim.ledger.hops(Category.PUSH) > before


class TestCupPopularity:
    def test_no_pushes_without_branch_traffic(self):
        sim = chain_sim("cup-popularity", threshold_c=1)
        # One full-walk query: every branch counter gets exactly 1 ( = c).
        sim.scheme.on_local_query(5)
        settle(sim)
        sim.env.run(until=3600.0)
        assert sim.ledger.hops(Category.PUSH) == 0

    def test_pushes_follow_observed_misses(self):
        sim = chain_sim("cup-popularity", threshold_c=1)
        for _ in range(3):
            for node in (1, 2, 3, 4, 5):
                sim.cache(node).clear()
            sim.scheme.on_local_query(5)
            settle(sim)
        assert sim.scheme.branch_is_popular(4, 5)
        push_before = sim.ledger.hops(Category.PUSH)
        sim.env.run(until=3600.0)
        assert sim.ledger.hops(Category.PUSH) == push_before + 5

    def test_chain_collapses_when_pushes_work(self):
        # The degenerate feedback loop: pushes remove the misses that
        # justify them, so the chain dies after one quiet window.
        sim = chain_sim("cup-popularity", threshold_c=1)
        for _ in range(3):
            for node in (1, 2, 3, 4, 5):
                sim.cache(node).clear()
            sim.scheme.on_local_query(5)
            settle(sim)
        sim.env.run(until=3540.0 * 3)
        push_mark = sim.ledger.hops(Category.PUSH)
        sim.env.run(until=3540.0 * 4)
        assert sim.ledger.hops(Category.PUSH) == push_mark

    def test_zero_control_cost(self):
        sim = chain_sim("cup-popularity", threshold_c=1)
        for _ in range(4):
            sim.scheme.on_local_query(5)
            settle(sim)
        assert sim.ledger.hops(Category.CONTROL) == 0


class TestDupInvalidate:
    def test_invalidation_drops_cache(self):
        sim = chain_sim("dup-invalidate", threshold_c=1)
        make_subscribed(sim, 5)
        assert sim.scheme.protocol.is_subscribed(5)
        # Next cycle's push is an invalidation: node 5's copy vanishes.
        sim.env.run(until=7150.0)
        assert sim.cache(5).get(sim.key, sim.env.now) is None

    def test_query_after_invalidation_refetches(self):
        sim = chain_sim("dup-invalidate", threshold_c=1)
        make_subscribed(sim, 5)
        sim.env.run(until=7150.0)  # push at 7080 invalidates
        sim.scheme.on_local_query(5)
        settle(sim)
        assert sim.latency.samples[-1] > 0

    def test_update_variant_avoids_the_refetch(self):
        sim = chain_sim("dup", threshold_c=1)
        make_subscribed(sim, 5)
        sim.env.run(until=7150.0)
        sim.scheme.on_local_query(5)
        settle(sim)
        assert sim.latency.samples[-1] == 0.0
