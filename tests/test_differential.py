"""Differential proofs for the adaptive and balanced DUP variants (PR 8).

Each equivalence below is a *reduction*: a new scheme configured so its
new mechanism cannot engage must be bit-identical — full metric
fingerprint, extras included — to plain ``dup`` on the same (seed,
workload, fault-plan) input.  The divergence tests keep the harness
honest: the same pairs must differ once the mechanism does engage.
"""

from __future__ import annotations

from tests.differential import (
    assert_divergent,
    assert_equivalent,
    diff_fields,
    metric_fingerprint,
)
from repro.engine import SimulationConfig, run_replications
from repro.net.overload import OverloadPlan

SMOKE = dict(
    num_nodes=64,
    duration=3600.0 * 2,
    warmup=1800.0,
    query_rate=3.0,
    ttl=600.0,
    push_lead=60.0,
)


def smoke_config(scheme: str, seed: int = 3, **overrides) -> SimulationConfig:
    return SimulationConfig(scheme=scheme, seed=seed, **SMOKE, **overrides)


class TestAdaptiveReduction:
    """dup-adaptive with a frozen rate collapses to dup at static c."""

    def test_frozen_rate_matches_static_threshold(self):
        for c in (4, 6):
            assert_equivalent(
                smoke_config(
                    "dup-adaptive",
                    threshold_floor=c,
                    threshold_ceiling=c,
                ),
                smoke_config("dup", threshold_c=c),
                context=f"frozen adaptive vs static c={c}",
            )

    def test_frozen_rate_matches_under_faults_and_churn(self):
        from repro.net.faults import FaultPlan
        from repro.workload.churn import ChurnConfig

        overrides = dict(
            faults=FaultPlan(loss_rate=0.05),
            retry_budget=3,
            lease_ttl=300.0,
            churn=ChurnConfig(join_rate=0.002, leave_rate=0.002),
        )
        assert_equivalent(
            smoke_config(
                "dup-adaptive",
                threshold_floor=6,
                threshold_ceiling=6,
                **overrides,
            ),
            smoke_config("dup", threshold_c=6, **overrides),
            context="frozen adaptive under loss + churn",
        )

    def test_moving_threshold_diverges(self):
        left, right = assert_divergent(
            smoke_config(
                "dup-adaptive", threshold_floor=2, threshold_ceiling=10
            ),
            smoke_config("dup", threshold_c=6),
            context="adaptive with open bounds",
        )
        # The divergence is the threshold actually moving.
        assert left.extras["threshold_min"] < left.extras["threshold_max"]
        assert right.extras["threshold_min"] == right.extras["threshold_max"]


class TestBalancedReduction:
    """dup-balanced below its cap is bit-identical to dup."""

    def test_no_cap_matches_dup(self):
        assert_equivalent(
            smoke_config("dup-balanced"),
            smoke_config("dup"),
            context="balanced with the overload layer off",
        )

    def test_non_binding_cap_matches_dup(self):
        # Cap far above any fanout this workload produces: the balancer
        # code path exists but never engages on either side.
        plan = OverloadPlan(max_subscribers=32)
        left, right = assert_equivalent(
            smoke_config("dup-balanced", overload=plan),
            smoke_config("dup", overload=plan),
            context="balanced under a non-binding cap",
        )
        assert left.extras["split_subscribers"] == 0
        assert left.extras["rejected_subscribers"] == 0
        assert left.extras["dup_max_fanout"] <= 32

    def test_binding_cap_diverges_and_splits(self):
        plan = OverloadPlan(max_subscribers=3)
        left, right = assert_divergent(
            smoke_config("dup-balanced", overload=plan),
            smoke_config("dup", overload=plan),
            context="balanced under a binding cap",
        )
        assert left.extras["split_subscribers"] > 0
        # Splitting spreads load down; redirecting concentrates it up.
        assert left.extras["dup_max_fanout"] <= right.extras["dup_max_fanout"]
        assert right.extras["rejected_subscribers"] > 0

    def test_diff_fields_names_the_divergence(self):
        plan = OverloadPlan(max_subscribers=3)
        from repro.engine.simulation import Simulation

        left = Simulation(smoke_config("dup-balanced", overload=plan)).run()
        right = Simulation(smoke_config("dup", overload=plan)).run()
        assert metric_fingerprint(left) != metric_fingerprint(right)
        diffs = diff_fields(left, right)
        assert "extras" in diffs


class TestNewSchemesParallelEquivalence:
    """Satellite: serial == parallel (workers 1 vs 4) for both variants."""

    def fingerprints(self, config, workers):
        summary = run_replications(config, replications=2, workers=workers)
        return [metric_fingerprint(r) for r in summary.runs]

    def test_dup_adaptive_workers_1_vs_4(self):
        config = smoke_config(
            "dup-adaptive", threshold_floor=2, threshold_ceiling=10
        )
        assert self.fingerprints(config, 1) == self.fingerprints(config, 4)

    def test_dup_balanced_workers_1_vs_4(self):
        config = smoke_config(
            "dup-balanced", overload=OverloadPlan(max_subscribers=3)
        )
        assert self.fingerprints(config, 1) == self.fingerprints(config, 4)
