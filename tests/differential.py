"""Differential-equivalence harness for cross-scheme testing.

Runs two configurations on identical (seed, workload, fault-plan) inputs
and compares *metric fingerprints*: the full
:class:`~repro.engine.results.SimulationResult` minus the fields that
legitimately differ between schemes (the scheme name, the config that
selected it) or between runs (wall-clock time).  Everything else —
query counts, latencies, per-category hop costs, drop counters, extras —
must match bit-for-bit for the runs to be declared equivalent.

Used by ``tests/test_differential.py`` to prove the PR-8 reductions:

- ``dup-adaptive`` with a frozen rate (``threshold_floor ==
  threshold_ceiling == c``) collapses to plain ``dup`` at the matching
  static ``c``;
- ``dup-balanced`` whose fanout cap never binds is bit-identical to
  plain ``dup`` under the same overload plan;

and, as a sanity check, that the schemes *do* diverge once the adaptive
threshold moves or the cap binds (an equivalence proof over a harness
that can never fail proves nothing).
"""

from __future__ import annotations

import dataclasses
import json

from repro.engine.config import SimulationConfig
from repro.engine.results import SimulationResult
from repro.engine.simulation import Simulation

#: Fields excluded from the fingerprint: ``wall_seconds`` varies run to
#: run, and ``config``/``scheme`` necessarily differ between the two
#: sides of a differential pair (they are what selects the scheme).
EXCLUDED_FIELDS = ("wall_seconds", "config", "scheme")


def metric_fingerprint(result: SimulationResult) -> str:
    """Canonical JSON of every metric field of ``result``.

    ``default=repr`` canonicalizes non-JSON values (dataclasses inside
    extras, tuples) the same way on both sides.
    """
    record = dataclasses.asdict(result)
    for field in EXCLUDED_FIELDS:
        record.pop(field, None)
    return json.dumps(record, sort_keys=True, default=repr)


def run_fingerprint(config: SimulationConfig) -> tuple[SimulationResult, str]:
    """Run one simulation and fingerprint it."""
    result = Simulation(config).run()
    return result, metric_fingerprint(result)


def differential_pair(
    left: SimulationConfig, right: SimulationConfig
) -> tuple[SimulationResult, SimulationResult, bool]:
    """Run both configs; the bool is whether the fingerprints match."""
    left_result, left_print = run_fingerprint(left)
    right_result, right_print = run_fingerprint(right)
    return left_result, right_result, left_print == right_print


def assert_equivalent(
    left: SimulationConfig, right: SimulationConfig, context: str = ""
) -> tuple[SimulationResult, SimulationResult]:
    """Assert bit-identical metrics; on mismatch, name the fields."""
    left_result, left_print = run_fingerprint(left)
    right_result, right_print = run_fingerprint(right)
    if left_print != right_print:
        diffs = diff_fields(left_result, right_result)
        raise AssertionError(
            f"differential mismatch ({context or 'unnamed pair'}): "
            f"{left.scheme} vs {right.scheme} differ in {diffs}"
        )
    return left_result, right_result


def assert_divergent(
    left: SimulationConfig, right: SimulationConfig, context: str = ""
) -> tuple[SimulationResult, SimulationResult]:
    """Assert the runs differ somewhere (the harness can detect change)."""
    left_result, right_result, same = differential_pair(left, right)
    if same:
        raise AssertionError(
            f"expected divergence ({context or 'unnamed pair'}): "
            f"{left.scheme} and {right.scheme} produced identical metrics"
        )
    return left_result, right_result


def diff_fields(
    left: SimulationResult, right: SimulationResult
) -> list[str]:
    """Names of the metric fields whose canonical values differ."""
    left_record = dataclasses.asdict(left)
    right_record = dataclasses.asdict(right)
    diffs = []
    for field in sorted(set(left_record) | set(right_record)):
        if field in EXCLUDED_FIELDS:
            continue
        left_value = json.dumps(
            left_record.get(field), sort_keys=True, default=repr
        )
        right_value = json.dumps(
            right_record.get(field), sort_keys=True, default=repr
        )
        if left_value != right_value:
            diffs.append(field)
    return diffs
