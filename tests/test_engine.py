"""Tests of the configuration, simulation engine, and runners."""

import math

import pytest

from repro.engine import (
    Simulation,
    SimulationConfig,
    compare_schemes,
    run_replications,
    run_simulation,
)
from repro.engine.runner import sweep
from repro.errors import ConfigError, ExperimentError
from repro.workload import ChurnConfig


def small(**overrides):
    defaults = dict(
        num_nodes=64,
        duration=7500.0,
        warmup=3600.0,
        query_rate=0.5,
        seed=11,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestConfig:
    def test_paper_defaults_match_table1(self):
        config = SimulationConfig.paper_defaults()
        assert config.num_nodes == 4096
        assert config.max_degree == 4
        assert config.threshold_c == 6
        assert config.ttl == 3600.0
        assert config.push_lead == 60.0
        assert config.hop_latency_mean == 0.1
        assert config.duration >= 180_000.0

    def test_replace_keeps_validation(self):
        config = small()
        with pytest.raises(ConfigError):
            config.replace(query_rate=-1.0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_nodes", 1),
            ("max_degree", 0),
            ("query_rate", 0.0),
            ("arrival", "weibull"),
            ("zipf_theta", -0.5),
            ("threshold_c", -1),
            ("ttl", 0.0),
            ("push_lead", 3600.0),
            ("hop_latency_mean", 0.0),
            ("topology", "mesh"),
            ("interest_policy", "magic"),
            ("warmup", -1.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            small(**{field: value})

    def test_duration_must_exceed_warmup(self):
        with pytest.raises(ConfigError):
            small(duration=100.0, warmup=200.0)

    def test_pareto_needs_alpha_above_one(self):
        with pytest.raises(ConfigError):
            small(arrival="pareto", pareto_alpha=1.0)

    def test_describe_mentions_scheme(self):
        assert "dup" in small(scheme="dup").describe()

    def test_benchmark_scale_overridable(self):
        config = SimulationConfig.benchmark_scale(num_nodes=128)
        assert config.num_nodes == 128


class TestSimulation:
    def test_result_fields_populated(self):
        result = run_simulation(small(scheme="pcx"))
        assert result.scheme == "pcx"
        assert result.queries > 0
        assert result.mean_latency >= 0
        assert result.cost_per_query >= 0
        assert 0 <= result.hit_rate <= 1
        assert result.latency_ci is not None
        assert result.final_population == 64
        assert result.wall_seconds > 0

    def test_same_seed_is_deterministic(self):
        first = run_simulation(small(scheme="dup"))
        second = run_simulation(small(scheme="dup"))
        assert first.mean_latency == second.mean_latency
        assert first.cost_per_query == second.cost_per_query
        assert first.hop_breakdown == second.hop_breakdown

    def test_different_seeds_differ(self):
        first = run_simulation(small(scheme="pcx", seed=1))
        second = run_simulation(small(scheme="pcx", seed=2))
        assert first.mean_latency != second.mean_latency

    def test_simulation_runs_once(self):
        sim = Simulation(small())
        sim.run()
        with pytest.raises(RuntimeError):
            sim.run()

    def test_chord_topology_runs(self):
        result = run_simulation(small(scheme="dup", topology="chord"))
        assert result.queries > 0

    def test_root_never_queries_by_default(self):
        sim = Simulation(small(scheme="pcx"))
        root = sim.tree.root
        assert root not in sim.selector.hottest(len(sim.selector))

    def test_warmup_gates_metrics(self):
        # With warmup == duration - epsilon, almost nothing is recorded.
        gated = run_simulation(
            small(scheme="pcx", duration=7500.0, warmup=7400.0)
        )
        ungated = run_simulation(
            small(scheme="pcx", duration=7500.0, warmup=0.0)
        )
        assert gated.queries < ungated.queries

    def test_dup_extras_reported(self):
        result = run_simulation(small(scheme="dup", query_rate=2.0))
        assert "subscribed" in result.extras
        assert "dup_tree_size" in result.extras

    def test_ewma_policy_runs(self):
        result = run_simulation(
            small(scheme="dup", interest_policy="ewma", query_rate=2.0)
        )
        assert result.queries > 0

    def test_churn_simulation_survives(self):
        churn = ChurnConfig(join_rate=0.01, leave_rate=0.005, fail_rate=0.005)
        result = run_simulation(small(scheme="dup", churn=churn))
        assert result.queries > 0
        assert result.final_population > 8

    def test_churn_changes_population(self):
        churn = ChurnConfig(join_rate=0.02)
        result = run_simulation(small(scheme="pcx", churn=churn))
        assert result.final_population > 64

    def test_all_schemes_run_under_churn(self):
        churn = ChurnConfig(join_rate=0.01, leave_rate=0.008, fail_rate=0.008)
        for scheme in ("pcx", "cup", "cup-ideal", "dup", "push-all"):
            result = run_simulation(small(scheme=scheme, churn=churn))
            assert result.queries > 0, scheme


class TestRunners:
    def test_replications_aggregate(self):
        aggregated = run_replications(small(scheme="pcx"), replications=3)
        assert len(aggregated.runs) == 3
        assert aggregated.latency.count == 3
        assert not math.isnan(aggregated.latency.half_width)

    def test_replications_require_positive_count(self):
        with pytest.raises(ExperimentError):
            run_replications(small(), replications=0)

    def test_compare_schemes_pairs_seeds(self):
        comparison = compare_schemes(
            small(), schemes=("pcx", "dup"), replications=2
        )
        assert set(comparison.schemes) == {"pcx", "dup"}
        # PCX relative to itself is exactly 1 on every seed.
        assert comparison.relative_cost["pcx"].mean == pytest.approx(1.0)
        assert comparison.relative_cost["pcx"].half_width == pytest.approx(
            0.0, abs=1e-12
        )

    def test_compare_runs_baseline_even_if_not_listed(self):
        comparison = compare_schemes(
            small(), schemes=("dup",), replications=1
        )
        assert "dup" in comparison.relative_cost
        assert "pcx" not in comparison.by_scheme

    def test_sweep_returns_per_value_results(self):
        results = sweep(
            small(),
            "query_rate",
            [0.5, 1.0],
            schemes=("pcx", "dup"),
            replications=1,
        )
        assert set(results) == {0.5, 1.0}
        for comparison in results.values():
            assert "dup" in comparison.relative_cost
