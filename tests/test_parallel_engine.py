"""Tests for the multiprocess experiment engine (the tentpole).

The load-bearing guarantee: a sweep run with N workers is bit-identical
to the same sweep run serially, because every trial's randomness is a
pure function of its derived seed and workers return only picklable
payloads that are merged back in submission order.  ``wall_seconds`` is
host wall-clock and therefore excluded from every fingerprint.
"""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro.engine import (
    ParallelRunner,
    SimulationConfig,
    TrialSpec,
    compare_schemes,
    resolve_workers,
    run_replications,
    set_default_progress,
)
from repro.engine.parallel import WORKERS_ENV, run_trials
from repro.engine.tracing import merge_summaries
from repro.errors import ExperimentError
from repro.experiments import get_experiment
from repro.metrics.registry import FrozenMetrics, Histogram, MetricsRegistry
from repro.sim.rng import RandomStreams, derive_trial_seed

SMOKE = dict(
    num_nodes=64,
    duration=3600.0 * 2,
    warmup=1800.0,
    query_rate=3.0,
)


def fingerprint(result) -> str:
    """Canonical JSON of a SimulationResult, minus host wall-clock."""
    record = dataclasses.asdict(result)
    record.pop("wall_seconds")
    return json.dumps(record, sort_keys=True, default=repr)


# -- seed derivation ----------------------------------------------------------


class TestSeedDerivation:
    def test_default_matches_historical_rule(self):
        # The engine has always used seed + replication; the derivation
        # must preserve it bit-for-bit so published numbers never move.
        for seed in (1, 7, 12345):
            for rep in range(5):
                assert derive_trial_seed(seed, rep) == seed + rep

    def test_keyed_derivation_is_stable_and_distinct(self):
        a = derive_trial_seed(1, 0, experiment="figure4", point=1.0)
        b = derive_trial_seed(1, 0, experiment="figure4", point=1.0)
        c = derive_trial_seed(1, 0, experiment="figure4", point=3.0)
        d = derive_trial_seed(1, 0, experiment="figure8", point=1.0)
        assert a == b
        assert len({a, c, d}) == 3

    def test_for_trial_streams_reproduce(self):
        one = RandomStreams.for_trial(1, 2, experiment="x", point=0.5)
        two = RandomStreams.for_trial(1, 2, experiment="x", point=0.5)
        assert one.get("arrivals").random() == two.get("arrivals").random()


# -- worker resolution --------------------------------------------------------


class TestResolveWorkers:
    def test_explicit_integer(self):
        assert resolve_workers(3) == 3

    def test_auto_uses_cores(self):
        import os

        assert resolve_workers("auto") == max(1, os.cpu_count() or 1)

    def test_none_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_none_consults_environment(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        assert resolve_workers(None) == 2

    def test_string_integer(self):
        assert resolve_workers("4") == 4

    def test_rejects_garbage(self):
        with pytest.raises(ExperimentError):
            resolve_workers("many")
        with pytest.raises(ExperimentError):
            resolve_workers(0)


# -- serial == parallel -------------------------------------------------------


class TestSerialParallelEquivalence:
    def test_run_replications_bit_identical(self):
        config = SimulationConfig(scheme="dup", seed=3, **SMOKE)
        serial = run_replications(config, replications=3, workers=1)
        pooled = run_replications(config, replications=3, workers=3)
        assert [fingerprint(r) for r in serial.runs] == [
            fingerprint(r) for r in pooled.runs
        ]
        assert serial.latency.mean == pooled.latency.mean
        assert serial.cost.mean == pooled.cost.mean

    def test_compare_schemes_bit_identical(self):
        config = SimulationConfig(seed=5, **SMOKE)
        serial = compare_schemes(config, replications=2, workers=1)
        pooled = compare_schemes(config, replications=2, workers=4)
        for scheme in serial.schemes:
            assert [
                fingerprint(r) for r in serial.by_scheme[scheme].runs
            ] == [fingerprint(r) for r in pooled.by_scheme[scheme].runs]
            if scheme in serial.relative_cost:
                assert (
                    serial.relative_cost[scheme].mean
                    == pooled.relative_cost[scheme].mean
                )

    def test_worker_count_does_not_reorder_results(self):
        specs = [
            TrialSpec(
                config=SimulationConfig(scheme="dup", seed=seed, **SMOKE),
                experiment="order",
                replication=index,
            )
            for index, seed in enumerate((11, 7, 29, 2))
        ]
        serial = run_trials(specs, workers=1)
        pooled = run_trials(specs, workers=4)
        assert [r.config.seed for r in serial] == [11, 7, 29, 2]
        assert [fingerprint(r) for r in serial] == [
            fingerprint(r) for r in pooled
        ]


class TestChaosEquivalence:
    """Chaos runs must parallelize like calm ones: a scenario's faults,
    failover, and audit sweeps are all driven by the trial's derived
    seed, so workers=N stays bit-identical to serial."""

    def run_chaos(self, workers):
        from repro.engine.chaos import get_scenario

        config = get_scenario("blackout").apply(
            SimulationConfig(scheme="dup", seed=3, **SMOKE)
        )
        return run_replications(config, replications=2, workers=workers)

    def test_blackout_bit_identical_across_workers(self):
        serial = self.run_chaos(1)
        pooled = self.run_chaos(2)
        assert [fingerprint(r) for r in serial.runs] == [
            fingerprint(r) for r in pooled.runs
        ]
        # The scenario actually fired in both lanes.
        for result in serial.runs:
            assert result.extras["partitions_started"] >= 1
            assert result.extras["failover_promoted"] >= 0
            assert result.extras["audit_sweeps"] > 0


class TestFigure4Equivalence:
    """The ISSUE's regression gate: figure4 smoke, workers 1 vs 4."""

    RATES = (1.0, 10.0)

    def run_figure4(self, workers):
        return get_experiment("figure4")(
            scale="smoke",
            replications=1,
            seed=1,
            rates=self.RATES,
            workers=workers,
        )

    def test_smoke_rows_and_checks_identical(self):
        serial = self.run_figure4(1)
        pooled = self.run_figure4(4)
        encode = lambda rows: json.dumps(rows, sort_keys=True, default=repr)
        assert encode(serial.rows) == encode(pooled.rows)
        assert serial.render() == pooled.render()
        assert [c.passed for c in serial.shape_checks] == [
            c.passed for c in pooled.shape_checks
        ]


# -- progress and failure propagation -----------------------------------------


class TestProgressAndFailures:
    def test_progress_lines_name_every_trial(self):
        lines = []
        config = SimulationConfig(scheme="dup", seed=1, **SMOKE)
        runner = ParallelRunner(
            workers=2, progress=lines.append, experiment="probe"
        )
        runner.run_trials(
            [
                TrialSpec(config=config, experiment="probe", point=1.0),
                TrialSpec(
                    config=config.replace(seed=2),
                    experiment="probe",
                    point=2.0,
                    replication=1,
                ),
            ]
        )
        assert len(lines) == 2
        assert any("point=1.0" in line and "seed=1" in line for line in lines)
        assert all(line.startswith("[") for line in lines)

    def test_default_progress_sink_is_used_and_restored(self):
        lines = []

        def sink(line):
            lines.append(line)

        previous = set_default_progress(sink)
        try:
            config = SimulationConfig(scheme="dup", seed=1, **SMOKE)
            ParallelRunner(workers=1).run_trials([config])
        finally:
            assert set_default_progress(previous) is sink
        assert len(lines) == 1

    def test_worker_failure_names_the_trial(self):
        good = SimulationConfig(scheme="dup", seed=1, **SMOKE)
        bad = good.replace(seed=9)
        # Corrupt a validated field after construction so the failure
        # fires inside the worker process, not at spec-build time.
        object.__setattr__(bad, "scheme", "no-such-scheme")
        specs = [
            TrialSpec(config=good, experiment="boom", point=0.5),
            TrialSpec(config=bad, experiment="boom", point=1.5),
        ]
        for workers in (1, 2):
            with pytest.raises(ExperimentError) as excinfo:
                run_trials(specs, workers=workers)
            message = str(excinfo.value)
            assert "boom" in message
            assert "point=1.5" in message
            assert "seed=9" in message

    def test_rejects_non_spec_input(self):
        with pytest.raises(ExperimentError):
            ParallelRunner(workers=1).run_trials(["not a spec"])


# -- mergeable payloads -------------------------------------------------------


class TestFrozenMetrics:
    def test_freeze_round_trips_through_export(self):
        from repro.metrics.export import registry_records

        registry = MetricsRegistry()
        registry.counter("queries").inc(3)
        registry.histogram("latency").observe(1.0)
        registry.histogram("latency").observe(3.0)
        frozen = registry.freeze()
        records = list(registry_records(frozen))
        assert records, "frozen registries must stay exportable"

    def test_merge_concatenates_in_order(self):
        parts = []
        for value in (1.0, 2.0, 3.0):
            registry = MetricsRegistry()
            registry.histogram("latency").observe(value)
            parts.append(registry.freeze())
        merged = FrozenMetrics.merge(parts)
        assert merged.trials == 3
        assert merged.histograms["latency"] == (1.0, 2.0, 3.0)

    def test_merged_percentiles_match_serial(self):
        serial = Histogram("latency")
        left, right = Histogram("latency"), Histogram("latency")
        for i, value in enumerate(float(v) for v in range(1, 21)):
            serial.observe(value)
            (left if i % 2 == 0 else right).observe(value)
        merged = left.merge(right)
        assert merged.percentile(50) == serial.percentile(50)
        assert merged.percentile(95) == serial.percentile(95)
        assert merged.minimum == serial.minimum
        assert merged.maximum == serial.maximum
        assert merged.count == serial.count
        assert merged.mean == pytest.approx(serial.mean)

    def test_merge_summaries_sums_counts(self):
        a = {
            "completed": 2,
            "incomplete": 1,
            "open": 0,
            "hops_by_level": {1: 4},
        }
        b = {
            "completed": 3,
            "incomplete": 0,
            "open": 2,
            "hops_by_level": {1: 1, 2: 5},
        }
        merged = merge_summaries([a, b])
        assert merged["completed"] == 5
        assert merged["incomplete"] == 1
        assert merged["open"] == 2
        assert merged["hops_by_level"] == {1: 5, 2: 5}

    def test_pool_run_collects_merged_metrics(self):
        config = SimulationConfig(scheme="dup", seed=1, **SMOKE)
        runner = ParallelRunner(workers=2)
        runner.run_trials([config, config.replace(seed=2)])
        assert runner.metrics is not None
        assert runner.metrics.trials == 2
        summary = runner.metrics.summary()
        assert summary, "merged metrics must summarize"
        for stats in summary.values():
            assert stats["count"] >= 1
            assert not math.isnan(stats["mean"])
