"""Unit tests for the workload package: arrivals, placement, churn."""

import numpy as np
import pytest

from repro.errors import ConfigError, WorkloadError
from repro.workload import (
    ArrivalProcess,
    ChurnConfig,
    ChurnEvent,
    ChurnProcess,
    ZipfNodeSelector,
    make_arrival_process,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestArrivalProcess:
    def test_exponential_rate(self):
        process = make_arrival_process("exponential", rate=2.0, rng=rng(1))
        gaps = [process.next_gap() for _ in range(20000)]
        assert np.mean(gaps) == pytest.approx(0.5, rel=0.05)
        assert process.mean_rate == pytest.approx(2.0)

    def test_pareto_rate_matches_lambda(self):
        # The paper: "The scale parameter k is set so that (alpha-1)/k
        # equals the query arrival rate lambda."
        process = make_arrival_process(
            "pareto", rate=5.0, rng=rng(2), pareto_alpha=1.2
        )
        assert process.mean_rate == pytest.approx(5.0)
        # alpha=1.2 has infinite variance, so the sample mean converges
        # hopelessly slowly; check the analytic median instead:
        # F(x)=1-(k/(x+k))^a  =>  median = k * (2^(1/a) - 1), k=0.04.
        gaps = [process.next_gap() for _ in range(100000)]
        expected_median = 0.04 * (2 ** (1 / 1.2) - 1)
        assert np.median(gaps) == pytest.approx(expected_median, rel=0.05)

    def test_pareto_burstier_with_smaller_alpha(self):
        bursty = make_arrival_process("pareto", 1.0, rng(3), pareto_alpha=1.05)
        smooth = make_arrival_process("pareto", 1.0, rng(3), pareto_alpha=1.9)
        bursty_gaps = np.array([bursty.next_gap() for _ in range(50000)])
        smooth_gaps = np.array([smooth.next_gap() for _ in range(50000)])
        # Burstier = more mass near zero.
        assert np.median(bursty_gaps) < np.median(smooth_gaps)

    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError):
            make_arrival_process("uniform", 1.0, rng())

    def test_non_positive_rate_rejected(self):
        with pytest.raises(WorkloadError):
            make_arrival_process("exponential", 0.0, rng())


class TestZipfNodeSelector:
    def test_assignment_is_a_permutation(self):
        nodes = list(range(10, 60))
        selector = ZipfNodeSelector(nodes, theta=1.0, rng=rng(4))
        drawn = {selector.sample(rng(5)) for _ in range(1)}
        assert drawn <= set(nodes)
        assert sorted(selector.hottest(50)) == sorted(nodes)

    def test_hot_node_dominates(self):
        selector = ZipfNodeSelector(list(range(100)), theta=2.0, rng=rng(6))
        generator = rng(7)
        draws = [selector.sample(generator) for _ in range(5000)]
        hottest = selector.hottest(1)[0]
        share = draws.count(hottest) / len(draws)
        assert share > 0.5  # theta=2 concentrates heavily

    def test_rank_of(self):
        selector = ZipfNodeSelector([1, 2, 3], theta=1.0, rng=rng(8))
        hottest = selector.hottest(1)[0]
        assert selector.rank_of(hottest) == 0

    def test_permutation_depends_on_seed(self):
        nodes = list(range(200))
        first = ZipfNodeSelector(nodes, 1.0, rng(9)).hottest(5)
        second = ZipfNodeSelector(nodes, 1.0, rng(10)).hottest(5)
        assert first != second  # overwhelmingly likely

    def test_sample_alive_skips_dead(self):
        selector = ZipfNodeSelector(list(range(10)), theta=0.0, rng=rng(11))
        alive = {3, 7}
        node = selector.sample_alive(rng(12), alive.__contains__)
        assert node in alive

    def test_sample_alive_none_when_everyone_dead(self):
        selector = ZipfNodeSelector(list(range(5)), theta=0.0, rng=rng(13))
        assert selector.sample_alive(rng(14), lambda n: False) is None

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfNodeSelector([], theta=1.0, rng=rng())


class TestSampleTail:
    """Boundary behaviour of the cold-tail draw (ISSUE: satellite)."""

    def test_draws_come_from_the_cold_tail(self):
        selector = ZipfNodeSelector(list(range(20)), theta=1.0, rng=rng(20))
        cold_half = set(selector.hottest(20)[10:])
        generator = rng(21)
        for _ in range(200):
            node = selector.sample_tail(generator, lambda n: True, 0.5)
            assert node in cold_half

    def test_non_positive_fraction_rejected(self):
        selector = ZipfNodeSelector(list(range(5)), theta=1.0, rng=rng(22))
        for fraction in (0.0, -0.5):
            with pytest.raises(WorkloadError):
                selector.sample_tail(rng(23), lambda n: True, fraction)

    def test_fraction_above_one_clamps_to_whole_population(self):
        nodes = list(range(8))
        selector = ZipfNodeSelector(nodes, theta=0.0, rng=rng(24))
        generator = rng(25)
        drawn = {
            selector.sample_tail(generator, lambda n: True, 5.0)
            for _ in range(400)
        }
        # Pre-fix, 1 - fraction went negative and the slice start
        # underflowed; clamped, the tail is exactly the whole ranking.
        assert drawn == set(nodes)

    def test_tiny_fraction_still_yields_the_coldest_node(self):
        # total * fraction rounds to zero: the tail must keep at least
        # the coldest node instead of producing an empty slice.
        selector = ZipfNodeSelector(list(range(10)), theta=1.0, rng=rng(26))
        coldest = selector.hottest(10)[-1]
        node = selector.sample_tail(rng(27), lambda n: True, 1e-9)
        assert node == coldest

    def test_single_node_population(self):
        selector = ZipfNodeSelector([42], theta=1.0, rng=rng(28))
        assert selector.sample_tail(rng(29), lambda n: True, 0.3) == 42

    def test_falls_back_coldest_first_then_none(self):
        selector = ZipfNodeSelector(list(range(10)), theta=1.0, rng=rng(30))
        ranking = selector.hottest(10)
        hottest = ranking[0]
        # Only the hottest node is alive: it is outside the cold tail,
        # so the draw must fall back to the coldest-first scan.
        node = selector.sample_tail(
            rng(31), lambda n: n == hottest, 0.2
        )
        assert node == hottest
        assert selector.sample_tail(rng(32), lambda n: False, 0.2) is None


class TestChurnConfig:
    def test_defaults_disabled(self):
        assert not ChurnConfig().enabled

    def test_total_rate(self):
        config = ChurnConfig(join_rate=1.0, leave_rate=2.0, fail_rate=3.0)
        assert config.total_rate == pytest.approx(6.0)
        assert config.enabled

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigError):
            ChurnConfig(join_rate=-1.0)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigError):
            ChurnConfig(join_rate=1.0, edge_join_fraction=1.5)

    def test_min_population_validated(self):
        with pytest.raises(ConfigError):
            ChurnConfig(join_rate=1.0, min_population=1)


class TestChurnProcess:
    def test_zero_rates_rejected(self):
        with pytest.raises(ConfigError):
            ChurnProcess(ChurnConfig(), rng())

    def test_gap_matches_total_rate(self):
        config = ChurnConfig(join_rate=5.0, leave_rate=5.0)
        process = ChurnProcess(config, rng(15))
        gaps = [process.next_gap() for _ in range(20000)]
        assert np.mean(gaps) == pytest.approx(0.1, rel=0.05)

    def test_kind_distribution(self):
        config = ChurnConfig(join_rate=1.0, leave_rate=1.0, fail_rate=2.0)
        process = ChurnProcess(config, rng(16))
        kinds = [process.next_kind() for _ in range(8000)]
        fails = sum(1 for k in kinds if k is ChurnEvent.FAIL)
        assert fails / len(kinds) == pytest.approx(0.5, abs=0.03)

    def test_join_split_between_edge_and_leaf(self):
        config = ChurnConfig(join_rate=1.0, edge_join_fraction=1.0)
        process = ChurnProcess(config, rng(17))
        kinds = {process.next_kind() for _ in range(50)}
        assert kinds == {ChurnEvent.JOIN_EDGE}

    def test_pick_victim_uniform(self):
        config = ChurnConfig(fail_rate=1.0)
        process = ChurnProcess(config, rng(18))
        victims = [process.pick_victim([1, 2, 3, 4]) for _ in range(4000)]
        for node in (1, 2, 3, 4):
            assert victims.count(node) / len(victims) == pytest.approx(
                0.25, abs=0.04
            )
