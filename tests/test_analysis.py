"""Tests of the analytical cost and interest models.

The headline test class cross-validates the closed forms against the
actual protocol implementation: for random trees and random subscriber
sets, the Figure-3 state machine must build exactly the contracted
Steiner tree the analysis predicts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    cup_push_cost,
    dup_push_cost,
    dup_tree_nodes,
    expected_interested,
    pcx_refetch_cost,
    push_savings,
)
from repro.analysis.interest_model import (
    interested_rank_cutoff,
    zipf_probabilities,
)
from repro.errors import ConfigError, TopologyError
from repro.topology import SearchTree, random_search_tree

from tests.conftest import SyncDupDriver


def figure2_tree():
    tree = SearchTree(root=1)
    for parent, child in [(1, 2), (2, 3), (3, 4), (3, 5), (5, 6), (6, 7), (6, 8)]:
        tree.add_leaf(parent, child)
    return tree


class TestPaperExamples:
    """The exact numbers from the paper's Figures 1 and 2."""

    def test_figure2a_single_subscriber(self):
        tree = figure2_tree()
        savings = push_savings(tree, [6])
        # N6 at depth 4: PCX pays 8 ("it costs eight hops for N6 to send
        # the request and get the index from N1"); DUP pushes once.
        assert savings.pcx_hops == 8
        assert savings.dup_hops == 1
        assert savings.dup_saving == pytest.approx(0.875)  # "87.5%"
        assert savings.cup_hops == 4  # the path N1..N6

    def test_figure2b_two_subscribers(self):
        tree = figure2_tree()
        # "this scheme only costs three hops while PCX costs ten hops and
        # CUP costs five hops to serve N4's and N6's queries."
        assert dup_push_cost(tree, [4, 6]) == 3
        assert pcx_refetch_cost(tree, [4, 6]) == 14  # 2*(3+4) round trips
        assert cup_push_cost(tree, [4, 6]) == 5

    def test_figure2c_after_unsubscribe(self):
        tree = figure2_tree()
        assert dup_push_cost(tree, [4]) == 1
        assert dup_tree_nodes(tree, [4]) == {4}

    def test_junctions_included(self):
        tree = figure2_tree()
        # N4 and N6 meet at N3 (a non-subscriber junction).
        assert dup_tree_nodes(tree, [4, 6]) == {3, 4, 6}

    def test_root_subscription_is_free(self):
        tree = figure2_tree()
        assert dup_push_cost(tree, [1]) == 0
        assert pcx_refetch_cost(tree, [1]) == 0

    def test_unknown_subscriber_rejected(self):
        with pytest.raises(TopologyError):
            dup_push_cost(figure2_tree(), [99])


class TestAgainstProtocol:
    """The closed form equals the Figure-3 implementation's push cost."""

    @given(
        st.integers(3, 40),
        st.integers(0, 2**31),
        st.sets(st.integers(1, 39), min_size=1, max_size=12),
    )
    @settings(max_examples=100, deadline=None)
    def test_dup_tree_matches_protocol(self, n, seed, raw_subscribers):
        tree = random_search_tree(n, 4, np.random.default_rng(seed))
        subscribers = {node for node in raw_subscribers if 0 < node < n}
        if not subscribers:
            return
        driver = SyncDupDriver(tree)
        for node in subscribers:
            driver.subscribe(node)
        assert driver.push_hops() == dup_push_cost(tree, subscribers)
        recipients = driver.push_recipients()
        assert recipients == dup_tree_nodes(tree, subscribers)

    @given(
        st.integers(3, 40),
        st.integers(0, 2**31),
        st.sets(st.integers(1, 39), min_size=1, max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_dup_never_costs_more_than_cup(self, n, seed, raw_subscribers):
        tree = random_search_tree(n, 4, np.random.default_rng(seed))
        subscribers = {node for node in raw_subscribers if 0 < node < n}
        if not subscribers:
            return
        assert dup_push_cost(tree, subscribers) <= cup_push_cost(
            tree, subscribers
        )
        assert cup_push_cost(tree, subscribers) <= pcx_refetch_cost(
            tree, subscribers
        )


class TestInterestModel:
    def test_zipf_probabilities_normalized(self):
        probabilities = zipf_probabilities(100, 0.95)
        assert sum(probabilities) == pytest.approx(1.0)
        assert probabilities == sorted(probabilities, reverse=True)

    def test_expected_interested_monotone_in_rate(self):
        low = expected_interested(512, 0.95, rate=1.0, ttl=3600, threshold_c=6)
        high = expected_interested(512, 0.95, rate=10.0, ttl=3600, threshold_c=6)
        assert high > low

    def test_expected_interested_monotone_in_threshold(self):
        loose = expected_interested(512, 0.95, 5.0, 3600, threshold_c=2)
        strict = expected_interested(512, 0.95, 5.0, 3600, threshold_c=10)
        assert loose > strict

    def test_saturation_at_high_rate(self):
        almost_all = expected_interested(64, 0.5, 100.0, 3600, 6)
        assert almost_all == pytest.approx(63, abs=1.5)  # root excluded? all ranks

    def test_rank_cutoff_scaling(self):
        few = interested_rank_cutoff(4096, 0.95, 1.0, 3600, 6)
        many = interested_rank_cutoff(4096, 0.95, 10.0, 3600, 6)
        assert 0 < few < many <= 4096

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            expected_interested(0, 1.0, 1.0, 3600, 6)
        with pytest.raises(ConfigError):
            expected_interested(10, -1.0, 1.0, 3600, 6)
        with pytest.raises(ConfigError):
            expected_interested(10, 1.0, 0.0, 3600, 6)

    def test_predicts_simulated_subscriber_count(self):
        # The model should land within a factor ~2 of the simulation
        # (it ignores forwarded queries and threshold flapping).
        from repro.engine import SimulationConfig, run_simulation

        config = SimulationConfig(
            scheme="dup",
            num_nodes=256,
            query_rate=5.0,
            duration=3600.0 * 5,
            warmup=3600.0 * 2,
            seed=4,
        )
        result = run_simulation(config)
        simulated = result.extras["subscribed"]
        predicted = expected_interested(
            n=255,  # the root does not query
            theta=config.zipf_theta,
            rate=config.query_rate,
            ttl=config.ttl,
            threshold_c=config.threshold_c,
        )
        assert predicted / 2 <= simulated <= predicted * 2
