"""Tests for the fixed-memory streaming telemetry (metrics.windows).

Covers the bounded reservoir (exact first-order stats under
deterministic decimation), the mergeable time buckets, the
tree-evolution timeline, and the acceptance criterion: a churny run's
windowed tree-depth timeline is reconstructible from a JSONL export
while memory stays bounded by the window count, not the run length.
"""

from __future__ import annotations

import math

import pytest

from repro.engine import Simulation, SimulationConfig
from repro.errors import ConfigError
from repro.metrics.export import read_jsonl, write_jsonl
from repro.metrics.windows import (
    TimeBuckets,
    TreeTimeline,
    WindowedReservoir,
    reconstruct_series,
)
from repro.workload.churn import ChurnConfig


class TestWindowedReservoir:
    def test_exact_stats_survive_decimation(self):
        reservoir = WindowedReservoir(capacity=64)
        values = [float(i % 37) for i in range(10_000)]
        for value in values:
            reservoir.observe(value)
        assert reservoir.count == 10_000
        assert reservoir.mean == pytest.approx(sum(values) / len(values))
        assert reservoir.minimum == min(values)
        assert reservoir.maximum == max(values)
        assert len(reservoir.samples) <= 64
        # Stride doubles on every halving: always a power of two.
        assert reservoir.stride & (reservoir.stride - 1) == 0
        assert reservoir.stride > 1

    def test_decimation_is_deterministic(self):
        a, b = WindowedReservoir(capacity=16), WindowedReservoir(capacity=16)
        for i in range(1000):
            a.observe(float(i))
            b.observe(float(i))
        assert a.samples == b.samples
        assert a.stride == b.stride

    def test_percentiles_from_reservoir(self):
        reservoir = WindowedReservoir(capacity=512)
        for i in range(101):
            reservoir.observe(float(i))
        assert reservoir.percentile(0) == 0.0
        assert reservoir.percentile(100) == 100.0
        assert reservoir.percentile(50) == pytest.approx(50.0)
        assert reservoir.percentile(95) == pytest.approx(95.0, abs=1.0)

    def test_empty_reservoir_is_nan(self):
        reservoir = WindowedReservoir()
        assert math.isnan(reservoir.mean)
        assert math.isnan(reservoir.percentile(50))

    def test_merge_keeps_exact_stats(self):
        a, b = WindowedReservoir(capacity=32), WindowedReservoir(capacity=32)
        for i in range(200):
            a.observe(float(i))
        for i in range(200, 500):
            b.observe(float(i))
        merged = a.merge(b)
        assert merged.count == 500
        assert merged.mean == pytest.approx(sum(range(500)) / 500)
        assert merged.minimum == 0.0
        assert merged.maximum == 499.0
        assert len(merged.samples) <= 32

    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            WindowedReservoir(capacity=1)


class TestTimeBuckets:
    def test_bucketing_by_floor(self):
        buckets = TimeBuckets(width=10.0)
        buckets.observe(3.0, 1.0)
        buckets.observe(9.9, 3.0)
        buckets.observe(10.0, 5.0)
        starts = [bucket.start for bucket in buckets.buckets]
        assert starts == [0.0, 10.0]
        first = buckets.buckets[0]
        assert first.count == 2
        assert first.mean == 2.0
        assert first.last == 3.0

    def test_retention_is_bounded(self):
        buckets = TimeBuckets(width=1.0, max_buckets=8)
        for t in range(100):
            buckets.observe(float(t), float(t))
        assert len(buckets) == 8
        assert buckets.evicted == 92
        # The survivors are the newest windows.
        assert [b.start for b in buckets.buckets] == [
            float(t) for t in range(92, 100)
        ]

    def test_merge_absorbs_same_start_windows(self):
        a, b = TimeBuckets(width=10.0), TimeBuckets(width=10.0)
        a.observe(5.0, 1.0)
        b.observe(6.0, 3.0)
        b.observe(15.0, 7.0)
        merged = a.merge(b)
        assert len(merged) == 2
        first = merged.buckets[0]
        assert first.count == 2
        assert first.mean == 2.0

    def test_merge_rejects_width_mismatch(self):
        with pytest.raises(ConfigError):
            TimeBuckets(width=10.0).merge(TimeBuckets(width=20.0))

    def test_series_stats(self):
        buckets = TimeBuckets(width=10.0)
        buckets.observe(1.0, 2.0)
        buckets.observe(2.0, 4.0)
        assert buckets.series("mean") == [(0.0, 3.0)]
        assert buckets.series("maximum") == [(0.0, 4.0)]


class TestTreeTimeline:
    def test_observe_and_series(self):
        timeline = TreeTimeline(window=10.0)
        timeline.observe("tree-depth", 5.0, 3.0)
        timeline.observe("tree-depth", 15.0, 4.0)
        assert timeline.series("tree-depth", "last") == [
            (0.0, 3.0),
            (10.0, 4.0),
        ]

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigError):
            TreeTimeline().buckets("no-such-metric")

    def test_merge_requires_same_window(self):
        with pytest.raises(ConfigError):
            TreeTimeline(window=10.0).merge(TreeTimeline(window=20.0))

    def test_records_round_trip(self, tmp_path):
        timeline = TreeTimeline(window=10.0)
        for t in range(5):
            timeline.observe("tree-depth", float(t * 10), float(t))
        path = tmp_path / "timeline.jsonl"
        write_jsonl(str(path), timeline.records())
        restored = reconstruct_series(
            read_jsonl(str(path)), "tree-depth", "last"
        )
        assert restored == timeline.series("tree-depth", "last")


class TestTimelineUnderChurn:
    """Acceptance: a churny run's tree-depth timeline is reconstructible
    from its JSONL export, with memory bounded by the window count even
    when the run spans far more windows than the retention cap."""

    def make_sim(self):
        config = SimulationConfig(
            scheme="dup",
            num_nodes=64,
            duration=7200.0,
            warmup=600.0,
            query_rate=2.0,
            seed=7,
            churn=ChurnConfig(join_rate=0.02, leave_rate=0.02),
        )
        return Simulation(config)

    def test_timeline_bounded_and_reconstructible(self, tmp_path):
        sim = self.make_sim()
        # 7200 s / 60 s window = 120 samples >> 16 retained buckets.
        timeline = sim.enable_timeline(window=60.0, max_buckets=16)
        sim.run()
        assert timeline.samples_taken >= 100
        depth = timeline.buckets("tree-depth")
        assert len(depth) <= 16
        assert depth.evicted > 0
        assert "subscribers" in timeline.metrics
        assert "interior-load" in timeline.metrics

        path = tmp_path / "telemetry.jsonl"
        write_jsonl(str(path), timeline.records())
        restored = reconstruct_series(
            read_jsonl(str(path)), "tree-depth", "last"
        )
        assert restored == timeline.series("tree-depth", "last")
        assert len(restored) == len(depth)

    def test_enable_timeline_is_idempotent(self):
        sim = self.make_sim()
        first = sim.enable_timeline(window=60.0)
        assert sim.enable_timeline(window=600.0) is first
        assert sim.timeline is first

    def test_timeline_is_a_pure_observer(self):
        """Enabling a timeline must not perturb the simulation."""
        import dataclasses
        import json

        def run(enable):
            sim = self.make_sim()
            if enable:
                sim.enable_timeline(window=60.0)
            result = sim.run()
            record = dataclasses.asdict(result)
            record.pop("wall_seconds")
            return json.dumps(record, sort_keys=True, default=repr)

        assert run(False) == run(True)
