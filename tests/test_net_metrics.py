"""Unit tests for messages, transport, and the metric recorders."""

import numpy as np
import pytest

from repro.index.entry import IndexVersion
from repro.metrics import CostLedger, LatencyRecorder
from repro.net import (
    Category,
    ControlMessage,
    PushMessage,
    QueryMessage,
    ReplyMessage,
    Subscribe,
    Transport,
)
from repro.sim import Environment
from repro.stats.distributions import Deterministic, Exponential


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now


class TestMessages:
    def test_query_message_defaults(self):
        message = QueryMessage(key=1, origin=42)
        assert message.category is Category.QUERY
        assert message.path == [42]
        assert message.hops == 0
        assert message.control == []

    def test_query_hops_counts_path_edges(self):
        message = QueryMessage(key=1, origin=1)
        message.path.extend([2, 3])
        assert message.hops == 2

    def test_reply_next_hop(self):
        reply = ReplyMessage(
            key=1, version=None, path=[10, 11, 12], position=2, request_hops=2
        )
        assert reply.category is Category.REPLY
        assert reply.destination == 10
        assert reply.next_hop() == 11

    def test_reply_at_origin_has_no_next_hop(self):
        reply = ReplyMessage(
            key=1, version=None, path=[10, 11], position=0, request_hops=1
        )
        assert reply.next_hop() is None

    def test_push_and_control_categories(self):
        assert PushMessage(key=1, version=None, sender=2).category is Category.PUSH
        control = ControlMessage(key=1, payloads=[Subscribe(3)], sender=2)
        assert control.category is Category.CONTROL

    def test_sequence_numbers_increase(self):
        first = QueryMessage(key=1, origin=1)
        second = QueryMessage(key=1, origin=1)
        assert second.sequence > first.sequence


class TestCostLedger:
    def test_charges_by_category(self):
        ledger = CostLedger(clock=FakeClock())
        ledger.charge(Category.QUERY, 3)
        ledger.charge(Category.PUSH, 2)
        assert ledger.hops(Category.QUERY) == 3
        assert ledger.total_hops == 5
        assert ledger.breakdown()["query"] == 3

    def test_warmup_hops_excluded(self):
        clock = FakeClock(0.0)
        ledger = CostLedger(clock=clock, warmup=100.0)
        ledger.charge(Category.QUERY, 5)
        clock.now = 150.0
        ledger.charge(Category.QUERY, 7)
        assert ledger.hops(Category.QUERY) == 7
        assert ledger.warmup_hops(Category.QUERY) == 5

    def test_keepalive_excluded_by_default(self):
        ledger = CostLedger(clock=FakeClock())
        ledger.charge(Category.KEEPALIVE, 10)
        ledger.charge(Category.QUERY, 1)
        assert ledger.total_hops == 1

    def test_keepalive_included_when_asked(self):
        ledger = CostLedger(clock=FakeClock(), count_keepalive=True)
        ledger.charge(Category.KEEPALIVE, 10)
        assert ledger.total_hops == 10

    def test_cost_per_query(self):
        ledger = CostLedger(clock=FakeClock())
        ledger.charge(Category.QUERY, 10)
        assert ledger.cost_per_query(4) == pytest.approx(2.5)
        assert np.isnan(ledger.cost_per_query(0))

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            CostLedger(clock=FakeClock()).charge(Category.QUERY, -1)


class TestLatencyRecorder:
    def test_records_and_averages(self):
        recorder = LatencyRecorder(clock=FakeClock())
        recorder.record(0, issued_at=0.0)
        recorder.record(4, issued_at=1.0)
        assert recorder.count == 2
        assert recorder.mean == pytest.approx(2.0)
        assert recorder.hit_rate == pytest.approx(0.5)

    def test_warmup_queries_discarded(self):
        recorder = LatencyRecorder(clock=FakeClock(), warmup=10.0)
        recorder.record(3, issued_at=5.0)
        recorder.record(3, issued_at=15.0)
        assert recorder.count == 1
        assert recorder.warmup_queries == 1

    def test_confidence_interval(self):
        recorder = LatencyRecorder(clock=FakeClock())
        for latency in range(100):
            recorder.record(float(latency), issued_at=1.0)
        ci = recorder.confidence_interval(batches=10)
        assert ci.mean == pytest.approx(49.5)

    def test_ci_requires_samples(self):
        recorder = LatencyRecorder(clock=FakeClock(), keep_samples=False)
        recorder.record(1, issued_at=0.0)
        with pytest.raises(RuntimeError):
            recorder.confidence_interval()

    def test_negative_latency_rejected(self):
        recorder = LatencyRecorder(clock=FakeClock())
        with pytest.raises(ValueError):
            recorder.record(-1, issued_at=0.0)


class TestTransport:
    def make_transport(self, env, latency=None):
        ledger = CostLedger(clock=lambda: env.now)
        transport = Transport(
            env=env,
            latency=latency or Deterministic(0.5),
            rng=np.random.default_rng(0),
            ledger=ledger,
        )
        return transport, ledger

    def test_delivers_after_latency(self):
        env = Environment()
        transport, _ = self.make_transport(env)
        delivered = []
        transport.bind(lambda dst, msg: delivered.append((env.now, dst)))
        transport.send(7, QueryMessage(key=1, origin=2))
        env.run()
        assert delivered == [(0.5, 7)]

    def test_charges_category(self):
        env = Environment()
        transport, ledger = self.make_transport(env)
        transport.bind(lambda dst, msg: None)
        transport.send(7, QueryMessage(key=1, origin=2))
        transport.send(7, PushMessage(key=1, version=None, sender=1))
        assert ledger.hops(Category.QUERY) == 1
        assert ledger.hops(Category.PUSH) == 1

    def test_free_hop_not_charged(self):
        env = Environment()
        transport, ledger = self.make_transport(env)
        transport.bind(lambda dst, msg: None)
        transport.send(7, QueryMessage(key=1, origin=2), free=True)
        assert ledger.total_hops == 0

    def test_multi_hop_charge(self):
        env = Environment()
        transport, ledger = self.make_transport(env)
        transport.bind(lambda dst, msg: None)
        message = ControlMessage(key=1, payloads=[Subscribe(1), Subscribe(2)], sender=3)
        transport.send(7, message, hops=2)
        assert ledger.hops(Category.CONTROL) == 2

    def test_unbound_transport_raises(self):
        env = Environment()
        transport, _ = self.make_transport(env)
        with pytest.raises(RuntimeError):
            transport.send(7, QueryMessage(key=1, origin=2))

    def test_exponential_latency_mean(self):
        env = Environment()
        transport, _ = self.make_transport(env, latency=Exponential(0.1))
        arrivals = []
        transport.bind(lambda dst, msg: arrivals.append(env.now))
        for _ in range(5000):
            transport.send(1, QueryMessage(key=1, origin=2))
        env.run()
        assert np.mean(arrivals) == pytest.approx(0.1, rel=0.1)

    def test_drop_counter(self):
        env = Environment()
        transport, _ = self.make_transport(env)
        assert transport.dropped == 0
        transport.drop()
        assert transport.dropped == 1


class TestVersionedDelivery:
    def test_push_carries_version(self):
        env = Environment()
        ledger = CostLedger(clock=lambda: env.now)
        transport = Transport(env, Deterministic(0.1), np.random.default_rng(0), ledger)
        got = []
        transport.bind(lambda dst, msg: got.append(msg.version))
        version = IndexVersion(key=1, version=3, issued_at=0.0, ttl=60.0)
        transport.send(5, PushMessage(key=1, version=version, sender=0))
        env.run()
        assert got[0].version == 3
