"""Tests of the peer-fluctuation layer (``repro.workload.sessions``).

Covers the :class:`SessionPlan` validation surface, the
:class:`FlapDamper` hysteresis, the crash-restart amnesia semantics end
to end (including the double-restart idempotency contract), regional
BFS-ball bursts, diurnal arrival modulation, the chaos-scenario wiring,
and the off-is-off bit-identity guarantee.
"""

import dataclasses
import json
import math

import pytest

from repro.engine import Simulation, SimulationConfig
from repro.engine.chaos import get_scenario
from repro.errors import ConfigError
from repro.net.faults import FaultPlan
from repro.workload.churn import ChurnConfig, ChurnProcess
from repro.workload.sessions import FlapDamper, SessionEngine, SessionPlan


def fingerprint(result, with_config=True) -> str:
    record = dataclasses.asdict(result)
    record.pop("wall_seconds")
    if not with_config:
        record.pop("config")
    return json.dumps(record, sort_keys=True, default=repr)


def sessions_config(**overrides):
    defaults = dict(
        scheme="dup",
        num_nodes=32,
        query_rate=2.0,
        ttl=600.0,
        push_lead=60.0,
        duration=3600.0,
        warmup=300.0,
        threshold_c=2,
        seed=5,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


FLAPPY = SessionPlan(mean_session=600.0, mean_downtime=60.0)


class TestSessionPlan:
    def test_default_plan_is_inert(self):
        plan = SessionPlan()
        assert not plan.enabled
        assert not plan.lifecycle_enabled
        assert not plan.regional_enabled
        assert not plan.crashes_enabled
        assert not plan.diurnal_enabled
        assert not plan.damping_enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(mean_session=-1.0),
            dict(mean_downtime=-1.0),
            dict(regional_rate=-0.1),
            # Pareto sessions need a finite mean.
            dict(mean_session=600.0, mean_downtime=60.0, session_alpha=1.0),
            # Anything that crashes must be able to come back.
            dict(mean_session=600.0),
            dict(regional_rate=0.01),
            dict(mean_downtime=60.0, downtime_sigma=0.0),
            dict(diurnal_amplitude=1.0),
            dict(diurnal_amplitude=-0.1),
            dict(diurnal_amplitude=0.5, diurnal_period=0.0),
            dict(regional_radius=0),
            dict(max_down_fraction=0.0),
            dict(max_down_fraction=1.5),
            # Damping hysteresis needs 0 < reuse < suppress.
            dict(damp_suppress=2.0, damp_reuse=2.0),
            dict(damp_suppress=2.0, damp_reuse=0.0),
            dict(damp_suppress=2.0, damp_penalty=0.0),
            dict(damp_suppress=2.0, damp_half_life=0.0),
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SessionPlan(**kwargs)

    def test_enabling_properties(self):
        lifecycle = SessionPlan(mean_session=600.0, mean_downtime=60.0)
        assert lifecycle.lifecycle_enabled
        assert lifecycle.crashes_enabled
        assert lifecycle.enabled
        assert not lifecycle.regional_enabled

        regional = SessionPlan(regional_rate=0.01, mean_downtime=60.0)
        assert regional.regional_enabled
        assert regional.crashes_enabled
        assert not regional.lifecycle_enabled

        diurnal = SessionPlan(diurnal_amplitude=0.3)
        assert diurnal.diurnal_enabled
        assert diurnal.enabled
        assert not diurnal.crashes_enabled

        damped = SessionPlan(
            mean_session=600.0, mean_downtime=60.0, damp_suppress=3.0
        )
        assert damped.damping_enabled

    def test_config_accepts_and_validates_plan(self):
        config = sessions_config(sessions=FLAPPY)
        assert config.sessions is FLAPPY
        config.validate()


class TestFlapDamper:
    def test_penalty_decays_with_half_life(self):
        damper = FlapDamper(1.0, 100.0, 3.0, 1.5)
        damper.penalize(7, 0.0)
        assert damper.penalty(7, 0.0) == pytest.approx(1.0)
        assert damper.penalty(7, 100.0) == pytest.approx(0.5)
        assert damper.penalty(7, 200.0) == pytest.approx(0.25)
        assert damper.penalty(42, 0.0) == 0.0

    def test_suppress_edge_fires_exactly_once(self):
        damper = FlapDamper(1.0, 100.0, 3.0, 1.5)
        assert not damper.penalize(7, 0.0)
        assert not damper.penalize(7, 0.0)
        assert damper.penalize(7, 0.0)  # crosses 3.0: the edge
        assert damper.suppressions == 1
        assert not damper.penalize(7, 0.0)  # already suppressed
        assert damper.suppressions == 1
        assert damper.suppressed_now == 1

    def test_release_is_lazy_and_keeps_residual_penalty(self):
        released = []
        damper = FlapDamper(1.0, 100.0, 3.0, 1.5, on_release=released.append)
        for _ in range(3):
            damper.penalize(7, 0.0)
        assert damper.suppressed(7, 0.0)
        assert damper.suppressed(7, 50.0)  # 3 * 2**-0.5 > 1.5
        # One half-life decays the penalty to exactly the reuse
        # threshold: released, callback fired, residual penalty kept.
        assert not damper.suppressed(7, 100.0)
        assert damper.releases == 1
        assert released == [7]
        assert damper.suppressed_now == 0
        assert damper.penalty(7, 100.0) == pytest.approx(1.5)
        # The residual means a repeat offender re-suppresses faster than
        # a first-time flapper: two more flaps suffice instead of three.
        assert not damper.penalize(7, 100.0)
        assert damper.penalize(7, 100.0)
        assert damper.suppressions == 2

    def test_unknown_node_is_not_suppressed(self):
        damper = FlapDamper(1.0, 100.0, 3.0, 1.5)
        assert not damper.suppressed(99, 12.0)
        assert damper.releases == 0


class TestChurnVictimGuard:
    def test_empty_candidate_pool_raises_config_error(self):
        import numpy as np

        process = ChurnProcess(
            ChurnConfig(fail_rate=1.0), np.random.default_rng(1)
        )
        with pytest.raises(ConfigError, match="no eligible churn victim"):
            process.pick_victim([])


class TestOffIsOff:
    def test_inert_plan_is_bit_identical_to_no_plan(self):
        plain = Simulation(sessions_config()).run()
        with_plan = Simulation(
            sessions_config(sessions=SessionPlan())
        ).run()
        assert fingerprint(plain, with_config=False) == fingerprint(
            with_plan, with_config=False
        )

    def test_inert_plan_builds_no_engine_and_forces_no_injector(self):
        sim = Simulation(sessions_config(sessions=SessionPlan()))
        assert sim.sessions is None
        assert sim.injector is None


class TestLifecycleIntegration:
    def test_peers_crash_and_rejoin(self):
        result = Simulation(sessions_config(sessions=FLAPPY)).run()
        extras = result.extras
        assert extras["session_crashes"] > 0
        assert extras["session_rejoins"] > 0
        assert extras["session_rejoins"] <= extras["session_crashes"]
        assert extras["session_down_now"] == (
            extras["session_crashes"] - extras["session_rejoins"]
        )
        # The reconciliation handshake ran for undamped rejoins.
        assert extras["rejoin_reconciles"] > 0
        assert (
            extras["rejoin_kept_entries"] + extras["rejoin_excised_entries"]
            >= 0
        )

    def test_crash_plan_forces_silent_failures(self):
        sim = Simulation(sessions_config(sessions=FLAPPY))
        assert sim.injector is not None
        assert sim.config.faults is None  # the user's config is untouched
        assert sim.sessions is not None

    def test_root_is_protected(self):
        sim = Simulation(sessions_config(sessions=FLAPPY, seed=9))
        sim.start()
        root = sim.tree.root
        for until in (900.0, 1800.0, 2700.0, 3600.0):
            sim.env.run(until=until)
            assert sim.functioning(root)
            assert root not in sim.sessions._down

    def test_down_fraction_ceiling_defers_crashes(self):
        plan = SessionPlan(
            mean_session=200.0,
            mean_downtime=400.0,
            max_down_fraction=0.25,
        )
        sim = Simulation(sessions_config(sessions=plan, num_nodes=16))
        sim.start()
        limit = plan.max_down_fraction * 16
        for until in range(300, 3601, 300):
            sim.env.run(until=float(until))
            assert sim.sessions.down_now <= limit
        assert sim.sessions.deferred > 0

    def test_fluctuating_run_is_replayable(self):
        config = sessions_config(sessions=FLAPPY)
        first = Simulation(config).run()
        second = Simulation(config).run()
        assert fingerprint(first) == fingerprint(second)


class TestFlapChaos:
    def test_flap_storm_keeps_auditor_clean_and_trips_damping(self):
        config = get_scenario("flap").apply(
            sessions_config(
                retry_budget=4,
                ack_timeout=2.0,
                lease_ttl=300.0,
                seed=7,
            )
        )
        result = Simulation(config).run()
        extras = result.extras
        assert extras["flap_suppressions"] > 0
        assert extras["session_rejoins_damped"] > 0
        # Zero *unrepaired* divergences: every violation the auditor
        # finds is repaired in the same sweep.
        assert extras["audit_sweeps"] > 0
        assert extras["audit_violations"] == extras["audit_repairs"]

    def test_scenario_plans_registered(self):
        flap = get_scenario("flap")
        assert flap.sessions is not None
        assert flap.sessions.damping_enabled
        regional = get_scenario("regional")
        assert regional.sessions is not None
        assert regional.sessions.regional_enabled

    def test_scenario_keeps_existing_session_plan(self):
        config = sessions_config(sessions=FLAPPY)
        applied = get_scenario("flap").apply(config)
        assert applied.sessions is FLAPPY


class TestRegionalBursts:
    PLAN = SessionPlan(
        regional_rate=1.0 / 400.0,
        regional_radius=2,
        mean_downtime=120.0,
    )

    def test_ball_is_the_bfs_neighborhood(self):
        sim = Simulation(sessions_config(sessions=self.PLAN))
        sim.start()
        engine = sim.sessions
        tree = sim.tree
        root = tree.root
        seed = next(
            node
            for node in sorted(tree.nodes)
            if node != root and tree.parent(node) != root
        )
        ball = engine._ball(seed)
        assert ball[0] == seed
        assert root not in ball
        expected = {seed}
        frontier = {seed}
        for _ in range(self.PLAN.regional_radius):
            nxt = set()
            for node in frontier:
                nxt.update(tree.children(node))
                parent = tree.parent(node)
                if parent is not None:
                    nxt.add(parent)
            frontier = nxt - expected
            expected |= frontier
        assert set(ball) == {
            node for node in expected if engine._crashable(node)
        }

    def test_regional_scenario_fires_bursts(self):
        config = get_scenario("regional").apply(
            sessions_config(
                sessions=self.PLAN,
                retry_budget=4,
                ack_timeout=2.0,
                lease_ttl=300.0,
            )
        )
        result = Simulation(config).run()
        extras = result.extras
        assert extras["session_regional_bursts"] > 0
        assert (
            extras["session_regional_victims"]
            >= extras["session_regional_bursts"]
        )
        assert extras["session_rejoins"] > 0
        assert extras["audit_violations"] == extras["audit_repairs"]


def amnesia_sim(**overrides):
    """A small manually-driven sim whose nodes can crash-restart."""
    defaults = dict(
        scheme="dup",
        num_nodes=6,
        topology="chain",
        hop_latency_mean=0.001,
        duration=50_000.0,
        warmup=0.0,
        threshold_c=1,
        seed=1,
        piggyback=False,
        faults=FaultPlan(silent_failures=True),
        retry_budget=5,
        ack_timeout=1.0,
        lease_ttl=600.0,
    )
    defaults.update(overrides)
    sim = Simulation(SimulationConfig(**defaults))
    sim.start()
    sim.env.run(until=0.0)
    return sim


def subscribe(sim, *nodes):
    for at in (None, 3550.0, 3650.0):
        if at is not None:
            sim.env.run(until=at)
        for node in nodes:
            sim.scheme.on_local_query(node)
    sim.env.run(until=3700.0)


def state_fingerprint(sim):
    """Tree edges plus every non-empty subscriber list."""
    protocol = sim.scheme.protocol
    edges = sorted(
        (node, sim.tree.parent(node)) for node in sim.tree.nodes
    )
    lists = sorted(
        (node, tuple(sorted(protocol.peek_entries(node))))
        for node in protocol.nodes_with_state()
    )
    return (edges, lists)


class TestCrashRestartAmnesia:
    def test_rejoin_restores_retained_subscriber_list(self):
        sim = amnesia_sim()
        subscribe(sim, 5, 3)
        before = state_fingerprint(sim)
        snapshot = sim.crash_node(4)
        assert snapshot["scheme"]["entries"] == (5,)
        sim.rejoin_node(4, snapshot)
        sim.env.run(until=sim.env.now + 10.0)
        assert state_fingerprint(sim) == before

    def test_double_restart_reconciles_like_single_restart(self):
        # The satellite contract: a node crash-restarting twice in a
        # row with no intervening traffic must reconcile to the same
        # tree fingerprint as a single restart.
        single = amnesia_sim()
        double = amnesia_sim()
        for sim in (single, double):
            subscribe(sim, 5, 3)

        snapshot = single.crash_node(4)
        single.rejoin_node(4, snapshot)

        first = double.crash_node(4)
        double.rejoin_node(4, first)
        second = double.crash_node(4)
        double.rejoin_node(4, second)

        settle = max(single.env.now, double.env.now) + 50.0
        single.env.run(until=settle)
        double.env.run(until=settle)
        assert state_fingerprint(single) == state_fingerprint(double)

    def test_suppressed_rejoin_is_full_amnesia(self):
        sim = amnesia_sim()
        subscribe(sim, 5, 3)
        snapshot = sim.crash_node(4)
        sim.rejoin_node(4, snapshot, suppressed=True)
        # No retained list, no re-subscription traffic: the node came
        # back as a bare leaf.
        assert sim.scheme.protocol.peek_entries(4) == ()
        assert 4 in sim.tree
        sim.env.run(until=sim.env.now + 10.0)
        assert sim.scheme.protocol.peek_entries(4) == ()

    def test_stale_self_entry_excised_when_interest_lapsed(self):
        # A short interest window (= the index TTL) so the downtime
        # outlasts it.  The subscription rides a cache miss, so the
        # final query must land after the previous fetch expired.
        sim = amnesia_sim(ttl=600.0)
        for at in (3550.0, 3650.0, 4200.0):
            sim.env.run(until=at)
            sim.scheme.on_local_query(5)
        sim.env.run(until=4300.0)
        snapshot = sim.crash_node(5)
        assert 5 in snapshot["scheme"]["entries"]
        # Stay down past the interest window so the self-subscription
        # no longer reflects live interest.
        sim.env.run(until=sim.env.now + 2_000.0)
        sim.rejoin_node(5, snapshot)
        assert 5 not in sim.scheme.protocol.peek_entries(5)
        assert sim.scheme.rejoin_reconciles == 1


class TestDiurnalModulation:
    def test_modulation_curve(self):
        plan = SessionPlan(diurnal_amplitude=0.5, diurnal_period=100.0)
        engine = SessionEngine.__new__(SessionEngine)
        engine.plan = plan
        assert engine.modulation(0.0) == pytest.approx(1.0)
        assert engine.modulation(25.0) == pytest.approx(1.5)
        assert engine.modulation(75.0) == pytest.approx(0.5)
        assert engine.modulation(100.0) == pytest.approx(1.0)

    def test_diurnal_only_plan_needs_no_injector(self):
        sim = Simulation(
            sessions_config(sessions=SessionPlan(diurnal_amplitude=0.3))
        )
        assert sim.injector is None
        assert sim.sessions is not None

    def test_diurnal_modulation_shifts_the_workload(self):
        plain = Simulation(sessions_config()).run()
        curved = Simulation(
            sessions_config(sessions=SessionPlan(diurnal_amplitude=0.9))
        ).run()
        assert curved.queries != plain.queries
        assert math.isfinite(curved.mean_latency)
