"""Unit and property tests for the statistics substrate."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.stats import (
    ConfidenceInterval,
    Deterministic,
    Exponential,
    LogNormal,
    Pareto,
    RunningStat,
    TimeWeightedStat,
    Uniform,
    ZipfSelector,
    batch_means_interval,
    mean_confidence_interval,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestRunningStat:
    def test_empty_stat_is_nan(self):
        stat = RunningStat()
        assert math.isnan(stat.mean)
        assert math.isnan(stat.variance)
        assert stat.count == 0

    def test_known_values(self):
        stat = RunningStat()
        stat.extend([2.0, 4.0, 6.0])
        assert stat.mean == pytest.approx(4.0)
        assert stat.variance == pytest.approx(4.0)
        assert stat.stdev == pytest.approx(2.0)
        assert stat.minimum == 2.0
        assert stat.maximum == 6.0
        assert stat.total == pytest.approx(12.0)

    def test_single_value_variance_nan(self):
        stat = RunningStat()
        stat.add(7.0)
        assert stat.mean == 7.0
        assert math.isnan(stat.variance)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    def test_matches_numpy(self, values):
        stat = RunningStat()
        stat.extend(values)
        assert stat.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        assert stat.variance == pytest.approx(
            np.var(values, ddof=1), rel=1e-6, abs=1e-6
        )

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
    )
    def test_merge_equals_concatenation(self, first, second):
        stat_a = RunningStat()
        stat_a.extend(first)
        stat_b = RunningStat()
        stat_b.extend(second)
        merged = stat_a.merge(stat_b)
        combined = RunningStat()
        combined.extend(first + second)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(
            combined.variance, rel=1e-6, abs=1e-6
        )

    def test_merge_with_empty(self):
        stat = RunningStat()
        stat.extend([1.0, 2.0])
        merged = stat.merge(RunningStat())
        assert merged.mean == pytest.approx(1.5)
        merged = RunningStat().merge(stat)
        assert merged.mean == pytest.approx(1.5)


class TestTimeWeightedStat:
    def test_piecewise_constant_mean(self):
        stat = TimeWeightedStat(start_time=0.0, value=0.0)
        stat.update(at=10.0, value=4.0)
        assert stat.mean(at=20.0) == pytest.approx(2.0)

    def test_backwards_time_rejected(self):
        stat = TimeWeightedStat()
        stat.update(at=5.0, value=1.0)
        with pytest.raises(ValueError):
            stat.update(at=4.0, value=2.0)

    def test_zero_elapsed_is_nan(self):
        stat = TimeWeightedStat(start_time=3.0)
        assert math.isnan(stat.mean(at=3.0))

    def test_current_tracks_last_value(self):
        stat = TimeWeightedStat()
        stat.update(at=1.0, value=9.0)
        assert stat.current == 9.0


class TestConfidenceIntervals:
    def test_empty_samples(self):
        ci = mean_confidence_interval([])
        assert math.isnan(ci.mean)
        assert ci.count == 0

    def test_single_sample_no_width(self):
        ci = mean_confidence_interval([5.0])
        assert ci.mean == 5.0
        assert math.isnan(ci.half_width)

    def test_constant_samples_zero_width(self):
        ci = mean_confidence_interval([3.0, 3.0, 3.0, 3.0])
        assert ci.mean == 3.0
        assert ci.half_width == pytest.approx(0.0)

    def test_known_t_interval(self):
        # mean 10, stdev 2, n=4 -> half width = t(0.975, 3) * 2/2 = 3.182
        samples = [8.0, 9.0, 11.0, 12.0]
        ci = mean_confidence_interval(samples)
        assert ci.mean == pytest.approx(10.0)
        assert ci.half_width == pytest.approx(2.9, abs=0.2)

    def test_contains(self):
        ci = ConfidenceInterval(mean=10.0, half_width=1.0, confidence=0.95, count=5)
        assert ci.contains(10.5)
        assert not ci.contains(12.0)
        assert ci.low == 9.0
        assert ci.high == 11.0

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, 2.0], confidence=1.5)

    def test_coverage_of_true_mean(self):
        generator = rng(7)
        covered = 0
        trials = 200
        for _ in range(trials):
            samples = generator.normal(loc=5.0, scale=2.0, size=20)
            if mean_confidence_interval(samples).contains(5.0):
                covered += 1
        assert covered / trials > 0.88  # nominal 0.95

    def test_batch_means(self):
        observations = list(range(100))
        ci = batch_means_interval(observations, batches=10)
        assert ci.mean == pytest.approx(49.5)
        assert ci.count == 10

    def test_batch_means_too_few_batches(self):
        with pytest.raises(ValueError):
            batch_means_interval([1.0, 2.0], batches=1)

    def test_batch_means_short_sequence_falls_back(self):
        ci = batch_means_interval([1.0, 2.0, 3.0], batches=20)
        assert ci.count == 3


class TestDistributions:
    def test_deterministic(self):
        dist = Deterministic(2.5)
        assert dist.sample(rng()) == 2.5
        assert dist.mean == 2.5

    def test_deterministic_negative_rejected(self):
        with pytest.raises(WorkloadError):
            Deterministic(-1.0)

    def test_uniform_bounds_and_mean(self):
        dist = Uniform(1.0, 3.0)
        generator = rng(1)
        samples = [dist.sample(generator) for _ in range(2000)]
        assert all(1.0 <= s <= 3.0 for s in samples)
        assert np.mean(samples) == pytest.approx(2.0, abs=0.05)

    def test_exponential_mean(self):
        dist = Exponential(0.1)
        generator = rng(2)
        samples = [dist.sample(generator) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(0.1, rel=0.05)

    def test_exponential_from_rate(self):
        assert Exponential.from_rate(4.0).mean == pytest.approx(0.25)
        assert Exponential(0.5).rate == pytest.approx(2.0)

    def test_exponential_invalid(self):
        with pytest.raises(WorkloadError):
            Exponential(0.0)
        with pytest.raises(WorkloadError):
            Exponential.from_rate(-1.0)

    def test_pareto_mean_rate_matches_paper_formula(self):
        # (alpha - 1) / k must equal the requested rate.
        dist = Pareto.from_rate(alpha=1.2, rate=2.0)
        assert dist.k == pytest.approx(0.1)
        assert dist.mean == pytest.approx(0.5)
        generator = rng(3)
        samples = [dist.sample(generator) for _ in range(200000)]
        # Heavy tail: generous tolerance.
        assert np.mean(samples) == pytest.approx(0.5, rel=0.25)

    def test_pareto_cdf_inversion(self):
        # P(X <= x) = 1 - (k/(x+k))^alpha; check the empirical median.
        alpha, k = 1.5, 2.0
        dist = Pareto(alpha, k)
        median = k * (2 ** (1 / alpha) - 1)
        generator = rng(4)
        samples = np.array([dist.sample(generator) for _ in range(20000)])
        assert np.median(samples) == pytest.approx(median, rel=0.05)

    def test_pareto_alpha_below_one_infinite_mean(self):
        assert Pareto(0.9, 1.0).mean == math.inf
        with pytest.raises(WorkloadError):
            Pareto.from_rate(alpha=0.9, rate=1.0)

    def test_lognormal_mean(self):
        dist = LogNormal.from_mean(0.1, sigma=0.5)
        assert dist.mean == pytest.approx(0.1, rel=1e-9)
        generator = rng(5)
        samples = [dist.sample(generator) for _ in range(50000)]
        assert np.mean(samples) == pytest.approx(0.1, rel=0.05)


class TestZipfSelector:
    def test_probabilities_sum_to_one(self):
        selector = ZipfSelector(100, theta=0.95)
        total = sum(selector.probability(r) for r in range(100))
        assert total == pytest.approx(1.0)

    def test_theta_zero_is_uniform(self):
        selector = ZipfSelector(10, theta=0.0)
        for rank in range(10):
            assert selector.probability(rank) == pytest.approx(0.1)

    def test_paper_formula(self):
        # P_i = (1/i^theta) / sum_k 1/k^theta, ranks 1-based in the paper.
        theta, n = 1.5, 50
        selector = ZipfSelector(n, theta)
        denominator = sum(1 / k**theta for k in range(1, n + 1))
        for i in (1, 2, 10, 50):
            expected = (1 / i**theta) / denominator
            assert selector.probability(i - 1) == pytest.approx(expected)

    def test_rank_zero_is_hottest(self):
        selector = ZipfSelector(20, theta=2.0)
        probabilities = [selector.probability(r) for r in range(20)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_empirical_frequencies(self):
        selector = ZipfSelector(10, theta=1.0)
        generator = rng(6)
        draws = selector.sample_many(generator, 100000)
        freq0 = np.mean(draws == 0)
        assert freq0 == pytest.approx(selector.probability(0), abs=0.01)

    def test_sample_in_range(self):
        selector = ZipfSelector(5, theta=3.0)
        generator = rng(7)
        assert all(0 <= selector.sample(generator) < 5 for _ in range(1000))

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            ZipfSelector(0, theta=1.0)
        with pytest.raises(WorkloadError):
            ZipfSelector(5, theta=-0.1)
        with pytest.raises(WorkloadError):
            ZipfSelector(5, theta=1.0).probability(9)

    @given(st.integers(1, 500), st.floats(0.0, 4.0))
    @settings(max_examples=30)
    def test_cdf_monotone(self, n, theta):
        selector = ZipfSelector(n, theta)
        total = sum(selector.probability(r) for r in range(n))
        assert total == pytest.approx(1.0)
