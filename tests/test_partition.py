"""Tests of partition windows: plan validation, injector, transport."""

import dataclasses
import json

import pytest

from repro.engine import Simulation, SimulationConfig
from repro.errors import ConfigError
from repro.net.faults import FaultInjector, FaultPlan, PartitionWindow
from repro.net.message import QueryMessage
from repro.sim.rng import RandomStreams

WINDOW = PartitionWindow(start=100.0, duration=50.0, components=2)


def fingerprint(result, with_config=True) -> str:
    record = dataclasses.asdict(result)
    record.pop("wall_seconds")
    if not with_config:
        # For cross-config bit-identity claims: the configs differ by
        # construction, the *behavior* must not.
        record.pop("config")
    return json.dumps(record, sort_keys=True, default=repr)


class TestPartitionWindow:
    def test_end_is_start_plus_duration(self):
        assert WINDOW.end == 150.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(start=-1.0, duration=10.0),
            dict(start=0.0, duration=0.0),
            dict(start=0.0, duration=-5.0),
            dict(start=0.0, duration=10.0, components=1),
            dict(start=0.0, duration=10.0, components=0),
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            PartitionWindow(**kwargs)

    def test_plan_with_partitions_is_enabled(self):
        assert FaultPlan(partitions=(WINDOW,)).enabled

    def test_plan_rejects_overlapping_windows(self):
        with pytest.raises(ConfigError):
            FaultPlan(
                partitions=(
                    WINDOW,
                    PartitionWindow(start=120.0, duration=10.0),
                )
            )

    def test_plan_rejects_unsorted_windows(self):
        with pytest.raises(ConfigError):
            FaultPlan(
                partitions=(
                    PartitionWindow(start=500.0, duration=10.0),
                    WINDOW,
                )
            )


class TestInjectorPartitions:
    def make(self, seed=1):
        return FaultInjector(
            FaultPlan(partitions=(WINDOW,)),
            RandomStreams(seed),
            clock=lambda: 0.0,
        )

    def test_begin_requires_scheduled_windows(self):
        injector = FaultInjector(
            FaultPlan(loss_rate=0.1), RandomStreams(1), clock=lambda: 0.0
        )
        with pytest.raises(ConfigError):
            injector.begin_partition(range(10), 2)

    def test_components_are_balanced_and_exhaustive(self):
        injector = self.make()
        members = list(range(20))
        injector.begin_partition(members, components=3)
        assert injector.partition_active
        groups = {}
        for node in members:
            groups.setdefault(injector.component_of(node), []).append(node)
        assert set(groups) == {0, 1, 2}
        sizes = sorted(len(g) for g in groups.values())
        assert sizes[-1] - sizes[0] <= 1

    def test_assignment_is_seed_deterministic(self):
        one, two = self.make(seed=9), self.make(seed=9)
        other = self.make(seed=10)
        members = list(range(16))
        for injector in (one, two, other):
            injector.begin_partition(members, components=2)
        assert [one.component_of(n) for n in members] == [
            two.component_of(n) for n in members
        ]
        assert [one.component_of(n) for n in members] != [
            other.component_of(n) for n in members
        ], "different seeds should cut differently"

    def test_cross_component_hops_drop_and_count(self):
        injector = self.make()
        injector.begin_partition(range(8), components=2)
        crossings = 0
        for sender in range(8):
            for destination in range(8):
                if injector.crosses_partition(sender, destination):
                    crossings += 1
        assert crossings > 0
        assert injector.partition_drops == crossings
        # Same-component traffic flows, including self-sends.
        assert not injector.crosses_partition(3, 3)

    def test_sourceless_sends_never_cross(self):
        injector = self.make()
        injector.begin_partition(range(8), components=2)
        assert not injector.crosses_partition(None, 5)

    def test_heal_reconnects_everyone(self):
        injector = self.make()
        injector.begin_partition(range(8), components=2)
        injector.heal_partition()
        assert not injector.partition_active
        assert not any(
            injector.crosses_partition(s, d)
            for s in range(8)
            for d in range(8)
        )
        drops_after_heal = injector.partition_drops
        assert drops_after_heal == 0

    def test_late_joiner_assigned_without_stream_draws(self):
        injector = self.make()
        injector.begin_partition(range(8), components=3)
        # Node 100 was not a member at split time: component by id hash.
        assert injector.component_of(100) == 100 % 3
        assert injector.component_of(100) == injector.component_of(100)


class TestSimulatedPartitions:
    CONFIG = dict(
        scheme="dup",
        num_nodes=32,
        query_rate=3.0,
        ttl=600.0,
        push_lead=60.0,
        duration=2400.0,
        warmup=300.0,
        threshold_c=2,
        seed=3,
    )

    def test_partition_cuts_and_heals(self):
        config = SimulationConfig(
            faults=FaultPlan(
                partitions=(
                    PartitionWindow(start=600.0, duration=300.0),
                )
            ),
            **self.CONFIG,
        )
        result = Simulation(config).run()
        assert result.extras["partitions_started"] == 1
        assert result.extras["partition_drops"] > 0
        assert result.dropped_messages >= result.extras["partition_drops"]

    def test_empty_partition_schedule_is_bit_identical(self):
        # The partition stream is only opened when windows are
        # scheduled, so a plan without windows must not perturb a run.
        plain = Simulation(SimulationConfig(**self.CONFIG)).run()
        with_plan = Simulation(
            SimulationConfig(faults=FaultPlan(), **self.CONFIG)
        ).run()
        assert fingerprint(plain, with_config=False) == fingerprint(
            with_plan, with_config=False
        )

    def test_partitioned_run_is_replayable(self):
        config = SimulationConfig(
            faults=FaultPlan(
                partitions=(
                    PartitionWindow(start=600.0, duration=120.0),
                )
            ),
            **self.CONFIG,
        )
        first = Simulation(config).run()
        second = Simulation(config).run()
        assert fingerprint(first) == fingerprint(second)
