"""Tests of the DUP state machine against the paper's own walk-throughs.

The scenario names reference the paper: Figure 2 (a)-(c) show the evolving
dynamic update propagation tree on the topology N1..N8; Section III-B's
prose describes the subscribe / substitute / unsubscribe flows these tests
assert step by step.
"""

import pytest

from repro.core import SubscriberList, check_dup_invariants, push_reachable
from repro.core.protocol import DupProtocol
from repro.errors import ProtocolError, SubscriptionError
from repro.net.message import RefreshSubscribe, Subscribe, Substitute, Unsubscribe


class TestSubscriberList:
    def test_add_and_contains(self):
        s_list = SubscriberList()
        assert s_list.add(5)
        assert not s_list.add(5)
        assert 5 in s_list
        assert len(s_list) == 1

    def test_discard(self):
        s_list = SubscriberList([1, 2])
        assert s_list.discard(1)
        assert not s_list.discard(1)
        assert s_list.snapshot() == (2,)

    def test_replace_in_place(self):
        s_list = SubscriberList([1, 2, 3])
        assert s_list.replace(2, 9)
        assert s_list.snapshot() == (1, 9, 3)

    def test_replace_missing_old_appends(self):
        s_list = SubscriberList([1])
        assert s_list.replace(7, 9)
        assert s_list.snapshot() == (1, 9)

    def test_replace_existing_new_drops_old(self):
        s_list = SubscriberList([1, 2])
        assert s_list.replace(1, 2)
        assert s_list.snapshot() == (2,)

    def test_replace_identical_is_noop(self):
        s_list = SubscriberList([1])
        assert not s_list.replace(1, 1)

    def test_first(self):
        assert SubscriberList([4, 5]).first == 4
        with pytest.raises(IndexError):
            _ = SubscriberList().first

    def test_equality_with_sets(self):
        assert SubscriberList([1, 2]) == {2, 1}
        assert SubscriberList([1]) == SubscriberList([1])


class TestFigure2Walkthrough:
    """The paper's running example, asserted state by state."""

    def test_single_subscriber_creates_virtual_path(self, driver):
        # Figure 2 (a): only N6 is interested.
        driver.subscribe(6)
        # Virtual path N5, N3, N2 all list N6; only N1 and N6 are in the
        # DUP tree.
        for relay in (5, 3, 2):
            assert driver.s_list(relay) == {6}
        assert driver.s_list(1) == {6}
        assert driver.s_list(6) == {6}
        # The root pushes directly to N6: one hop, not four.
        assert driver.push_recipients() == {6}
        assert driver.push_hops() == 1
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_second_subscriber_promotes_common_ancestor(self, driver):
        # Figure 2 (b): N4 also becomes interested; N3 (nearest common
        # parent) joins the DUP tree via substitute(N6, N3).
        driver.subscribe(6)
        driver.subscribe(4)
        assert driver.s_list(3) == {6, 4}
        assert driver.s_list(2) == {3}
        assert driver.s_list(1) == {3}
        # Push: N1 -> N3, N3 -> {N4, N6}: three hops (paper: "this scheme
        # only costs three hops").
        assert driver.push_recipients() == {3, 4, 6}
        assert driver.push_hops() == 3
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_unsubscribe_collapses_tree(self, driver):
        # Figure 2 (c): N6 leaves the tree; N1 pushes directly to N4.
        driver.subscribe(6)
        driver.subscribe(4)
        driver.unsubscribe(6)
        assert driver.s_list(5) == set()
        assert driver.s_list(3) == {4}
        assert driver.s_list(2) == {4}
        assert driver.s_list(1) == {4}
        assert driver.push_recipients() == {4}
        assert driver.push_hops() == 1
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_deeper_descendants_handled_by_nearest_subscriber(self, driver):
        # Paper Section III-B: "for N7 or N8, N6 takes care of them".
        driver.subscribe(6)
        driver.subscribe(7)
        assert driver.s_list(6) == {6, 7}
        # N6 is now a DUP-tree node; upstream still lists N6.
        assert driver.s_list(5) == {6}
        assert driver.s_list(1) == {6}
        assert driver.push_recipients() == {6, 7}
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_intermediate_subscriber_replaces_downstream(self, driver):
        # Paper Section III-B: "for N5, after it joins the tree, it
        # replaces N6 as a subscriber of N3 and N5 lists N6 as its
        # subscriber."
        driver.subscribe(6)
        driver.subscribe(4)
        driver.subscribe(5)
        assert driver.s_list(5) == {5, 6}
        assert driver.s_list(3) == {5, 4}
        assert driver.push_recipients() == {3, 4, 5, 6}
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_all_unsubscribe_empties_everything(self, driver):
        for node in (6, 4, 7, 2):
            driver.subscribe(node)
        for node in (6, 4, 7, 2):
            driver.unsubscribe(node)
        for node in driver.tree.nodes:
            assert driver.s_list(node) == set()
        assert driver.push_recipients() == set()
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_subscribe_is_idempotent(self, driver):
        driver.subscribe(6)
        hops_before = driver.control_hops
        driver.subscribe(6)
        assert driver.control_hops == hops_before
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_unsubscribe_without_subscription_is_noop(self, driver):
        driver.unsubscribe(6)
        assert driver.s_list(6) == set()
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)

    def test_root_subscription_is_local(self, driver):
        driver.subscribe(1)
        assert driver.control_hops == 0
        # The root never pushes to itself.
        assert driver.push_recipients() == set()

    def test_subscriber_list_bound(self, driver):
        # "The number of subscribers that each node needs to maintain is
        # at most equal to the number of its direct children" (+ itself).
        for node in (4, 5, 6, 7, 8, 3, 2):
            driver.subscribe(node)
        for node in driver.tree.nodes:
            bound = driver.tree.degree(node) + 1
            assert len(driver.s_list(node)) <= bound
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)


class TestProtocolEdgeCases:
    def test_unknown_payload_rejected(self):
        protocol = DupProtocol(is_root=lambda n: n == 0)
        with pytest.raises(SubscriptionError):
            protocol.step(0, object())

    def test_step_dispatch(self):
        protocol = DupProtocol(is_root=lambda n: n == 0)
        # Subscribe at a non-root relay forwards.
        result = protocol.step(5, Subscribe(9))
        assert result.upstream == [Subscribe(9)]
        # Second branch promotes the relay.
        result = protocol.step(5, Subscribe(8))
        assert result.upstream == [Substitute(9, 5)]
        # Third subscriber: already in the tree, no upstream action.
        result = protocol.step(5, Subscribe(7))
        assert result.upstream == []

    def test_unsubscribe_forwards_removed_subject(self):
        # The relay forwards the *removed subject*, not itself (see the
        # module docstring of repro.core.protocol, deviation 1).
        protocol = DupProtocol(is_root=lambda n: n == 0)
        protocol.step(5, Subscribe(9))
        result = protocol.step(5, Unsubscribe(9))
        assert result.upstream == [Unsubscribe(9)]

    def test_tree_node_unsubscribe_emits_substitute(self):
        protocol = DupProtocol(is_root=lambda n: n == 0)
        protocol.step(5, Subscribe(9))
        protocol.step(5, Subscribe(8))
        result = protocol.step(5, Unsubscribe(9))
        assert result.upstream == [Substitute(5, 8)]

    def test_self_promotion_suppresses_noop_substitute(self):
        # A subscribed node gaining its first downstream subscriber would
        # emit substitute(n, n); the protocol suppresses it (deviation 2).
        protocol = DupProtocol(is_root=lambda n: n == 0)
        result = protocol.ensure_subscribed(5)
        assert result.upstream == [Subscribe(5)]
        result = protocol.step(5, Subscribe(9))
        assert result.upstream == []
        assert protocol.push_targets(5) == (9,)

    def test_substitute_absorbed_by_tree_node(self):
        protocol = DupProtocol(is_root=lambda n: n == 0)
        protocol.step(5, Subscribe(9))
        protocol.step(5, Subscribe(8))  # now a tree node
        result = protocol.step(5, Substitute(9, 7))
        assert result.upstream == []
        assert set(protocol.s_list(5)) == {7, 8}

    def test_substitute_forwarded_by_relay(self):
        protocol = DupProtocol(is_root=lambda n: n == 0)
        protocol.step(5, Subscribe(9))
        result = protocol.step(5, Substitute(9, 7))
        assert result.upstream == [Substitute(9, 7)]
        assert set(protocol.s_list(5)) == {7}

    def test_refresh_passes_through_knowing_nodes(self):
        protocol = DupProtocol(is_root=lambda n: n == 0)
        protocol.step(5, Subscribe(9))
        result = protocol.step(5, RefreshSubscribe(9))
        assert result.upstream == [RefreshSubscribe(9)]

    def test_refresh_converts_at_unknowing_node(self):
        protocol = DupProtocol(is_root=lambda n: n == 0)
        result = protocol.step(5, RefreshSubscribe(9))
        assert result.upstream == [Subscribe(9)]
        assert set(protocol.s_list(5)) == {9}

    def test_refresh_registers_at_root(self):
        protocol = DupProtocol(is_root=lambda n: n == 0)
        protocol.step(0, Subscribe(9))
        result = protocol.step(0, RefreshSubscribe(9))
        assert result.upstream == []
        assert set(protocol.s_list(0)) == {9}

    def test_new_subscriber_reported(self):
        protocol = DupProtocol(is_root=lambda n: n == 0)
        result = protocol.step(0, Subscribe(9))
        assert result.new_subscribers == [9]

    def test_drop_node_removes_state(self):
        protocol = DupProtocol(is_root=lambda n: n == 0)
        protocol.step(5, Subscribe(9))
        dropped = protocol.drop_node(5)
        assert set(dropped) == {9}
        assert len(protocol.s_list(5)) == 0

    def test_adopt_entries_skips_self(self):
        protocol = DupProtocol(is_root=lambda n: n == 0)
        protocol.adopt_entries(5, [5, 9, 8])
        assert set(protocol.s_list(5)) == {9, 8}


class TestInvariantChecker:
    def test_detects_foreign_subscriber(self, figure2_tree):
        protocol = DupProtocol(is_root=lambda n: n == figure2_tree.root)
        protocol.s_list(4).add(6)  # 6 is not a descendant of 4
        with pytest.raises(ProtocolError):
            check_dup_invariants(protocol, figure2_tree)

    def test_detects_branch_collision(self, figure2_tree):
        protocol = DupProtocol(is_root=lambda n: n == figure2_tree.root)
        protocol.s_list(3).add(6)
        protocol.s_list(3).add(5)  # same branch as 6
        with pytest.raises(ProtocolError):
            check_dup_invariants(protocol, figure2_tree)

    def test_detects_broken_virtual_path(self, figure2_tree):
        protocol = DupProtocol(is_root=lambda n: n == figure2_tree.root)
        protocol.s_list(6).add(6)  # subscribed, but nobody upstream knows
        with pytest.raises(ProtocolError):
            check_dup_invariants(protocol, figure2_tree)

    def test_push_reachable_respects_forwarding_rule(self, figure2_tree):
        protocol = DupProtocol(is_root=lambda n: n == figure2_tree.root)
        # Root lists 5; 5 is a relay (single entry) so it must not forward.
        protocol.s_list(1).add(5)
        protocol.s_list(5).add(6)
        reached = push_reachable(protocol, figure2_tree.root)
        assert reached == {5}

    def test_accepts_quiescent_state(self, driver):
        driver.subscribe(6)
        driver.subscribe(4)
        driver.subscribe(8)
        check_dup_invariants(driver.protocol, driver.tree, driver.interested)
