"""Direct property tests of the DUP tree invariants (ISSUE: satellite).

``test_dup_properties.py`` checks histories through the aggregate
:func:`check_dup_invariants` oracle; this suite asserts each structural
invariant *directly* from the primitive protocol state, so a regression
pinpoints which property broke:

1. **branch uniqueness** — at most one subscriber per downstream branch
   of every node's subscriber list;
2. **acyclicity** — the push-forwarding graph contains no cycles;
3. **interior shape** — every forwarding (DUP-tree interior) node holds
   >= 2 entries spanning >= 2 interest sources, and every push-graph
   leaf is itself a subscriber (nobody relays to nowhere);
4. **exact coverage** — pushes reach exactly the interested nodes plus
   the interior nodes that forward to them.

Histories interleave subscribe / unsubscribe / substitute (driven both
implicitly by list transitions and explicitly payload-by-payload) and
failure-repair (crashes healed by the Section III-C maintenance flows).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balance import DupBalancer
from repro.core.protocol import StepResult
from repro.net.message import Subscribe, Substitute
from repro.topology import random_search_tree
from repro.topology.tree import SearchTree

from tests.conftest import SyncDupDriver


# -- direct invariant assertions ---------------------------------------------


def assert_branch_uniqueness(driver: SyncDupDriver) -> None:
    """At most one subscriber-list member per downstream branch."""
    tree = driver.tree
    for node in driver.protocol.nodes_with_state():
        branches = set()
        for member in driver.s_list(node):
            if member == node:
                continue
            branch = tree.child_branch(node, member)
            assert branch not in branches, (
                f"node {node} lists two subscribers on branch {branch}: "
                f"{sorted(driver.s_list(node))}"
            )
            branches.add(branch)


def push_edges(driver: SyncDupDriver) -> list[tuple[int, int]]:
    """Directed edges of the push-forwarding graph, from the root down."""
    root = driver.tree.root
    edges = []
    frontier = [root]
    visited = {root}
    while frontier:
        sender = frontier.pop()
        if sender != root and not driver.protocol.in_dup_tree(sender):
            continue
        for target in driver.protocol.push_targets(sender):
            edges.append((sender, target))
            if target not in visited:
                visited.add(target)
                frontier.append(target)
    return edges


def assert_push_graph_acyclic(driver: SyncDupDriver) -> None:
    """Depth-first search over push edges must find no back edge."""
    outgoing: dict[int, list[int]] = {}
    for sender, target in push_edges(driver):
        outgoing.setdefault(sender, []).append(target)
    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[int, int] = {}
    for start in outgoing:
        if color.get(start, WHITE) != WHITE:
            continue
        stack = [(start, iter(outgoing.get(start, ())))]
        color[start] = GREY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                state = color.get(child, WHITE)
                assert state != GREY, (
                    f"push cycle through {child} (path: "
                    f"{[n for n, _ in stack]})"
                )
                if state == WHITE:
                    color[child] = GREY
                    stack.append((child, iter(outgoing.get(child, ()))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()


def assert_interior_shape(driver: SyncDupDriver) -> None:
    """Forwarders fork (>= 2 entries); push-graph leaves are subscribers."""
    edges = push_edges(driver)
    senders = {sender for sender, _ in edges}
    receivers = {target for _, target in edges}
    root = driver.tree.root
    for sender in senders:
        if sender == root:
            continue
        entries = driver.s_list(sender)
        assert len(entries) >= 2, (
            f"interior node {sender} forwards with a single-entry list "
            f"{sorted(entries)}"
        )
    for node in receivers - senders:
        # A push-graph leaf consumes the update itself: it must be an
        # interested subscriber, not a dead-end relay.
        assert driver.protocol.is_subscribed(node), (
            f"push dead-ends at {node}, which is not subscribed"
        )


def assert_exact_coverage(driver: SyncDupDriver) -> None:
    """Pushes reach exactly the interested set plus forwarding interiors."""
    recipients = driver.push_recipients()
    interested = driver.interested - {driver.tree.root}
    assert interested <= recipients, (
        f"interested but unreached: {sorted(interested - recipients)}"
    )
    for extra in recipients - interested:
        assert driver.protocol.in_dup_tree(extra), (
            f"push reaches {extra}, which neither wants nor forwards it"
        )


def assert_all(driver: SyncDupDriver) -> None:
    assert_branch_uniqueness(driver)
    assert_push_graph_acyclic(driver)
    assert_interior_shape(driver)
    assert_exact_coverage(driver)


# -- history generation ------------------------------------------------------

OPS = ("sub", "unsub", "fail", "repair", "join-leaf", "leave")


@st.composite
def history(draw, ops=OPS):
    """A random tree plus an interleaved operation sequence."""
    size = draw(st.integers(3, 32))
    seed = draw(st.integers(0, 2**31))
    steps = draw(
        st.lists(
            st.tuples(st.sampled_from(ops), st.integers(0, 2**31)),
            min_size=1,
            max_size=35,
        )
    )
    return size, seed, steps


def _drive(driver: SyncDupDriver, steps, next_id: int) -> int:
    """Apply an interleaving; ``repair`` re-subscribes after a crash."""
    tree = driver.tree
    for kind, step_seed in steps:
        rng = np.random.default_rng(step_seed)
        non_root = [n for n in tree.nodes if n != tree.root]
        if not non_root:
            continue
        pick = non_root[int(rng.integers(len(non_root)))]
        if kind == "sub":
            driver.subscribe(pick)
        elif kind == "unsub":
            driver.unsubscribe(pick)
        elif kind == "fail" and len(non_root) > 1:
            driver.fail(pick)
        elif kind == "repair" and len(non_root) > 1:
            # Crash a node, then have a surviving interested node renew
            # its subscription — the paper's detect-and-repair sequence.
            driver.fail(pick)
            survivors = [
                n for n in tree.nodes if n != tree.root and n != pick
            ]
            if survivors:
                driver.subscribe(
                    survivors[int(rng.integers(len(survivors)))]
                )
        elif kind == "join-leaf":
            nodes = list(tree.nodes)
            driver.join_leaf(nodes[int(rng.integers(len(nodes)))], next_id)
            next_id += 1
        elif kind == "leave" and len(non_root) > 1:
            driver.leave(pick)
    return next_id


class TestInvariantProperties:
    @given(history())
    @settings(max_examples=120, deadline=None)
    def test_branch_uniqueness_and_acyclicity(self, scenario):
        size, seed, steps = scenario
        tree = random_search_tree(size, 4, np.random.default_rng(seed))
        driver = SyncDupDriver(tree)
        next_id = size
        for i in range(len(steps)):
            next_id = _drive(driver, steps[i : i + 1], next_id)
            assert_branch_uniqueness(driver)
            assert_push_graph_acyclic(driver)

    @given(history())
    @settings(max_examples=120, deadline=None)
    def test_interior_shape_after_history(self, scenario):
        size, seed, steps = scenario
        tree = random_search_tree(size, 4, np.random.default_rng(seed))
        driver = SyncDupDriver(tree)
        _drive(driver, steps, size)
        assert_interior_shape(driver)

    @given(history())
    @settings(max_examples=120, deadline=None)
    def test_push_covers_exactly_interested(self, scenario):
        size, seed, steps = scenario
        tree = random_search_tree(size, 4, np.random.default_rng(seed))
        driver = SyncDupDriver(tree)
        _drive(driver, steps, size)
        assert_exact_coverage(driver)

    @given(history())
    @settings(max_examples=60, deadline=None)
    def test_all_invariants_after_every_step(self, scenario):
        size, seed, steps = scenario
        tree = random_search_tree(size, 4, np.random.default_rng(seed))
        driver = SyncDupDriver(tree)
        next_id = size
        for i in range(len(steps)):
            next_id = _drive(driver, steps[i : i + 1], next_id)
            assert_all(driver)


class TestExplicitSubstitute:
    """Substitute payloads stepped hop-by-hop, not just via the driver."""

    def test_one_to_two_transition_emits_substitute(self, figure2_tree):
        driver = SyncDupDriver(figure2_tree)
        driver.subscribe(7)
        # Node 6 now relays for 7; subscribing 8 takes 6's list from one
        # to two entries, which must swap 6 in for 7 upstream.
        driver.interested.add(8)
        result = driver.protocol.ensure_subscribed(8)
        payloads = list(result.upstream)
        assert payloads and isinstance(payloads[0], Subscribe)
        step = driver.protocol.step(6, payloads[0])
        assert any(
            isinstance(p, Substitute) and (p.old, p.new) == (7, 6)
            for p in step.upstream
        ), f"expected substitute(7, 6), got {step.upstream}"
        # Complete the walk and verify the invariants all hold again.
        driver._walk(6, step.upstream)
        assert_all(driver)
        assert driver.push_recipients() >= {7, 8}

    def test_substitute_chain_through_relays(self, figure2_tree):
        driver = SyncDupDriver(figure2_tree)
        driver.subscribe(8)
        # 5 and 6 both relay the single advertisement "8" up to 3.
        assert driver.s_list(5) == {8} and driver.s_list(3) >= {8}
        driver.interested.add(7)
        result = driver.protocol.ensure_subscribed(7)
        step = driver.protocol.step(6, result.upstream[0])
        substitutes = [p for p in step.upstream if isinstance(p, Substitute)]
        assert substitutes, "junction formation must substitute upstream"
        # Relay 5 holds one entry: it rewrites and forwards unchanged.
        relay = driver.protocol.step(5, substitutes[0])
        assert driver.s_list(5) == {6}
        assert [
            (p.old, p.new)
            for p in relay.upstream
            if isinstance(p, Substitute)
        ] == [(8, 6)]
        driver._walk(5, relay.upstream)
        assert_all(driver)

    def test_mid_flight_substitute_then_completion(self, figure2_tree):
        """Invariants are restored once a paused substitute completes."""
        driver = SyncDupDriver(figure2_tree)
        for node in (4, 7):
            driver.subscribe(node)
        driver.interested.add(8)
        result = driver.protocol.ensure_subscribed(8)
        step = driver.protocol.step(6, result.upstream[0])
        # The substitute is in flight (held, not yet applied upstream);
        # finishing the walk must converge back to a consistent state.
        driver._walk(6, step.upstream)
        assert_all(driver)
        assert driver.push_recipients() >= {4, 7, 8}


# -- dup-balanced: the fanout-capped driver ----------------------------------


class SyncBalancedDriver(SyncDupDriver):
    """:class:`SyncDupDriver` with the ``dup-balanced`` split pipeline.

    Mirrors :class:`~repro.schemes.dup_balanced.DupBalancedScheme` hop by
    hop: every control payload first passes the balancer (delegation
    payloads, delegated-subject routing, redirect relays,
    split-or-refuse), falling through to the plain protocol step; each
    visited node rebalances afterwards.  Point-to-point payloads
    (Delegate / Reclaim / forwarded Substitute) deliver synchronously.
    """

    def __init__(self, tree: SearchTree, cap: int):
        super().__init__(tree)
        self.redirected: dict[int, set[int]] = {}
        self.rejections = 0
        self.balancer = DupBalancer(
            self.protocol,
            cap,
            redirected=self.redirected,
            alive=lambda n: n in self.tree,
            is_root=lambda n: n == self.tree.root,
            send_down=self._deliver,
            on_reject=self._count_reject,
        )

    def _count_reject(self, node: int, subject: int) -> None:
        self.rejections += 1

    def _deliver(self, sender: int, target: int, payload: object) -> None:
        if target not in self.tree:
            return
        self._walk(target, self._apply(target, [payload]))

    def _apply(self, node: int, payloads: list) -> list:
        """One node's control round: balancer pipeline, step, rebalance."""
        upstream: list = []
        for payload in payloads:
            combined = StepResult()
            if not self.balancer.handle(node, payload, combined):
                combined.merge(self.protocol.step(node, payload))
            upstream.extend(combined.upstream)
        extra = self.balancer.rebalance(node)
        if extra is not None:
            upstream.extend(extra.upstream)
        return upstream

    def _walk(self, from_node: int, payloads: list) -> None:
        current = from_node
        pending = list(payloads)
        while pending:
            parent = self.tree.parent(current)
            if parent is None:
                break
            self.control_hops += len(pending)
            pending = self._apply(parent, pending)
            current = parent

    # -- churn: unwind delegation state before repair, re-home after ---------
    def fail(self, node: int) -> None:
        self.interested.discard(node)
        orphans = self.balancer.node_gone(node)
        self.redirected.pop(node, None)
        self.maintenance.node_failed(node)
        self._rehome(orphans, node)

    def leave(self, node: int) -> None:
        self.interested.discard(node)
        parent = self.tree.parent(node)
        orphans = self.balancer.node_gone(node)
        self.redirected.pop(node, None)
        self.maintenance.node_left(node)
        self._rehome(orphans, node)
        # Mirror the scheme: a parent that wholesale-adopted the
        # departed child's list sheds the excess back under its cap.
        if parent is not None and parent in self.tree:
            extra = self.balancer.shed_overflow(parent)
            if extra is not None:
                self._walk(parent, extra.upstream)

    def _rehome(self, orphans: list, dead: int) -> None:
        for delegator, subject in orphans:
            if delegator not in self.tree or subject == dead:
                continue
            if subject not in self.tree or subject == delegator:
                continue
            if subject in self.protocol.s_list(delegator):
                continue
            under_cap = (
                self.balancer.fanout(delegator) < self.balancer.cap
            )
            if delegator == self.tree.root or under_cap:
                result = self.protocol.step(delegator, Subscribe(subject))
                self._walk(delegator, result.upstream)
                continue
            target = self.balancer.choose_delegate(delegator, subject)
            if target is not None:
                self.balancer.delegate(delegator, subject, target)
                continue
            self.redirected.setdefault(delegator, set()).add(subject)
            self._walk(delegator, [Subscribe(subject)])


def assert_capped(driver: SyncBalancedDriver) -> None:
    offenders = driver.balancer.check_caps()
    assert offenders == [], (
        f"cap {driver.balancer.cap} exceeded at {offenders}: "
        f"{[sorted(driver.s_list(n)) for n in offenders]}"
    )


class TestBalancedCapInvariant:
    """Satellite: the fanout cap holds after *any* interleaving."""

    @given(history(), st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_cap_never_exceeded_under_full_interleaving(self, scenario, cap):
        size, seed, steps = scenario
        tree = random_search_tree(size, 4, np.random.default_rng(seed))
        driver = SyncBalancedDriver(tree, cap)
        next_id = size
        for i in range(len(steps)):
            next_id = _drive(driver, steps[i : i + 1], next_id)
            assert_capped(driver)
            assert_push_graph_acyclic(driver)

    @given(history(), st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_coverage_never_drops_under_churn(self, scenario, cap):
        # Delegator failure may leak an entry at its delegate (decays via
        # leases in the engine), so under churn the assertable direction
        # is: every interested survivor still receives pushes.
        size, seed, steps = scenario
        tree = random_search_tree(size, 4, np.random.default_rng(seed))
        driver = SyncBalancedDriver(tree, cap)
        next_id = size
        for i in range(len(steps)):
            next_id = _drive(driver, steps[i : i + 1], next_id)
            reached = driver.push_recipients()
            missing = driver.interested - {tree.root} - reached
            assert not missing, f"interested but unreached: {sorted(missing)}"

    @given(history(ops=("sub", "unsub")), st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_exact_coverage_churn_free(self, scenario, cap):
        # Without churn there are no delegation leaks: the full exact-
        # coverage oracle must hold after every step, cap included.
        size, seed, steps = scenario
        tree = random_search_tree(size, 4, np.random.default_rng(seed))
        driver = SyncBalancedDriver(tree, cap)
        next_id = size
        for i in range(len(steps)):
            next_id = _drive(driver, steps[i : i + 1], next_id)
            assert_capped(driver)
            assert_push_graph_acyclic(driver)
            assert_exact_coverage(driver)

    @given(history(ops=("sub", "unsub")), st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_delegations_drain_with_interest(self, scenario, cap):
        size, seed, steps = scenario
        tree = random_search_tree(size, 4, np.random.default_rng(seed))
        driver = SyncBalancedDriver(tree, cap)
        _drive(driver, steps, size)
        for node in sorted(driver.interested - {tree.root}):
            driver.unsubscribe(node)
        assert driver.balancer.delegated_count() == 0, (
            f"splits survived total drain: "
            f"{ {n: driver.balancer.delegations_of(n) for n in tree.nodes if driver.balancer.delegations_of(n)} }"
        )
        assert driver.push_recipients() == set()
        assert_capped(driver)


class TestBalancedSplitReabsorb:
    """Deterministic split / reabsorb mechanics on a star topology."""

    def star(self, children: int = 6) -> SearchTree:
        # root(1) -> hub(2) -> leaves 3..(2 + children)
        tree = SearchTree(root=1)
        tree.add_leaf(1, 2)
        for leaf in range(3, 3 + children):
            tree.add_leaf(2, leaf)
        return tree

    def test_split_promotes_best_ranked_entry(self):
        driver = SyncBalancedDriver(self.star(), cap=3)
        for leaf in (3, 4, 5):
            driver.subscribe(leaf)
        assert driver.s_list(2) == {3, 4, 5}
        driver.subscribe(6)
        # Hub 2 is capped; entry 3 has the least (fanout, id) rank.
        assert driver.balancer.delegate_for(2, 6) == 3
        assert driver.s_list(3) == {3, 6}
        assert driver.balancer.fanout(2) == 3
        assert driver.balancer.splits == 1
        assert driver.rejections == 0
        # Round-robin by load: the next splits land on 4 then 5.
        driver.subscribe(7)
        driver.subscribe(8)
        assert driver.balancer.delegate_for(2, 7) == 4
        assert driver.balancer.delegate_for(2, 8) == 5
        assert_capped(driver)
        assert_push_graph_acyclic(driver)
        assert_exact_coverage(driver)

    def test_reabsorbed_when_load_drains(self):
        driver = SyncBalancedDriver(self.star(), cap=2)
        for leaf in (3, 4, 5, 6):
            driver.subscribe(leaf)
        assert driver.balancer.delegated_count() == 2
        # Draining the hub's direct entries pulls the delegated subjects
        # back in; the splits dissolve.
        driver.unsubscribe(3)
        driver.unsubscribe(5)
        driver.unsubscribe(4)
        assert driver.balancer.reabsorbed >= 1
        assert driver.balancer.delegated_count() == 0
        assert driver.push_recipients() >= {6}
        assert_capped(driver)
        assert_exact_coverage(driver)
        driver.unsubscribe(6)
        assert driver.push_recipients() == set()

    def test_refusal_fallback_when_no_candidate(self):
        driver = SyncBalancedDriver(self.star(), cap=1)
        driver.subscribe(3)
        driver.subscribe(4)  # split: 3 takes 4
        assert driver.balancer.delegate_for(2, 4) == 3
        driver.subscribe(5)  # 3 is itself capped now: PR-7 refusal
        assert driver.rejections == 1
        assert 5 in driver.redirected.get(2, set())
        # The redirect lands the subject at the root, coverage intact.
        assert driver.s_list(1) >= {5}
        assert driver.push_recipients() >= {3, 4, 5}
        assert_capped(driver)

    def test_delegate_failure_rehomes_orphans(self):
        driver = SyncBalancedDriver(self.star(), cap=2)
        for leaf in (3, 4, 5, 6):
            driver.subscribe(leaf)
        delegate = driver.balancer.delegate_for(2, 5)
        assert delegate is not None
        driver.fail(delegate)
        assert driver.balancer.delegated_count() <= 2
        reached = driver.push_recipients()
        missing = driver.interested - {1} - reached
        assert not missing, f"orphans lost after delegate death: {missing}"
        assert_capped(driver)
        assert_push_graph_acyclic(driver)


class TestFailureRepair:
    @given(st.integers(0, 2**31), st.integers(6, 28))
    @settings(max_examples=80, deadline=None)
    def test_interior_crash_is_repairable(self, seed, size):
        rng = np.random.default_rng(seed)
        tree = random_search_tree(size, 4, rng)
        driver = SyncDupDriver(tree)
        non_root = [n for n in tree.nodes if n != tree.root]
        for node in non_root[:: max(1, len(non_root) // 5)]:
            driver.subscribe(node)
        # Crash one subscribed or forwarding node, repair, re-check.
        candidates = [
            n
            for n in non_root
            if driver.protocol.is_subscribed(n)
            or driver.protocol.in_dup_tree(n)
        ]
        if len(candidates) < 2:
            return
        victim = candidates[int(rng.integers(len(candidates)))]
        driver.fail(victim)
        assert_all(driver)
        # Survivors keep receiving pushes without any extra repair step.
        assert driver.interested - {tree.root} <= driver.push_recipients()
