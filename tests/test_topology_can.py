"""Tests of the CAN overlay and its derived search trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NodeNotFoundError, TopologyError
from repro.topology.can import CanOverlay, Zone, can_hash_point, can_search_tree


class TestZone:
    def test_contains_half_open(self):
        zone = Zone((0.0, 0.0), (0.5, 1.0))
        assert zone.contains((0.0, 0.0))
        assert zone.contains((0.49, 0.99))
        assert not zone.contains((0.5, 0.5))

    def test_center(self):
        assert Zone((0.0, 0.0), (1.0, 0.5)).center() == (0.5, 0.25)

    def test_distance_inside_is_zero(self):
        zone = Zone((0.0,), (1.0,))
        assert zone.distance_to((0.3,)) == 0.0

    def test_distance_outside(self):
        zone = Zone((0.0, 0.0), (1.0, 1.0))
        assert zone.distance_to((2.0, 0.5)) == pytest.approx(1.0)
        assert zone.distance_to((2.0, 2.0)) == pytest.approx(2**0.5)

    def test_split_halves_largest_dimension(self):
        zone = Zone((0.0, 0.0), (1.0, 0.5))
        left, right = zone.split()
        assert left.highs[0] == 0.5
        assert right.lows[0] == 0.5
        assert left.highs[1] == 0.5  # untouched axis

    def test_abuts_face_sharing(self):
        left = Zone((0.0, 0.0), (0.5, 1.0))
        right = Zone((0.5, 0.0), (1.0, 1.0))
        assert left.abuts(right)
        assert right.abuts(left)

    def test_corner_contact_is_not_adjacency(self):
        a = Zone((0.0, 0.0), (0.5, 0.5))
        b = Zone((0.5, 0.5), (1.0, 1.0))
        assert not a.abuts(b)

    def test_separated_zones(self):
        a = Zone((0.0, 0.0), (0.25, 0.25))
        b = Zone((0.75, 0.75), (1.0, 1.0))
        assert not a.abuts(b)

    def test_degenerate_bounds_rejected(self):
        with pytest.raises(TopologyError):
            Zone((0.5,), (0.5,))


class TestCanOverlay:
    def test_single_node_owns_everything(self):
        overlay = CanOverlay.random(1, np.random.default_rng(0))
        assert overlay.owner_of((0.3, 0.7)) == 0
        assert overlay.route(0, (0.9, 0.9)) == [0]

    def test_partition_invariants(self):
        overlay = CanOverlay.random(50, np.random.default_rng(1))
        overlay.validate()
        assert len(overlay) == 50

    def test_every_point_has_exactly_one_owner(self):
        overlay = CanOverlay.random(30, np.random.default_rng(2))
        rng = np.random.default_rng(3)
        for _ in range(100):
            point = tuple(rng.random(2))
            owners = [
                node
                for node in overlay.node_ids
                if overlay.zone(node).contains(point)
            ]
            assert len(owners) == 1

    def test_neighbors_symmetric(self):
        overlay = CanOverlay.random(40, np.random.default_rng(4))
        for node in overlay:
            for neighbor in overlay.neighbors(node):
                assert node in overlay.neighbors(neighbor)

    def test_routing_reaches_owner(self):
        overlay = CanOverlay.random(64, np.random.default_rng(5))
        rng = np.random.default_rng(6)
        for _ in range(30):
            point = tuple(rng.random(2))
            start = int(rng.choice(overlay.node_ids))
            path = overlay.route(start, point)
            assert path[-1] == overlay.owner_of(point)
            assert len(path) == len(set(path))  # no loops

    def test_route_length_scales_subquadratically(self):
        # CAN routes in O(d * n^(1/d)) hops; for d=2, sqrt(n).
        overlay = CanOverlay.random(100, np.random.default_rng(7))
        rng = np.random.default_rng(8)
        lengths = [
            len(overlay.route(int(rng.choice(overlay.node_ids)),
                              tuple(rng.random(2)))) - 1
            for _ in range(40)
        ]
        assert max(lengths) <= 6 * 10  # generous 6*sqrt(n) bound

    def test_three_dimensional_can(self):
        overlay = CanOverlay.random(32, np.random.default_rng(9), dimensions=3)
        overlay.validate()
        path = overlay.route(0, (0.9, 0.9, 0.9))
        assert path[-1] == overlay.owner_of((0.9, 0.9, 0.9))

    def test_key_point_deterministic(self):
        overlay = CanOverlay.random(8, np.random.default_rng(10))
        assert overlay.key_point("abc") == overlay.key_point("abc")
        assert overlay.key_point("abc") != overlay.key_point("abd")
        # Per-axis hashing is prefix-consistent across dimensionalities.
        assert can_hash_point("x", 2) == can_hash_point("x", 3)[:2]
        assert all(0 <= c < 1 for c in can_hash_point("x", 4))

    def test_unknown_node_rejected(self):
        overlay = CanOverlay.random(4, np.random.default_rng(11))
        with pytest.raises(NodeNotFoundError):
            overlay.route(99, (0.5, 0.5))

    def test_invalid_construction(self):
        with pytest.raises(TopologyError):
            CanOverlay.random(0, np.random.default_rng(0))
        with pytest.raises(TopologyError):
            CanOverlay(dimensions=0)


class TestCanSearchTree:
    def test_tree_spans_overlay(self):
        overlay = CanOverlay.random(48, np.random.default_rng(12))
        tree = can_search_tree(overlay, "some-key")
        assert len(tree) == len(overlay)
        tree.validate()
        assert tree.root == overlay.owner_of(overlay.key_point("some-key"))

    def test_tree_parent_is_next_hop(self):
        overlay = CanOverlay.random(32, np.random.default_rng(13))
        point = overlay.key_point("k")
        tree = can_search_tree(overlay, "k")
        for node in overlay:
            if node == tree.root:
                continue
            assert tree.parent(node) == overlay.next_hop(node, point)

    @given(st.integers(2, 60), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_tree_always_valid(self, n, seed):
        overlay = CanOverlay.random(n, np.random.default_rng(seed))
        tree = can_search_tree(overlay, f"key-{seed}")
        tree.validate()
        assert len(tree) == n
