"""Unit tests for the index substrate: versions, caches, authority."""

import pytest

from repro.errors import CacheError, ConfigError
from repro.index import Authority, IndexCache, IndexVersion, KeepAliveTracker
from repro.sim import Environment


def version(v=0, issued=0.0, ttl=3600.0, key=1):
    return IndexVersion(key=key, version=v, issued_at=issued, ttl=ttl)


class TestIndexVersion:
    def test_expiry(self):
        entry = version(issued=100.0, ttl=50.0)
        assert entry.expires_at == 150.0
        assert entry.is_valid(149.0)
        assert not entry.is_valid(150.0)

    def test_remaining(self):
        entry = version(issued=0.0, ttl=10.0)
        assert entry.remaining(4.0) == pytest.approx(6.0)
        assert entry.remaining(20.0) == 0.0

    def test_newer_than(self):
        old = version(v=1)
        new = version(v=2)
        assert new.newer_than(old)
        assert not old.newer_than(new)
        assert old.newer_than(None)

    def test_newer_than_cross_key_rejected(self):
        with pytest.raises(ValueError):
            version(key=1).newer_than(version(key=2))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            version(ttl=0.0)
        with pytest.raises(ValueError):
            version(v=-1)


class TestIndexCache:
    def test_miss_on_empty(self):
        cache = IndexCache()
        assert cache.get(1, now=0.0) is None
        assert cache.stats.lookups == 1
        assert cache.stats.hits == 0

    def test_put_then_hit(self):
        cache = IndexCache()
        assert cache.put(version(), now=0.0)
        assert cache.get(1, now=10.0) is not None
        assert cache.stats.hit_rate == pytest.approx(1.0)

    def test_per_entry_ttl_from_store_time(self):
        # The paper's PCX drawback 1: the copy dies TTL after caching even
        # though the index never changed.
        cache = IndexCache()
        cache.put(version(ttl=100.0), now=50.0)
        assert cache.get(1, now=149.0) is not None
        assert cache.get(1, now=150.0) is None
        assert cache.stats.evictions == 1

    def test_stale_version_can_outlive_reissue(self):
        # The paper's PCX drawback 2: a stale copy keeps serving until its
        # own timer expires.
        cache = IndexCache()
        cache.put(version(v=1, ttl=100.0), now=0.0)
        served = cache.get(1, now=90.0)
        assert served is not None and served.version == 1

    def test_newer_version_replaces(self):
        cache = IndexCache()
        cache.put(version(v=1), now=0.0)
        assert cache.put(version(v=2), now=1.0)
        assert cache.get(1, now=2.0).version == 2

    def test_older_version_rejected(self):
        cache = IndexCache()
        cache.put(version(v=2), now=0.0)
        assert not cache.put(version(v=1), now=1.0)
        assert cache.stats.rejected_stale == 1
        assert cache.get(1, now=2.0).version == 2

    def test_same_version_refreshes_timer(self):
        # This is how pushes keep subscribers warm forever.
        cache = IndexCache()
        cache.put(version(v=1, ttl=100.0), now=0.0)
        cache.put(version(v=1, ttl=100.0), now=90.0)
        assert cache.stats.refreshes == 1
        assert cache.get(1, now=150.0) is not None
        assert cache.get(1, now=191.0) is None

    def test_older_version_accepted_after_expiry(self):
        cache = IndexCache()
        cache.put(version(v=5, ttl=10.0), now=0.0)
        # At t=20 the copy of v5 is expired; even an older version is
        # better than nothing (it restarts a fresh timer).
        assert cache.put(version(v=3, ttl=10.0), now=20.0)
        assert cache.get(1, now=21.0).version == 3

    def test_multiple_keys_independent(self):
        cache = IndexCache()
        cache.put(version(key=1), now=0.0)
        cache.put(version(key=2), now=0.0)
        assert len(cache) == 2
        cache.invalidate(1)
        assert 1 not in cache
        assert 2 in cache

    def test_invalidate_and_clear(self):
        cache = IndexCache()
        assert not cache.invalidate(1)
        cache.put(version(), now=0.0)
        assert cache.invalidate(1)
        cache.put(version(), now=0.0)
        cache.clear()
        assert len(cache) == 0

    def test_put_non_version_rejected(self):
        with pytest.raises(CacheError):
            IndexCache().put("not a version", now=0.0)


class TestAuthority:
    def test_initial_version_issued_at_start(self):
        env = Environment()
        seen = []
        Authority(env, key=7, ttl=100.0, push_lead=10.0, on_new_version=seen.append)
        env.run(until=1.0)
        assert len(seen) == 1
        assert seen[0].version == 0
        assert seen[0].key == 7

    def test_refresh_schedule(self):
        # New version every (ttl - push_lead) seconds.
        env = Environment()
        seen = []
        Authority(env, key=1, ttl=100.0, push_lead=10.0, on_new_version=seen.append)
        env.run(until=275.0)
        assert [v.version for v in seen] == [0, 1, 2, 3]
        assert [v.issued_at for v in seen] == [0.0, 90.0, 180.0, 270.0]

    def test_subscriber_never_observes_gap(self):
        # A copy refreshed at every issue is valid across the boundary.
        env = Environment()
        seen = []
        Authority(env, key=1, ttl=100.0, push_lead=10.0, on_new_version=seen.append)
        env.run(until=500.0)
        for previous, current in zip(seen, seen[1:]):
            assert current.issued_at < previous.expires_at

    def test_force_update_reissues_and_reschedules(self):
        env = Environment()
        seen = []
        authority = Authority(
            env, key=1, ttl=100.0, push_lead=10.0, on_new_version=seen.append
        )

        def forcer(env):
            yield env.timeout(30.0)
            authority.force_update(value="new-host")

        env.process(forcer(env))
        env.run(until=125.0)
        # Issues at t=0 (v0), t=30 forced (v1), then t=120 (v2).
        assert [v.version for v in seen] == [0, 1, 2]
        assert seen[1].value == "new-host"
        assert seen[2].issued_at == pytest.approx(120.0)

    def test_current_property(self):
        env = Environment()
        authority = Authority(env, key=1, ttl=100.0, push_lead=10.0)
        env.run(until=95.0)
        assert authority.current.version == 1

    def test_invalid_parameters(self):
        env = Environment()
        with pytest.raises(ConfigError):
            Authority(env, key=1, ttl=0.0)
        with pytest.raises(ConfigError):
            Authority(env, key=1, ttl=10.0, push_lead=10.0)


class TestKeepAliveTracker:
    def test_alive_after_beacon(self):
        env = Environment()
        tracker = KeepAliveTracker(env, timeout=10.0)
        tracker.beacon(5)
        assert tracker.is_alive(5)
        assert not tracker.is_alive(6)

    def test_host_declared_dead_after_timeout(self):
        env = Environment()
        dead = []
        tracker = KeepAliveTracker(
            env, timeout=10.0, check_interval=1.0, on_host_dead=dead.append
        )
        tracker.beacon(5)
        env.run(until=12.5)
        assert dead == [5]
        assert not tracker.is_alive(5)
        assert tracker.dead_hosts == (5,)

    def test_periodic_beacons_keep_host_alive(self):
        env = Environment()
        dead = []
        tracker = KeepAliveTracker(
            env, timeout=10.0, check_interval=1.0, on_host_dead=dead.append
        )

        def beaconing(env):
            while True:
                tracker.beacon(5)
                yield env.timeout(5.0)

        env.process(beaconing(env))
        env.run(until=100.0)
        assert dead == []
        assert tracker.is_alive(5)

    def test_resurrection(self):
        env = Environment()
        tracker = KeepAliveTracker(env, timeout=10.0, check_interval=1.0)

        def script(env):
            tracker.beacon(5)
            yield env.timeout(20.0)
            assert not tracker.is_alive(5)
            tracker.beacon(5)
            assert tracker.is_alive(5)

        process = env.process(script(env))
        env.run(until=process)

    def test_forget(self):
        env = Environment()
        tracker = KeepAliveTracker(env, timeout=10.0)
        tracker.beacon(5)
        tracker.forget(5)
        assert not tracker.is_alive(5)
        assert tracker.tracked_hosts == ()

    def test_dead_callback_fires_once(self):
        env = Environment()
        dead = []
        tracker = KeepAliveTracker(
            env, timeout=5.0, check_interval=1.0, on_host_dead=dead.append
        )
        tracker.beacon(1)
        env.run(until=30.0)
        assert dead == [1]

    def test_invalid_parameters(self):
        env = Environment()
        with pytest.raises(ConfigError):
            KeepAliveTracker(env, timeout=0.0)
        with pytest.raises(ConfigError):
            KeepAliveTracker(env, timeout=5.0, check_interval=0.0)


class TestHostRegistry:
    def make(self, ttl=100.0, push_lead=10.0, timeout=30.0):
        from repro.index.registry import HostRegistry

        env = Environment()
        versions = []
        authority = Authority(
            env, key=1, ttl=ttl, push_lead=push_lead,
            on_new_version=versions.append,
        )
        registry = HostRegistry(
            env, authority, keepalive_timeout=timeout, check_interval=5.0
        )
        env.run(until=0.0)  # initial version issued
        return env, authority, registry, versions

    def test_register_reissues_index(self):
        env, authority, registry, versions = self.make()
        assert registry.register_host(7)
        assert authority.current.value == (7,)
        assert registry.update_count == 1
        assert not registry.register_host(7)  # idempotent
        assert registry.update_count == 1

    def test_unregister_reissues(self):
        env, authority, registry, versions = self.make()
        registry.register_host(7)
        registry.register_host(9)
        assert registry.unregister_host(7)
        assert authority.current.value == (9,)
        assert not registry.unregister_host(7)

    def test_value_is_sorted_host_set(self):
        env, authority, registry, _ = self.make()
        registry.register_host(9)
        registry.register_host(3)
        assert registry.current_value() == (3, 9)
        assert authority.current.value == (3, 9)

    def test_silent_host_removed_and_reissued(self):
        env, authority, registry, versions = self.make(timeout=30.0)

        def beacons(env):
            # Host 7 beacons for 100 s then goes silent; host 9 forever.
            while True:
                if env.now <= 100.0:
                    registry.beacon(7)
                registry.beacon(9)
                yield env.timeout(10.0)

        env.process(beacons(env))
        env.run(until=200.0)
        assert registry.hosts == {9}
        assert authority.current.value == (9,)

    def test_beacon_from_unknown_host_registers(self):
        env, authority, registry, _ = self.make()
        registry.beacon(42)
        assert 42 in registry.hosts
        assert authority.current.value == (42,)

    def test_updates_propagate_through_schedule(self):
        env, authority, registry, versions = self.make(
            ttl=100.0, push_lead=10.0, timeout=1000.0
        )
        registry.register_host(1)
        env.run(until=95.0)
        # t=0 initial, t~0 forced (register), then rescheduled at +90.
        assert [v.version for v in versions] == [0, 1, 2]
        assert versions[-1].value == (1,)
