"""Tests of the time-series monitor and its engine integration."""

import math

import pytest

from repro.engine import Simulation, SimulationConfig
from repro.errors import ConfigError
from repro.sim import Environment
from repro.sim.monitor import Monitor, Series


class TestSeries:
    def test_append_and_iterate(self):
        series = Series("x")
        series.append(1.0, 10.0)
        series.append(2.0, 20.0)
        assert series.times == (1.0, 2.0)
        assert series.values == (10.0, 20.0)
        assert len(series) == 2
        samples = list(series)
        assert samples[0].time == 1.0
        assert samples[1].value == 20.0

    def test_time_ordering_enforced(self):
        series = Series("x")
        series.append(5.0, 1.0)
        with pytest.raises(ConfigError):
            series.append(4.0, 1.0)

    def test_last_and_summaries(self):
        series = Series("x")
        assert series.last is None
        assert math.isnan(series.mean())
        series.append(0.0, 2.0)
        series.append(1.0, 4.0)
        assert series.last.value == 4.0
        assert series.mean() == pytest.approx(3.0)
        assert series.minimum() == 2.0
        assert series.maximum() == 4.0

    def test_window(self):
        series = Series("x")
        for t in range(10):
            series.append(float(t), float(t))
        clipped = series.window(3.0, 6.0)
        assert clipped.times == (3.0, 4.0, 5.0, 6.0)

    def test_stability_detection(self):
        stable = Series("s")
        for t in range(20):
            stable.append(float(t), 100.0 + (t % 2))
        assert stable.is_stable(tolerance=0.05)
        ramp = Series("r")
        for t in range(20):
            ramp.append(float(t), float(t) * 10)
        assert not ramp.is_stable(tolerance=0.05)

    def test_stability_needs_samples(self):
        series = Series("x")
        series.append(0.0, 1.0)
        assert not series.is_stable()


class TestMonitor:
    def test_samples_on_cadence(self):
        env = Environment()
        monitor = Monitor(env, interval=10.0)
        series = monitor.probe("clock", lambda: env.now)
        env.run(until=35.0)
        assert series.times == (10.0, 20.0, 30.0)
        assert series.values == (10.0, 20.0, 30.0)

    def test_start_at(self):
        env = Environment()
        monitor = Monitor(env, interval=10.0, start_at=5.0)
        series = monitor.probe("x", lambda: 1.0)
        env.run(until=26.0)
        assert series.times == (5.0, 15.0, 25.0)

    def test_multiple_probes_share_cadence(self):
        env = Environment()
        monitor = Monitor(env, interval=10.0)
        ones = monitor.probe("one", lambda: 1.0)
        twos = monitor.probe("two", lambda: 2.0)
        env.run(until=21.0)
        assert len(ones) == len(twos) == 2
        assert monitor.names == ("one", "two")

    def test_duplicate_probe_rejected(self):
        monitor = Monitor(Environment(), interval=1.0)
        monitor.probe("x", lambda: 0.0)
        with pytest.raises(ConfigError):
            monitor.probe("x", lambda: 0.0)

    def test_unknown_series_rejected(self):
        with pytest.raises(ConfigError):
            Monitor(Environment(), interval=1.0).series("nope")

    def test_invalid_interval(self):
        with pytest.raises(ConfigError):
            Monitor(Environment(), interval=0.0)

    def test_sample_now(self):
        env = Environment()
        monitor = Monitor(env, interval=100.0)
        series = monitor.probe("x", lambda: 42.0)
        monitor.sample_now()
        assert series.values == (42.0,)


class TestSeriesRetention:
    """The unbounded-growth fix: Series.max_samples sliding window."""

    def test_keeps_only_the_newest_samples(self):
        series = Series("x", max_samples=3)
        for t in range(10):
            series.append(float(t), float(t * 2))
        assert len(series) == 3
        assert series.times == (7.0, 8.0, 9.0)
        assert series.values == (14.0, 16.0, 18.0)
        assert series.total_appended == 10
        assert series.last.value == 18.0

    def test_unbounded_by_default(self):
        series = Series("x")
        for t in range(5000):
            series.append(float(t), 1.0)
        assert len(series) == 5000
        assert series.max_samples is None

    def test_max_samples_validated(self):
        with pytest.raises(ConfigError):
            Series("x", max_samples=0)

    def test_window_inherits_the_bound(self):
        series = Series("x", max_samples=4)
        for t in range(10):
            series.append(float(t), float(t))
        clipped = series.window(6.0, 9.0)
        assert clipped.max_samples == 4
        assert clipped.times == (6.0, 7.0, 8.0, 9.0)

    def test_monitor_probes_are_bounded_by_default(self):
        env = Environment()
        monitor = Monitor(env, interval=1.0)
        series = monitor.probe("x", lambda: env.now)
        assert series.max_samples == Monitor.DEFAULT_MAX_SAMPLES
        env.run(until=float(Monitor.DEFAULT_MAX_SAMPLES + 100))
        assert len(series) == Monitor.DEFAULT_MAX_SAMPLES
        assert series.total_appended > Monitor.DEFAULT_MAX_SAMPLES

    def test_monitor_bound_is_configurable(self):
        env = Environment()
        monitor = Monitor(env, interval=1.0, max_samples=5)
        series = monitor.probe("x", lambda: env.now)
        env.run(until=20.0)
        assert len(series) == 5
        unbounded = Monitor(Environment(), interval=1.0, max_samples=None)
        assert unbounded.probe("y", lambda: 0.0).max_samples is None


class TestEngineIntegration:
    def test_probe_observes_simulation(self):
        config = SimulationConfig(
            scheme="dup",
            num_nodes=64,
            query_rate=2.0,
            duration=3600.0 * 4,
            warmup=3600.0,
            seed=5,
        )
        sim = Simulation(config)
        series = sim.add_probe(
            "subscribed",
            lambda: float(len(sim.scheme.subscribed_nodes())),
            interval=1800.0,
        )
        sim.run()
        assert len(series) >= 6
        # Subscribers appear once interest accumulates.
        assert series.maximum() > 0

    def test_standard_probes(self):
        config = SimulationConfig(
            scheme="dup",
            num_nodes=64,
            query_rate=2.0,
            duration=3600.0 * 3,
            warmup=3600.0,
            seed=6,
        )
        sim = Simulation(config)
        probes = sim.add_standard_probes(interval=1800.0)
        sim.run()
        assert {"hit_rate", "mean_latency", "population", "subscribed",
                "dup_tree_size"} <= set(probes)
        assert probes["population"].last.value == 64.0
        assert 0 <= probes["hit_rate"].last.value <= 1

    def test_subscriber_count_stabilizes(self):
        # After warm-up the interested set under a stationary workload
        # settles into a band (flapping only at the threshold boundary).
        config = SimulationConfig(
            scheme="dup",
            num_nodes=128,
            query_rate=5.0,
            duration=3600.0 * 8,
            warmup=3600.0,
            seed=7,
        )
        sim = Simulation(config)
        series = sim.add_probe(
            "subscribed",
            lambda: float(len(sim.scheme.subscribed_nodes())),
            interval=900.0,
        )
        sim.run()
        tail = series.window(3600.0 * 4, 3600.0 * 8)
        assert tail.minimum() > 0
        spread = (tail.maximum() - tail.minimum()) / max(tail.mean(), 1.0)
        assert spread < 0.6
