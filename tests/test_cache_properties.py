"""Model-based property tests for the TTL index cache.

Hypothesis drives random interleavings of stores, lookups, invalidations,
and time advances against a brutally simple reference model; the cache
must agree with the model on every lookup.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.cache import IndexCache
from repro.index.entry import IndexVersion


class ReferenceCache:
    """The obvious-by-inspection model: dict of (version, expiry)."""

    def __init__(self):
        self.entries = {}

    def put(self, version, now):
        current = self.entries.get(version.key)
        if current is not None and now < current[1]:
            if version.version < current[0].version:
                return
        self.entries[version.key] = (version, now + version.ttl)

    def get(self, key, now):
        entry = self.entries.get(key)
        if entry is None:
            return None
        version, expires = entry
        if now >= expires:
            del self.entries[key]
            return None
        return version

    def invalidate(self, key):
        self.entries.pop(key, None)


@st.composite
def operation_sequences(draw):
    count = draw(st.integers(1, 60))
    operations = []
    for _ in range(count):
        kind = draw(st.sampled_from(["put", "get", "invalidate", "advance"]))
        key = draw(st.integers(1, 3))
        if kind == "put":
            # A version's TTL is part of the version (immutable in the
            # real system), so derive it from the version number.
            number = draw(st.integers(0, 5))
            operations.append(("put", key, number, 5.0 + 7.0 * number))
        elif kind == "advance":
            operations.append(("advance", draw(st.floats(0.0, 40.0))))
        else:
            operations.append((kind, key))
    return operations


class TestCacheAgainstModel:
    @given(operation_sequences())
    @settings(max_examples=300, deadline=None)
    def test_lookups_agree_with_reference(self, operations):
        cache = IndexCache()
        model = ReferenceCache()
        now = 0.0
        for operation in operations:
            if operation[0] == "put":
                _, key, number, ttl = operation
                version = IndexVersion(
                    key=key, version=number, issued_at=now, ttl=ttl
                )
                cache.put(version, now)
                model.put(version, now)
            elif operation[0] == "advance":
                now += operation[1]
            elif operation[0] == "invalidate":
                cache.invalidate(operation[1])
                model.invalidate(operation[1])
            else:  # get
                key = operation[1]
                ours = cache.get(key, now)
                reference = model.get(key, now)
                if reference is None:
                    assert ours is None
                else:
                    assert ours is not None
                    assert ours.version == reference.version

    @given(operation_sequences())
    @settings(max_examples=100, deadline=None)
    def test_stats_are_consistent(self, operations):
        cache = IndexCache()
        now = 0.0
        for operation in operations:
            if operation[0] == "put":
                _, key, number, ttl = operation
                cache.put(
                    IndexVersion(key=key, version=number, issued_at=now, ttl=ttl),
                    now,
                )
            elif operation[0] == "advance":
                now += operation[1]
            elif operation[0] == "invalidate":
                cache.invalidate(operation[1])
            else:
                cache.get(operation[1], now)
        stats = cache.stats
        assert stats.hits <= stats.lookups
        assert len(cache) <= stats.stores
        assert stats.evictions >= 0
