"""Unit and property tests for the Chord ring and derived search trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NodeNotFoundError, TopologyError
from repro.topology import ChordRing, chord_search_tree
from repro.topology.chord import chord_hash, _in_interval


class TestIntervals:
    def test_plain_interval(self):
        assert _in_interval(5, 3, 8, 16)
        assert _in_interval(8, 3, 8, 16)
        assert not _in_interval(3, 3, 8, 16)
        assert not _in_interval(9, 3, 8, 16)

    def test_wrapping_interval(self):
        assert _in_interval(15, 12, 4, 16)
        assert _in_interval(2, 12, 4, 16)
        assert not _in_interval(8, 12, 4, 16)

    def test_full_circle(self):
        assert _in_interval(7, 5, 5, 16)


class TestChordRing:
    def test_successor_wraps(self):
        ring = ChordRing([2, 8, 14], bits=4)
        assert ring.successor(3) == 8
        assert ring.successor(8) == 8
        assert ring.successor(15) == 2  # wraps past the top

    def test_predecessor(self):
        ring = ChordRing([2, 8, 14], bits=4)
        assert ring.predecessor(8) == 2
        assert ring.predecessor(2) == 14

    def test_finger_table_definition(self):
        ring = ChordRing([2, 8, 14], bits=4)
        fingers = ring.finger_table(2)
        expected = [ring.successor((2 + 2**k) % 16) for k in range(4)]
        assert list(fingers) == expected

    def test_single_node_ring(self):
        ring = ChordRing([5], bits=4)
        assert ring.successor(0) == 5
        assert ring.lookup_path(5, 11) == [5]

    def test_lookup_reaches_owner(self):
        ring = ChordRing.random(64, np.random.default_rng(0), bits=16)
        for key in (0, 1234, 65535, 40000):
            path = ring.lookup_path(ring.node_ids[0], key)
            assert path[-1] == ring.successor(key)

    def test_lookup_is_logarithmic(self):
        rng = np.random.default_rng(1)
        ring = ChordRing.random(256, rng, bits=32)
        lengths = [
            ring.path_length(int(start), int(rng.integers(0, 1 << 32)))
            for start in rng.choice(ring.node_ids, size=50)
        ]
        # O(log n): 256 nodes -> expect ~8 hops, allow generous slack.
        assert max(lengths) <= 2 * 8 + 4

    def test_duplicate_ids_collapse(self):
        ring = ChordRing([3, 3, 9], bits=4)
        assert len(ring) == 2

    def test_invalid_ids_rejected(self):
        with pytest.raises(TopologyError):
            ChordRing([17], bits=4)
        with pytest.raises(TopologyError):
            ChordRing([], bits=4)

    def test_unknown_node_rejected(self):
        ring = ChordRing([2, 8], bits=4)
        with pytest.raises(NodeNotFoundError):
            ring.lookup_path(5, 0)

    def test_from_labels_deterministic(self):
        first = ChordRing.from_labels(["a", "b", "c"], bits=16)
        second = ChordRing.from_labels(["a", "b", "c"], bits=16)
        assert first.node_ids == second.node_ids

    def test_chord_hash_range(self):
        for label in ("x", "yy", "zzz"):
            assert 0 <= chord_hash(label, 8) < 256

    def test_random_ring_distinct_ids(self):
        ring = ChordRing.random(100, np.random.default_rng(3), bits=16)
        assert len(ring) == 100

    def test_random_too_many_nodes_rejected(self):
        with pytest.raises(TopologyError):
            ChordRing.random(20, np.random.default_rng(0), bits=4)


class TestChordSearchTree:
    def test_tree_spans_ring(self):
        ring = ChordRing.random(128, np.random.default_rng(4), bits=24)
        tree = chord_search_tree(ring, key=12345)
        assert len(tree) == len(ring)
        assert tree.root == ring.successor(12345)
        tree.validate()

    def test_tree_parent_is_next_hop(self):
        ring = ChordRing.random(64, np.random.default_rng(5), bits=20)
        key = 999
        tree = chord_search_tree(ring, key)
        for node in ring:
            if node == tree.root:
                continue
            assert tree.parent(node) == ring.next_hop(node, key)

    def test_tree_paths_match_lookup_paths(self):
        ring = ChordRing.random(64, np.random.default_rng(6), bits=20)
        key = 31337
        tree = chord_search_tree(ring, key)
        for node in list(ring)[:10]:
            assert tree.path_to_root(node) == ring.lookup_path(node, key)

    @given(st.integers(2, 100), st.integers(0, 2**31), st.integers(0, 2**20))
    @settings(max_examples=30, deadline=None)
    def test_tree_always_valid(self, n, seed, key):
        ring = ChordRing.random(n, np.random.default_rng(seed), bits=24)
        tree = chord_search_tree(ring, key)
        tree.validate()
        assert len(tree) == len(ring)
