"""Tests of the runtime consistency auditor (detect, confirm, repair)."""

from __future__ import annotations

from repro.core.auditor import ConsistencyAuditor
from repro.net.message import RefreshSubscribe, Unsubscribe
from repro.topology.tree import SearchTree

from tests.conftest import SyncDupDriver


def make_driver():
    """A small tree with a spine and two side branches.

        0 -- 1 -- 2 -- 3
             |
             4         (and 5 directly under the root)
        0 -- 5
    """
    tree = SearchTree(0)
    tree.add_leaf(0, 1)
    tree.add_leaf(1, 2)
    tree.add_leaf(2, 3)
    tree.add_leaf(1, 4)
    tree.add_leaf(0, 5)
    return SyncDupDriver(tree)


def make_auditor(driver, confirm=1, clock=None):
    return ConsistencyAuditor(
        driver.protocol,
        driver.tree,
        clock=clock or (lambda: 0.0),
        emit=driver._emit,
        confirm_sweeps=confirm,
    )


def kinds(violations):
    return sorted({v.kind for v in violations})


class TestCleanState:
    def test_empty_state_is_clean(self):
        driver = make_driver()
        auditor = make_auditor(driver)
        assert auditor.sweep() == []
        assert auditor.clean_sweeps == 1
        assert auditor.total_violations == 0

    def test_live_subscriptions_are_clean(self):
        driver = make_driver()
        for node in (3, 4, 5):
            driver.subscribe(node)
        auditor = make_auditor(driver)
        assert auditor.sweep() == []
        assert driver.push_recipients() >= {3, 4, 5}


class TestDetectAndRepair:
    def test_dangling_entries_excised(self):
        driver = make_driver()
        driver.subscribe(3)
        # Node 3 vanishes from the overlay behind the protocol's back
        # (a lost failure notification): 2, 1, and 0 still list it.
        driver.tree.remove_leaf(3)
        driver.protocol.drop_node(3)
        auditor = make_auditor(driver)
        confirmed = auditor.sweep()
        # The relic entries are dangling; the push edge into the departed
        # node is simultaneously a dead-end leaf.  Both get repaired.
        assert kinds(confirmed) == ["dangling-entry", "dead-end"]
        assert auditor.sweep() == []
        assert driver.protocol.nodes_with_state() == ()

    def test_orphaned_subscriber_rewalked(self):
        driver = make_driver()
        driver.subscribe(3)
        # A partitioned unsubscribe wiped the upstream entries while 3
        # still believes it is subscribed: pushes no longer reach it.
        for node in (0, 1, 2):
            driver.protocol.step(node, Unsubscribe(3))
        assert 3 not in driver.push_recipients()
        auditor = make_auditor(driver)
        confirmed = auditor.sweep()
        assert kinds(confirmed) == ["orphan"]
        # The repair re-walked the subscription end to end.
        assert 3 in driver.push_recipients()
        assert auditor.sweep() == []

    def test_split_brain_pusher_excised(self):
        driver = make_driver()
        driver.subscribe(3)
        driver.subscribe(4)
        # A raced promotion left the root pushing straight at 3 while
        # node 1 (the legitimate interior) also pushes to it.
        driver.protocol.s_list(0).add(3)
        auditor = make_auditor(driver)
        confirmed = auditor.sweep()
        assert "split-brain" in kinds(confirmed)
        for _ in range(3):
            if not auditor.sweep():
                break
        assert auditor.last_violations == ()
        assert driver.push_recipients() >= {3, 4}

    def test_stray_entry_excised_and_subscriber_kept(self):
        driver = make_driver()
        driver.subscribe(3)
        # Node 5 lives under the root, not under 1: a relic of tree
        # surgery that re-homed 5 without cleaning 1's list.
        driver.protocol.s_list(1).add(5)
        auditor = make_auditor(driver)
        confirmed = auditor.sweep()
        assert kinds(confirmed) == ["stray-entry"]
        assert auditor.sweep() == []
        assert 3 in driver.push_recipients()

    def test_branch_conflict_keeps_the_advertised_entry(self):
        driver = make_driver()
        driver.subscribe(3)
        # Node 1 lists both 3 (what branch child 2 advertises) and 2
        # itself — a relic a lost substitute leaves behind.  The repair
        # must excise the relic (2), never the advertised entry (3).
        driver.protocol.s_list(1).add(2)
        auditor = make_auditor(driver)
        confirmed = auditor.sweep()
        assert kinds(confirmed) == ["branch-conflict"]
        assert confirmed[0].subject == 2
        for _ in range(3):
            if not auditor.sweep():
                break
        assert auditor.last_violations == ()
        assert 3 in driver.push_recipients()

    def test_dead_end_leaf_cut(self):
        driver = make_driver()
        driver.subscribe(3)
        # 3 lost interest but its unsubscribe never got out: everyone
        # upstream still pushes at a node that wants nothing.
        driver.interested.discard(3)
        driver.protocol.s_list(3).discard(3)
        auditor = make_auditor(driver)
        confirmed = auditor.sweep()
        assert "dead-end" in kinds(confirmed)
        for _ in range(4):
            if not auditor.sweep():
                break
        assert auditor.last_violations == ()
        assert 3 not in driver.push_recipients()

    def test_push_cycle_cut_and_state_reconverges(self):
        driver = make_driver()
        driver.subscribe(3)
        # Hand-corrupt the lists into a 1 <-> 2 push cycle.
        lists = driver.protocol
        lists.s_list(0).discard(3)
        lists.s_list(0).add(1)
        lists.s_list(1).add(2)
        lists.s_list(2).add(1)
        auditor = make_auditor(driver)
        confirmed = auditor.sweep()
        assert "push-cycle" in kinds(confirmed)
        for _ in range(6):
            if not auditor.sweep():
                break
        assert auditor.last_violations == ()
        # The legitimate subscriber survived the surgery.
        assert 3 in driver.push_recipients()


class TestConfirmation:
    def test_single_sighting_is_only_a_suspicion(self):
        driver = make_driver()
        driver.subscribe(3)
        for node in (0, 1, 2):
            driver.protocol.step(node, Unsubscribe(3))
        auditor = make_auditor(driver, confirm=2)
        assert auditor.sweep() == []  # suspicion, no repair yet
        assert 3 not in driver.push_recipients()
        confirmed = auditor.sweep()  # persisted: confirm and repair
        assert kinds(confirmed) == ["orphan"]
        assert 3 in driver.push_recipients()

    def test_transient_finding_never_confirms(self):
        driver = make_driver()
        driver.subscribe(3)
        for node in (0, 1, 2):
            driver.protocol.step(node, Unsubscribe(3))
        auditor = make_auditor(driver, confirm=2)
        assert auditor.sweep() == []
        # The "in-flight" refresh lands between sweeps: the suspicion
        # must evaporate instead of triggering a repair.
        driver._emit(3, RefreshSubscribe(3))
        assert auditor.sweep() == []
        assert auditor.total_violations == 0
        assert auditor.repairs == 0


class TestMetrics:
    def test_divergence_and_reconvergence_windows(self):
        driver = make_driver()
        driver.subscribe(3)
        now = [0.0]
        auditor = make_auditor(driver, clock=lambda: now[0])
        now[0] = 10.0
        auditor.note_disruption("partition")
        for node in (0, 1, 2):
            driver.protocol.step(node, Unsubscribe(3))
        now[0] = 20.0
        auditor.sweep()  # dirty: repairs fire
        now[0] = 30.0
        auditor.sweep()  # clean again
        assert auditor.divergence_windows == [10.0]
        assert auditor.reconvergence_times == [20.0]
        summary = auditor.summary()
        assert summary["audit_reconvergence_max"] == 20.0
        assert summary["audit_divergence_max"] == 10.0
        assert summary["audit_orphan"] == 1

    def test_summary_counts_sweeps(self):
        driver = make_driver()
        auditor = make_auditor(driver)
        auditor.sweep()
        auditor.sweep()
        summary = auditor.summary()
        assert summary["audit_sweeps"] == 2
        assert summary["audit_clean_sweeps"] == 2
        assert summary["audit_violations"] == 0

    def test_repair_traffic_is_charged(self):
        driver = make_driver()
        driver.subscribe(3)
        for node in (0, 1, 2):
            driver.protocol.step(node, Unsubscribe(3))
        before = driver.control_hops
        auditor = make_auditor(driver)
        auditor.sweep()
        assert driver.control_hops > before


class TestEmitPayloads:
    def test_orphan_repair_emits_refresh_subscribe(self):
        driver = make_driver()
        driver.subscribe(3)
        for node in (0, 1, 2):
            driver.protocol.step(node, Unsubscribe(3))
        emitted = []
        auditor = ConsistencyAuditor(
            driver.protocol,
            driver.tree,
            clock=lambda: 0.0,
            emit=lambda node, payload: emitted.append((node, payload)),
            confirm_sweeps=1,
        )
        auditor.sweep()
        assert emitted == [(3, RefreshSubscribe(3))]
