"""Tests of the fault-injection layer (plans, injector, transport hooks)."""

import json
import math

import pytest

from repro.engine import Simulation, SimulationConfig
from repro.errors import ConfigError
from repro.net.faults import FaultInjector, FaultPlan
from repro.net.message import Category, ControlMessage, QueryMessage, Subscribe
from repro.sim.rng import RandomStreams
from repro.workload.churn import ChurnConfig


def chain_sim(scheme="dup", **overrides):
    defaults = dict(
        scheme=scheme,
        num_nodes=6,
        topology="chain",
        hop_latency_mean=0.001,
        duration=50_000.0,
        warmup=0.0,
        threshold_c=1,
        seed=1,
    )
    defaults.update(overrides)
    sim = Simulation(SimulationConfig(**defaults))
    sim.start()
    sim.env.run(until=0.0)
    return sim


class TestFaultPlan:
    def test_disabled_by_default(self):
        plan = FaultPlan()
        assert not plan.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(loss_rate=0.1),
            dict(loss_by_category={"control": 0.5}),
            dict(duplicate_rate=0.2),
            dict(extra_delay_mean=0.05),
            dict(silent_failures=True),
        ],
    )
    def test_any_fault_enables(self, kwargs):
        assert FaultPlan(**kwargs).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(loss_rate=-0.1),
            dict(loss_rate=1.5),
            dict(duplicate_rate=2.0),
            dict(loss_by_category={"control": -1.0}),
            dict(loss_by_category={"nonsense": 0.5}),
            dict(extra_delay_mean=-1.0),
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            FaultPlan(**kwargs)

    def test_category_override_falls_back_to_global(self):
        plan = FaultPlan(loss_rate=0.2, loss_by_category={"control": 0.7})
        assert plan.loss_probability(Category.CONTROL) == 0.7
        assert plan.loss_probability(Category.QUERY) == 0.2


class TestFaultInjector:
    def make(self, plan, seed=1):
        return FaultInjector(plan, RandomStreams(seed), clock=lambda: 0.0)

    def test_certain_loss_drops_everything(self):
        injector = self.make(FaultPlan(loss_rate=1.0))
        query = QueryMessage(key=0, origin=5)
        assert all(injector.should_drop(query) for _ in range(50))
        assert injector.injected_losses == 50

    def test_loss_respects_category(self):
        plan = FaultPlan(loss_by_category={"control": 1.0})
        injector = self.make(plan)
        control = ControlMessage(key=0, payloads=[Subscribe(5)], sender=5)
        assert injector.should_drop(control)
        assert not injector.should_drop(QueryMessage(key=0, origin=5))

    def test_queries_and_replies_never_duplicated(self):
        # In-flight query/reply packets are mutated while forwarding
        # (path, position): a duplicated delivery would alias live state.
        injector = self.make(FaultPlan(duplicate_rate=1.0))
        assert not injector.should_duplicate(QueryMessage(key=0, origin=5))
        control = ControlMessage(key=0, payloads=[Subscribe(5)], sender=5)
        assert injector.should_duplicate(control)
        assert injector.injected_duplicates == 1

    def test_detection_latency_reported_once(self):
        now = [0.0]
        injector = FaultInjector(
            FaultPlan(silent_failures=True),
            RandomStreams(1),
            clock=lambda: now[0],
        )
        injector.mark_failed(9)
        assert injector.is_dead(9)
        assert injector.undetected() == (9,)
        now[0] = 42.0
        assert injector.mark_detected(9) == 42.0
        assert injector.mark_detected(9) is None  # only the first report
        assert injector.undetected() == ()
        assert injector.mark_detected(7) is None  # never failed


class TestTransportFaults:
    def test_injected_query_loss_attributed_and_counted(self):
        sim = chain_sim(
            "pcx", faults=FaultPlan(loss_by_category={"query": 1.0})
        )
        drops = []
        sim.transport.add_observer(
            lambda e: drops.append(e) if e.kind == "drop" else None
        )
        sim.scheme.on_local_query(5)
        sim.env.run(until=10.0)
        # Satellite: the drop event names the link the message died on.
        assert len(drops) == 1
        event = drops[0]
        assert event.reason == "loss"
        assert event.destination == 4
        assert event.sender == 5
        assert sim.injector.injected_losses == 1
        # A lost query never completes.
        assert sim._incomplete == 1
        assert sim.latency.count == 0

    def test_blackhole_swallows_traffic_of_silent_failures(self):
        sim = chain_sim("pcx", faults=FaultPlan(silent_failures=True))
        drops = []
        sim.transport.add_observer(
            lambda e: drops.append(e) if e.kind == "drop" else None
        )
        sim.fail_silently(3)
        assert sim.alive(3)  # still an overlay member...
        assert not sim.functioning(3)  # ...but not responding
        sim.scheme.on_local_query(5)
        sim.env.run(until=1.0)
        blackholes = [e for e in drops if e.reason == "blackhole"]
        assert len(blackholes) == 1
        assert blackholes[0].destination == 3
        assert blackholes[0].sender == 4
        assert sim.injector.blackholed == 1

    def test_duplicated_control_charged_once_delivered_twice(self):
        sim = chain_sim(
            "dup",
            faults=FaultPlan(duplicate_rate=1.0),
            piggyback=False,
            immediate_push=False,
        )
        delivered = []
        sim.transport.add_observer(
            lambda e: delivered.append(e) if e.kind == "deliver" else None
        )
        hops_before = sim.ledger.hops(Category.CONTROL)
        sim.scheme.on_local_query(5)  # miss -> explicit subscribe walk
        sim.env.run(until=10.0)
        controls = [
            e
            for e in delivered
            if e.message.category is Category.CONTROL
        ]
        # Each control hop arrives twice but is charged once.
        assert len(controls) == 2 * (
            sim.ledger.hops(Category.CONTROL) - hops_before
        )

    def test_drop_events_without_injector_carry_link(self):
        # Satellite: churn drops used to emit destination=None events.
        sim = chain_sim("pcx")
        drops = []
        sim.transport.add_observer(
            lambda e: drops.append(e) if e.kind == "drop" else None
        )
        message = QueryMessage(key=sim.key, origin=5)
        message.path.append(4)
        sim.transport.drop(message, destination=3)
        assert drops[0].destination == 3
        assert drops[0].sender == 4  # derived from the query path
        assert drops[0].reason == "churn"


class TestTimeoutSuspicion:
    def test_dead_relay_detected_by_query_timeout(self):
        sim = chain_sim(
            "pcx",
            faults=FaultPlan(silent_failures=True),
            retry_budget=0,
            ack_timeout=2.0,
        )
        sim.fail_silently(3)
        sim.scheme.on_local_query(5)
        sim.env.run(until=1.0)
        assert 3 in sim.tree  # not yet suspected
        sim.env.run(until=10.0)  # past the request timeout
        assert 3 not in sim.tree  # suspicion triggered the repair splice
        assert sim.injector.detected_count == 1


def _resilient_config(seed=1):
    return SimulationConfig(
        scheme="dup",
        num_nodes=64,
        query_rate=2.0,
        ttl=600.0,
        push_lead=60.0,
        duration=3000.0,
        warmup=600.0,
        threshold_c=2,
        seed=seed,
        churn=ChurnConfig(join_rate=0.01, fail_rate=0.01),
        faults=FaultPlan(
            loss_by_category={"control": 0.1, "push": 0.1},
            duplicate_rate=0.1,
            extra_delay_mean=0.01,
            silent_failures=True,
        ),
        retry_budget=3,
        ack_timeout=2.0,
        lease_ttl=300.0,
    )


class TestSeedDeterminism:
    def test_identical_seed_and_plan_reproduce_exactly(self):
        # Satellite: same seed + same FaultPlan -> byte-identical cost
        # ledgers and metrics snapshots.
        first = Simulation(_resilient_config())
        second = Simulation(_resilient_config())
        result_a = first.run()
        result_b = second.run()
        assert dict(first.ledger.breakdown()) == dict(
            second.ledger.breakdown()
        )
        assert result_a.queries == result_b.queries
        assert result_a.mean_latency == result_b.mean_latency
        assert result_a.cost_per_query == result_b.cost_per_query
        assert result_a.incomplete_queries == result_b.incomplete_queries
        assert dict(result_a.extras) == dict(result_b.extras)
        assert (
            result_a.stale_read_fraction == result_b.stale_read_fraction
            or (
                math.isnan(result_a.stale_read_fraction)
                and math.isnan(result_b.stale_read_fraction)
            )
        )
        snap_a = json.dumps(first.registry.snapshot(), sort_keys=True)
        snap_b = json.dumps(second.registry.snapshot(), sort_keys=True)
        assert snap_a == snap_b

    def test_different_seeds_diverge(self):
        result_a = Simulation(_resilient_config(seed=1)).run()
        result_b = Simulation(_resilient_config(seed=2)).run()
        assert dict(result_a.extras) != dict(result_b.extras)

    def test_disabled_plan_matches_no_plan(self):
        # A run with an all-defaults FaultPlan is bit-identical to one
        # with faults=None: the injector is never constructed.
        base = dict(
            scheme="dup",
            num_nodes=32,
            query_rate=2.0,
            duration=2000.0,
            warmup=500.0,
            threshold_c=2,
            seed=3,
        )
        with_plan = Simulation(
            SimulationConfig(**base, faults=FaultPlan())
        )
        without = Simulation(SimulationConfig(**base))
        assert with_plan.injector is None
        result_a = with_plan.run()
        result_b = without.run()
        assert result_a.mean_latency == result_b.mean_latency
        assert result_a.cost_per_query == result_b.cost_per_query
        assert dict(with_plan.ledger.breakdown()) == dict(
            without.ledger.breakdown()
        )
