"""Tests of the ack/retry/dedup reliable-delivery channel."""

import pytest

from repro.engine import Simulation, SimulationConfig
from repro.net.faults import FaultPlan
from repro.net.message import Category
from repro.net.reliable import ReliableChannel
from repro.sim.core import Environment


def chain_sim(scheme="dup", **overrides):
    # piggyback=False so subscriptions travel as explicit control
    # messages (the traffic the reliable channel carries) instead of
    # riding on unreliable query/reply packets.
    defaults = dict(
        scheme=scheme,
        num_nodes=6,
        topology="chain",
        hop_latency_mean=0.001,
        duration=50_000.0,
        warmup=0.0,
        threshold_c=1,
        seed=1,
        piggyback=False,
    )
    defaults.update(overrides)
    sim = Simulation(SimulationConfig(**defaults))
    sim.start()
    sim.env.run(until=0.0)
    return sim


def subscribe_node_5(sim):
    """The standard chain recipe that ends with node 5 subscribed."""
    sim.scheme.on_local_query(5)
    sim.env.run(until=3550.0)
    sim.scheme.on_local_query(5)
    sim.env.run(until=3650.0)
    sim.scheme.on_local_query(5)
    sim.env.run(until=3700.0)


class TestChannelValidation:
    def test_rejects_bad_parameters(self):
        env = Environment()
        with pytest.raises(ValueError):
            ReliableChannel(env, None, retry_budget=-1, base_timeout=1.0)
        with pytest.raises(ValueError):
            ReliableChannel(env, None, retry_budget=1, base_timeout=0.0)
        with pytest.raises(ValueError):
            ReliableChannel(
                env, None, retry_budget=1, base_timeout=1.0, backoff=0.5
            )


class TestLosslessOperation:
    def test_every_send_acked_without_retries(self):
        sim = chain_sim("dup", retry_budget=3, ack_timeout=2.0)
        assert sim.reliable is not None
        subscribe_node_5(sim)
        assert sim.reliable.acked > 0
        assert sim.reliable.acked == sim.reliable.acks_sent
        assert sim.reliable.retries == 0
        assert sim.reliable.give_ups == 0
        sim.env.run(until=3800.0)
        assert sim.reliable.outstanding == 0

    def test_acks_are_charged_control_hops(self):
        plain = chain_sim("dup")
        reliable = chain_sim("dup", retry_budget=3, ack_timeout=2.0)
        subscribe_node_5(plain)
        subscribe_node_5(reliable)
        extra = reliable.ledger.hops(Category.CONTROL) - plain.ledger.hops(
            Category.CONTROL
        )
        assert extra == reliable.reliable.acks_sent

    def test_tree_state_identical_to_unreliable_run(self):
        plain = chain_sim("dup")
        reliable = chain_sim("dup", retry_budget=3, ack_timeout=2.0)
        subscribe_node_5(plain)
        subscribe_node_5(reliable)
        for node in range(6):
            assert list(plain.scheme.protocol.s_list(node)) == list(
                reliable.scheme.protocol.s_list(node)
            )


class TestRetries:
    def test_lost_control_recovered_by_retransmission(self):
        sim = chain_sim(
            "dup",
            retry_budget=4,
            ack_timeout=1.0,
            faults=FaultPlan(loss_by_category={"control": 0.5}),
            seed=7,
        )
        subscribe_node_5(sim)
        sim.env.run(until=4000.0)
        assert sim.reliable.retries > 0
        assert sim.reliable.give_ups == 0
        # Despite a 50% lossy control plane, the subscription chain is
        # exactly what a lossless run builds.
        plain = chain_sim("dup")
        subscribe_node_5(plain)
        plain.env.run(until=4000.0)
        for node in range(6):
            assert list(sim.scheme.protocol.s_list(node)) == list(
                plain.scheme.protocol.s_list(node)
            )

    def test_duplicates_acked_but_processed_once(self):
        sim = chain_sim(
            "dup",
            retry_budget=4,
            ack_timeout=1.0,
            faults=FaultPlan(duplicate_rate=1.0),
        )
        subscribe_node_5(sim)
        sim.env.run(until=4000.0)
        assert sim.reliable.duplicates_suppressed > 0
        plain = chain_sim("dup")
        subscribe_node_5(plain)
        plain.env.run(until=4000.0)
        # Duplicate deliveries must not corrupt the subscriber lists.
        for node in range(6):
            assert list(sim.scheme.protocol.s_list(node)) == list(
                plain.scheme.protocol.s_list(node)
            )


class TestGiveUp:
    def test_exhausted_budget_raises_suspicion_and_repairs(self):
        sim = chain_sim(
            "dup",
            retry_budget=2,
            ack_timeout=1.0,
            faults=FaultPlan(silent_failures=True),
        )
        subscribe_node_5(sim)
        assert 5 in sim.scheme.protocol.s_list(4)
        sim.fail_silently(5)
        assert 5 in sim.tree
        # The next push to the dead subscriber exhausts its retry
        # budget, the sender gives up, suspects node 5, and the repair
        # flow prunes it from the tree.
        sim.authority.force_update()
        sim.env.run(until=sim.env.now + 200.0)
        assert sim.reliable.give_ups > 0
        assert 5 not in sim.tree
        assert sim.injector.detected_count >= 1
        assert sim._detection_latency.count >= 1

    def test_dead_sender_timers_cancelled(self):
        sim = chain_sim(
            "dup",
            retry_budget=3,
            ack_timeout=1.0,
            faults=FaultPlan(loss_by_category={"control": 1.0}),
        )
        sim.scheme.on_local_query(5)
        sim.env.run(until=3550.0)
        sim.scheme.on_local_query(5)
        sim.env.run(until=3650.0)
        sim.scheme.on_local_query(5)  # subscribe walk, all control lost
        sim.env.run(until=3650.5)
        assert sim.reliable.outstanding > 0
        give_ups_before = sim.reliable.give_ups
        sim.fail_silently(5)
        sim.fail_silently(4)
        sim.fail_silently(3)
        sim.fail_silently(2)
        sim.fail_silently(1)
        sim.env.run(until=3800.0)
        # drop_sender plus the functioning() guard: no posthumous
        # retries ever give up on behalf of a dead sender.
        assert sim.reliable.outstanding == 0
        assert sim.reliable.give_ups == give_ups_before
