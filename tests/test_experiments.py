"""Smoke and contract tests of the experiments package.

Full experiment sweeps belong to the benchmark harness; these tests run
single-point versions to verify the contracts: registry resolution, row
structure, shape-check wiring, and rendering.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import get_experiment, list_experiments
from repro.experiments.format import monotone, render_table
from repro.experiments.spec import ExperimentResult, ShapeCheck
from repro.experiments import (
    churn_study,
    figure4_arrival_rate,
    table2_threshold,
)
from repro.experiments.common import base_config


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        registered = set(list_experiments())
        assert {
            "table2",
            "figure4",
            "table3",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "churn",
            "ablations",
        } <= registered

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            get_experiment("figure99")

    def test_get_experiment_returns_callable(self):
        assert callable(get_experiment("figure4"))


class TestBaseConfig:
    def test_scales(self):
        assert base_config("quick").num_nodes == 512
        assert base_config("bench").num_nodes == 1024
        paper = base_config("paper")
        assert paper.num_nodes == 4096
        assert paper.duration >= 180_000.0

    def test_unknown_scale_rejected(self):
        with pytest.raises(ExperimentError):
            base_config("galactic")

    def test_overrides(self):
        config = base_config("quick", num_nodes=64, query_rate=3.0)
        assert config.num_nodes == 64
        assert config.query_rate == 3.0


class TestFormat:
    def test_render_table_alignment(self):
        rows = [{"a": 1, "b": 0.123456}, {"a": 22, "b": 7.0}]
        text = render_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "0.1235" in text
        assert len(lines) == 4

    def test_render_table_empty(self):
        assert render_table([]) == "(no data)"

    def test_render_table_handles_missing_and_nan(self):
        text = render_table([{"a": 1}, {"b": float("nan")}])
        assert "n/a" in text

    def test_monotone_decreasing(self):
        assert monotone([5.0, 4.0, 3.0], decreasing=True)
        assert not monotone([5.0, 6.0, 3.0], decreasing=True)
        assert monotone([5.0, 5.2, 3.0], decreasing=True, slack=0.05)

    def test_monotone_increasing(self):
        assert monotone([1.0, 2.0, 3.0], decreasing=False)
        assert not monotone([1.0, 0.5], decreasing=False)


class TestSpec:
    def test_shape_check_rendering(self):
        passed = ShapeCheck("claim A", True, "detail")
        failed = ShapeCheck("claim B", False)
        assert "PASS" in str(passed)
        assert "detail" in str(passed)
        assert "FAIL" in str(failed)

    def test_result_render_and_all_shapes(self):
        result = ExperimentResult(
            experiment_id="x",
            title="Title",
            rows=[{"k": 1.0}],
            shape_checks=(ShapeCheck("ok", True),),
            notes="a note",
        )
        text = result.render()
        assert "x: Title" in text
        assert "a note" in text
        assert result.all_shapes_hold
        failed = ExperimentResult(
            "y", "T", [], shape_checks=(ShapeCheck("bad", False),)
        )
        assert not failed.all_shapes_hold


class TestSinglePointRuns:
    """One-point sweeps: fast enough for the unit suite."""

    def test_table2_single_cell(self):
        result = table2_threshold.run(
            scale="quick", replications=1, c_values=(6,), rates=(1.0,)
        )
        assert result.experiment_id == "table2"
        assert len(result.rows) == 2  # cost row + latency row
        assert "c=6" in result.rows[0]

    def test_figure4_single_rate(self):
        result = figure4_arrival_rate.run(
            scale="quick", replications=1, rates=(3.0,)
        )
        assert result.experiment_id == "figure4"
        row = result.rows[0]
        assert row["lambda"] == 3.0
        assert row["latency_dup"] <= row["latency_pcx"]
        assert 0 < row["relcost_dup"] <= 1.5

    def test_churn_single_level(self):
        result = churn_study.run(
            scale="quick", replications=1, levels=(0.02,), schemes=("dup",)
        )
        assert result.rows[0]["scheme"] == "dup"
        assert result.rows[0]["population"] > 8
