"""Tests of the repro-dup command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_list_shows_experiments_and_schemes(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure4" in output
        assert "table3" in output
        assert "dup" in output
        assert "pcx" in output


class TestSimulate:
    def test_simulate_prints_metrics(self, capsys):
        code = main(
            [
                "simulate",
                "--scheme",
                "pcx",
                "--nodes",
                "48",
                "--rate",
                "1.0",
                "--duration",
                "7500",
                "--warmup",
                "3600",
                "--seed",
                "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "[pcx]" in output
        assert "latency=" in output
        assert "cost=" in output

    def test_simulate_dup_reports_extras(self, capsys):
        code = main(
            [
                "simulate",
                "--scheme",
                "dup",
                "--nodes",
                "48",
                "--rate",
                "2.0",
                "--duration",
                "7500",
                "--warmup",
                "3600",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "subscribed" in output

    def test_simulate_chord_topology(self, capsys):
        code = main(
            [
                "simulate",
                "--scheme",
                "pcx",
                "--topology",
                "chord",
                "--nodes",
                "48",
                "--duration",
                "7500",
                "--warmup",
                "3600",
            ]
        )
        assert code == 0

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--scheme", "bogus"])


class TestRun:
    def test_run_single_experiment(self, capsys):
        # table2 with default sweep is too slow for a unit test; use the
        # smallest registered experiment shape by calling through the CLI
        # on quick scale with one replication.
        code = main(
            ["run", "ablation-interest", "--scale", "quick",
             "--replications", "1"]
        )
        output = capsys.readouterr().out
        assert "ablation-interest" in output
        assert "shape checks:" in output
        assert code in (0, 1)  # shape outcome, not a crash

    def test_run_unknown_experiment(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "figure99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestTrace:
    def test_make_and_replay(self, tmp_path, capsys):
        path = str(tmp_path / "wl.trace")
        code = main(
            ["trace", "make", path, "--nodes", "48", "--rate", "0.5",
             "--duration", "3000"]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        code = main(["trace", "replay", path, "--scheme", "pcx",
                     "--nodes", "48"])
        assert code == 0
        output = capsys.readouterr().out
        assert "replayed" in output
        assert "[pcx]" in output

    def test_replay_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["trace", "replay", str(tmp_path / "nope.trace")])
