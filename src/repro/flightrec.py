"""Protocol flight recorder: a bounded ring buffer of protocol events.

The recorder captures the *dynamic* behaviour that end-of-run aggregates
erase — tree grafts and prunes, subscribe/unsubscribe churn, lease
expiries, failover promotions, auditor detections and repairs, partition
open/heal, overload sheds, subscriber rejections, circuit-breaker
trip/half-open/close transitions, storm-phase edges — as typed,
structured events keyed by simulated time.  It is
a pure observer: it never consumes randomness and never schedules
simulation events, so a run with the recorder armed is bit-identical to
the same run without it.

It follows the same discipline as :mod:`repro.fastpath`:

* a process-wide default from the environment (``REPRO_FLIGHT``,
  default *off*), overridable per-run via
  ``SimulationConfig.flight_recorder``;
* zero overhead when disabled — emission sites hold ``None`` instead of
  a recorder and guard with a single identity check;
* ``set_enabled()`` for tests and harnesses, returning the previous
  value so callers can restore it.

Dump-on-anomaly: when ``REPRO_FLIGHT_DUMP`` names a path, anomalies
(chaos run failures, golden mismatches, auditor divergence) flush the
last N events to a JSONL file derived from that path, one reason per
file, newest dump winning.  See ``docs/observability.md`` for the event
schema.
"""

from __future__ import annotations

import collections
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional

_FALSE_VALUES = ("0", "false", "no", "off")

#: Process-wide default, from ``REPRO_FLIGHT`` (default: disabled).
ENABLED: bool = (
    os.environ.get("REPRO_FLIGHT", "0").strip().lower()
    not in _FALSE_VALUES
)

#: Where anomaly dumps land (``REPRO_FLIGHT_DUMP``); ``None`` disables
#: automatic dumps — explicit ``dump(path)`` calls still work.
DUMP_PATH: Optional[str] = os.environ.get("REPRO_FLIGHT_DUMP") or None

#: The most recently constructed recorder in this process, so anomaly
#: hooks (golden mismatches, trial failures) can reach the events of
#: the run that just went wrong without threading a handle through
#: every layer.  Worker processes each have their own copy.
LAST: Optional["FlightRecorder"] = None


def set_enabled(value: bool) -> bool:
    """Set the process-wide default; returns the previous value."""
    global ENABLED
    previous = ENABLED
    ENABLED = bool(value)
    return previous


def set_dump_path(path: Optional[str]) -> Optional[str]:
    """Set the anomaly-dump path; returns the previous value."""
    global DUMP_PATH
    previous = DUMP_PATH
    DUMP_PATH = path
    return previous


@dataclass(frozen=True)
class ProtocolEvent:
    """One structured protocol event.

    ``kind`` is a short hyphenated tag (``tree-graft``, ``audit-repair``,
    ``partition-open``, ...); ``node`` is the acting node, ``subject``
    the node or key acted upon (both ``None`` when not applicable), and
    ``detail`` a free-form human-readable qualifier.
    """

    time: float
    kind: str
    node: Optional[int] = None
    subject: Optional[int] = None
    detail: str = ""

    def to_record(self) -> dict:
        """The JSONL representation (``type`` discriminator included)."""
        return {
            "type": "flight-event",
            "time": self.time,
            "kind": self.kind,
            "node": self.node,
            "subject": self.subject,
            "detail": self.detail,
        }


class FlightRecorder:
    """Bounded, deterministic ring buffer of :class:`ProtocolEvent`.

    The ring keeps the last ``capacity`` events; per-kind counts are
    maintained at record time and therefore survive eviction, so e.g.
    the number of ``audit-repair`` events always matches the auditor's
    own repair counter even on runs long enough to wrap the ring.
    """

    __slots__ = (
        "_clock",
        "_events",
        "_counts",
        "_anomaly_path",
        "total_recorded",
        "anomalies",
    )

    def __init__(
        self,
        clock: Callable[[], float],
        capacity: int = 4096,
        anomaly_path: Optional[str] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._clock = clock
        self._events: collections.deque[ProtocolEvent] = collections.deque(
            maxlen=capacity
        )
        self._counts: dict[str, int] = {}
        self._anomaly_path = anomaly_path
        self.total_recorded = 0
        self.anomalies: dict[str, int] = {}

    def record(
        self,
        kind: str,
        node: Optional[int] = None,
        subject: Optional[int] = None,
        detail: str = "",
    ) -> None:
        """Record one event at the current simulated time."""
        self._events.append(
            ProtocolEvent(self._clock(), kind, node, subject, detail)
        )
        self._counts[kind] = self._counts.get(kind, 0) + 1
        self.total_recorded += 1

    @property
    def capacity(self) -> int:
        return self._events.maxlen or 0

    @property
    def events(self) -> tuple[ProtocolEvent, ...]:
        """The retained events, oldest first."""
        return tuple(self._events)

    def counts(self) -> dict[str, int]:
        """All-time per-kind event counts (survive ring eviction)."""
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ProtocolEvent]:
        return iter(tuple(self._events))

    def records(self) -> Iterator[dict]:
        """JSONL-ready dicts: per-kind counts header, then events."""
        yield {
            "type": "flight-summary",
            "total_recorded": self.total_recorded,
            "retained": len(self._events),
            "counts": self.counts(),
        }
        for event in tuple(self._events):
            yield event.to_record()

    def dump(self, path) -> int:
        """Write the retained events as JSONL; returns records written."""
        from repro.metrics.export import write_jsonl

        return write_jsonl(path, self.records())

    def anomaly(self, reason: str) -> Optional[str]:
        """Flush the ring for a named anomaly.

        Writes to a path derived from ``anomaly_path`` (or the module
        ``DUMP_PATH``) by suffixing the reason, e.g.
        ``flight.jsonl`` → ``flight-golden-mismatch.jsonl``.  Repeat
        anomalies of the same reason overwrite, keeping the latest.
        Returns the path written, or ``None`` when no dump path is
        configured.
        """
        self.anomalies[reason] = self.anomalies.get(reason, 0) + 1
        base = self._anomaly_path or DUMP_PATH
        if not base:
            return None
        target = Path(base)
        target = target.with_name(f"{target.stem}-{reason}{target.suffix}")
        self.dump(target)
        return str(target)

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(retained={len(self._events)}, "
            f"total={self.total_recorded}, capacity={self.capacity})"
        )


def dump_anomaly(reason: str) -> Optional[str]:
    """Flush the most recent recorder for ``reason``, if one exists.

    The hook used by the golden-regression harness and the trial
    runner: callers need not know whether a recorder was armed.
    """
    if LAST is None:
        return None
    return LAST.anomaly(reason)
