"""Exact per-update push costs for PCX / CUP / DUP on a known tree.

Given the index search tree and the set of subscribed nodes, each
scheme's dissemination cost per update is a simple combinatorial
quantity:

- **CUP** pushes hop-by-hop, so it pays one hop for every edge on the
  union of root-to-subscriber paths.
- **DUP** pushes along the dynamic update propagation tree, whose
  quiescent shape equals the *contracted Steiner tree* of
  ``{root} ∪ subscribers``: its vertices are the root, the subscribers,
  and every branch point (pairwise LCA) between them, and each vertex
  other than the root receives exactly one direct push.  The test-suite
  verifies this equivalence against the Figure-3 protocol implementation.
- **PCX** pushes nothing; what the others save is its per-TTL re-fetch:
  a round trip of ``2 * depth`` hops per subscriber in the cold-chain
  worst case the paper's examples use.

These functions power the ``push_savings`` report and double as an
independent oracle for the protocol tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import TopologyError
from repro.topology.tree import SearchTree

NodeId = int


def _subscriber_set(tree: SearchTree, subscribers: Iterable[NodeId]) -> set[NodeId]:
    result = set()
    for node in subscribers:
        if node not in tree:
            raise TopologyError(f"subscriber {node} not in tree")
        if node != tree.root:
            result.add(node)
    return result


def cup_push_cost(tree: SearchTree, subscribers: Iterable[NodeId]) -> int:
    """Hops per update for hop-by-hop pushing (union of root paths)."""
    subs = _subscriber_set(tree, subscribers)
    edges: set[NodeId] = set()  # identify each edge by its lower endpoint
    for node in subs:
        current = node
        while current != tree.root and current not in edges:
            edges.add(current)
            current = tree.parent(current)
    return len(edges)


def dup_tree_nodes(tree: SearchTree, subscribers: Iterable[NodeId]) -> set[NodeId]:
    """Vertices of the quiescent DUP tree (excluding the root).

    The contracted Steiner closure: subscribers plus every LCA of two
    subscribers that lies strictly below the root.
    """
    subs = sorted(_subscriber_set(tree, subscribers))
    closure = set(subs)
    for index, first in enumerate(subs):
        for second in subs[index + 1 :]:
            meet = tree.lca(first, second)
            if meet != tree.root:
                closure.add(meet)
    return closure


def dup_push_cost(tree: SearchTree, subscribers: Iterable[NodeId]) -> int:
    """Hops per update for DUP: one direct push per DUP-tree vertex."""
    return len(dup_tree_nodes(tree, subscribers))


def pcx_refetch_cost(tree: SearchTree, subscribers: Iterable[NodeId]) -> int:
    """Per-TTL round-trip hops PCX pays for the same nodes (cold chains).

    Each subscriber re-fetches once per TTL over its full root path —
    the worst case of the paper's examples ("it costs eight hops for N6
    to send the request and get the index from N1 in PCX").
    """
    subs = _subscriber_set(tree, subscribers)
    return sum(2 * tree.depth(node) for node in subs)


@dataclass(frozen=True)
class PushSavings:
    """Per-update cost of each scheme for one subscriber set."""

    pcx_hops: int
    cup_hops: int
    dup_hops: int

    @property
    def cup_saving(self) -> float:
        """Fraction of PCX's cost CUP saves (paper's <= ~50 % bound)."""
        if self.pcx_hops == 0:
            return 0.0
        return 1.0 - self.cup_hops / self.pcx_hops

    @property
    def dup_saving(self) -> float:
        """Fraction of PCX's cost DUP saves (87.5 % in Figure 2's case)."""
        if self.pcx_hops == 0:
            return 0.0
        return 1.0 - self.dup_hops / self.pcx_hops


def push_savings(
    tree: SearchTree, subscribers: Iterable[NodeId]
) -> PushSavings:
    """All three per-update costs for one tree and subscriber set."""
    subscribers = list(subscribers)
    return PushSavings(
        pcx_hops=pcx_refetch_cost(tree, subscribers),
        cup_hops=cup_push_cost(tree, subscribers),
        dup_hops=dup_push_cost(tree, subscribers),
    )
