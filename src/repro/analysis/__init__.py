"""Closed-form cost analysis (the paper's Section II-B, made precise).

The paper argues DUP's advantage with small worked examples (pushing to
N6 costs CUP four hops and DUP one; PCX pays eight).  This package turns
those arguments into exact combinatorial quantities on a given search
tree and subscriber set:

- :func:`~repro.analysis.cost_model.cup_push_cost` — edges on the union
  of root-to-subscriber paths (what hop-by-hop pushing pays per update);
- :func:`~repro.analysis.cost_model.dup_push_cost` — edges of the
  *contracted Steiner tree* of the subscriber set, which is exactly the
  quiescent DUP tree (a property the test-suite verifies against the
  protocol implementation);
- :func:`~repro.analysis.cost_model.pcx_refetch_cost` — the per-TTL
  round-trip cost pushes save;
- :func:`~repro.analysis.interest_model.expected_interested` — the
  expected interested-node count under the paper's Zipf/Poisson workload,
  predicting how the DUP tree scales with lambda, theta, and c.
"""

from repro.analysis.cost_model import (
    cup_push_cost,
    dup_push_cost,
    dup_tree_nodes,
    pcx_refetch_cost,
    push_savings,
)
from repro.analysis.interest_model import expected_interested

__all__ = [
    "cup_push_cost",
    "dup_push_cost",
    "dup_tree_nodes",
    "expected_interested",
    "pcx_refetch_cost",
    "push_savings",
]
