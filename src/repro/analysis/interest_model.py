"""Predicting the interested-node population analytically.

Under the paper's workload, queries arrive network-wide as a Poisson
process of rate ``lambda`` and land on the node of Zipf rank ``i`` with
probability ``P_i = (1/i^theta) / H_n(theta)``.  The number of *local*
queries node ``i`` receives in a TTL window is then Poisson with mean
``mu_i = lambda * P_i * TTL``, and the node is interested when that count
exceeds the threshold ``c``.

``expected_interested`` sums ``P[Poisson(mu_i) > c]`` over ranks — the
expected size of the interested set at a random instant, which predicts
the size of the DUP tree (and hence its per-cycle push cost) as a
function of lambda, theta, n, TTL, and c.  The tests check it against
the simulated subscriber counts.

The model deliberately ignores forwarded-query arrivals (they also count
toward interest in the protocol), so it is a slight *under*-estimate for
interior nodes; at the paper's parameters the correction is small because
forwarded traffic concentrates on a few junctions.
"""

from __future__ import annotations

import math

from scipy import stats as _scipy_stats

from repro.errors import ConfigError


def zipf_probabilities(n: int, theta: float) -> list[float]:
    """The paper's Zipf-like rank probabilities ``P_1 .. P_n``."""
    if n < 1:
        raise ConfigError(f"need at least one node, got n={n}")
    if theta < 0:
        raise ConfigError(f"theta must be >= 0, got {theta}")
    weights = [1.0 / (rank**theta) for rank in range(1, n + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def expected_interested(
    n: int,
    theta: float,
    rate: float,
    ttl: float,
    threshold_c: int,
) -> float:
    """Expected number of interested nodes at a random instant.

    Parameters mirror the simulation configuration: ``rate`` is the
    network-wide query rate, ``ttl`` the window length, ``threshold_c``
    the paper's ``c`` ("more than c queries in the last TTL interval").
    """
    if rate <= 0 or ttl <= 0:
        raise ConfigError("rate and ttl must be positive")
    if threshold_c < 0:
        raise ConfigError(f"threshold_c must be >= 0, got {threshold_c}")
    expected = 0.0
    for probability in zipf_probabilities(n, theta):
        mu = rate * probability * ttl
        # P[N > c] = 1 - CDF(c); survival function is more stable.
        expected += float(_scipy_stats.poisson.sf(threshold_c, mu))
    return expected


def interested_rank_cutoff(
    n: int,
    theta: float,
    rate: float,
    ttl: float,
    threshold_c: int,
) -> int:
    """The deterministic-rate rank cutoff: ranks with ``mu_i > c``.

    A cruder estimate than :func:`expected_interested` (it ignores
    Poisson noise around the threshold) but useful for back-of-envelope
    scaling arguments: the cutoff grows like ``(lambda * ttl / c)^(1/theta)``.
    """
    count = 0
    for probability in zipf_probabilities(n, theta):
        if rate * probability * ttl > threshold_c:
            count += 1
        else:
            break  # probabilities are non-increasing in rank
    return count


def predicted_dup_relative_push_cost(
    interested: float, mean_depth: float
) -> float:
    """Paper-style envelope: DUP push cost over PCX re-fetch cost.

    With ``k`` subscribers at mean depth ``d``, PCX pays about ``2kd``
    per TTL, DUP about ``k`` plus a few junctions — bounded here by
    ``1.5k`` — giving a relative cost near ``0.75 / d`` (Figure 2's
    example: depth 4 gives 12.5 %, the paper's 87.5 % saving).
    """
    if interested <= 0 or mean_depth <= 0:
        return math.nan
    return (1.5 * interested) / (2 * interested * mean_depth)
