"""PCX: Path Caching with eXpiration (the paper's passive baseline).

Indices passing by a node are cached with a TTL and served until they
expire; there is no proactive propagation at all.  The paper's two PCX
drawbacks fall out of the version model: a cached copy is unusable after
its absolute expiry even when unchanged, and it may be stale before expiry
when the authority re-issued early.
"""

from __future__ import annotations

from repro.schemes.base import PathCachingScheme


class PcxScheme(PathCachingScheme):
    """Pure path caching: the shared query engine with no hooks."""

    name = "pcx"
