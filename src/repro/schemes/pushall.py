"""Push-all baseline: SCRIBE-style full-tree dissemination every cycle.

Every new index version floods the whole search tree hop-by-hop, so every
node always holds a valid copy (near-zero latency) at maximal push cost —
the opposite extreme to PCX.  Used by the ablation benchmarks to bracket
CUP and DUP between the two extremes; the paper's related-work section
contrasts DUP with exactly this kind of multicast (SCRIBE forwards
"hop-by-hop to the subscriber" where DUP skips intermediates).
"""

from __future__ import annotations

from repro.net.message import PushMessage
from repro.schemes.base import PathCachingScheme

NodeId = int


class PushAllScheme(PathCachingScheme):
    """Unconditional full-tree push of every new version."""

    name = "push-all"

    def on_new_version(self, version) -> None:
        self._push_to_children(self.sim.tree.root, version)

    def _handle_push(self, node: NodeId, message: PushMessage) -> None:
        sim = self.sim
        sim.cache(node).put(message.version, sim.env.now)
        self._push_to_children(node, message.version)

    def _push_to_children(self, node: NodeId, version) -> None:
        sim = self.sim
        for child in sim.tree.children(node):
            sim.transport.send(
                child,
                PushMessage(key=sim.key, version=version, sender=node),
            )
