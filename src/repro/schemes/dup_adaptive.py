"""``dup-adaptive``: DUP with per-node self-tuning interest thresholds.

The paper fixes the interest threshold ``c`` globally (Section III-B);
this variant gives every node an
:class:`~repro.core.interest.AdaptiveInterestPolicy` that tunes its own
threshold from the query rate it actually observes, clamped to
``[threshold_floor, threshold_ceiling]`` (see
:class:`~repro.engine.config.SimulationConfig`).  Hot nodes raise their
bar, cold nodes lower it — the local-thresholding idea from the DHT
literature applied to DUP's subscription decision.

Everything else — subscriber lists, pushes, repair — is inherited
unchanged; the scheme merely forces the policy kind through the
``interest_policy_override`` attribute that
``Simulation.make_interest_policy`` consults.  With
``threshold_floor == threshold_ceiling == threshold_c`` the run is
bit-identical to plain ``dup`` (proven by ``tests/test_differential.py``).
"""

from __future__ import annotations

from repro.schemes.dup import DupScheme


class DupAdaptiveScheme(DupScheme):
    """DUP with the adaptive interest policy forced on."""

    name = "dup-adaptive"

    #: Consulted by ``make_interest_policy``: this scheme always uses the
    #: adaptive policy, whatever ``config.interest_policy`` says.
    interest_policy_override = "adaptive"
