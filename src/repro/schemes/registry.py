"""Scheme factory keyed by registry name."""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.schemes.base import Scheme
from repro.schemes.cup import CupScheme
from repro.schemes.cup_ideal import CupIdealScheme
from repro.schemes.cup_popularity import CupPopularityScheme
from repro.schemes.dup import DupScheme
from repro.schemes.dup_adaptive import DupAdaptiveScheme
from repro.schemes.dup_balanced import DupBalancedScheme
from repro.schemes.dup_invalidate import DupInvalidateScheme
from repro.schemes.nocache import NoCacheScheme
from repro.schemes.pcx import PcxScheme
from repro.schemes.pushall import PushAllScheme

_REGISTRY: dict[str, Callable[[], Scheme]] = {
    PcxScheme.name: PcxScheme,
    CupScheme.name: CupScheme,
    CupIdealScheme.name: CupIdealScheme,
    CupPopularityScheme.name: CupPopularityScheme,
    DupScheme.name: DupScheme,
    DupAdaptiveScheme.name: DupAdaptiveScheme,
    DupBalancedScheme.name: DupBalancedScheme,
    DupInvalidateScheme.name: DupInvalidateScheme,
    NoCacheScheme.name: NoCacheScheme,
    PushAllScheme.name: PushAllScheme,
}


def available_schemes() -> tuple[str, ...]:
    """Names of all registered schemes."""
    return tuple(sorted(_REGISTRY))


def make_scheme(name: str) -> Scheme:
    """Instantiate the scheme registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheme {name!r}; available: {available_schemes()}"
        ) from None
    return factory()
