"""DUP: Dynamic-tree based Update Propagation — the paper's scheme.

This adapter wires the pure protocol state machine
(:class:`repro.core.protocol.DupProtocol`) into the simulation engine:

- interest tracking at every query arrival (Figure 3 (A)), subscriptions
  piggybacked on request packets where possible;
- subscribe / unsubscribe / substitute payloads processed at each hop of
  the virtual path (Figure 3 (B), (C), (E));
- **direct pushes** along the DUP tree: one overlay hop per DUP-tree edge
  regardless of search-tree distance — the short-cut that gives DUP its
  advantage over CUP;
- interest-loss detection when a push arrives (Figure 3 (D));
- churn repair through :class:`repro.core.maintenance.DupMaintenance`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.interest import InterestPolicy
from repro.core.leases import LeaseTable
from repro.core.maintenance import DupMaintenance
from repro.core.protocol import DupProtocol, StepResult
from repro.net.message import (
    Category,
    ControlMessage,
    LeaseRefresh,
    PushMessage,
    QueryMessage,
    RefreshSubscribe,
    Subscribe,
    SubscribeNack,
    Substitute,
    Unsubscribe,
)
from repro.schemes.base import PathCachingScheme

NodeId = int


class DupScheme(PathCachingScheme):
    """The dynamic update propagation tree scheme."""

    name = "dup"

    #: DUP's subscriber lists are hard state: a lost subscribe or
    #: substitute corrupts the tree until explicitly repaired, so control
    #: messages and pushes ride the reliable channel when one is enabled.
    reliable_delivery = True

    def __init__(self) -> None:
        super().__init__()
        self.protocol: DupProtocol | None = None
        self.maintenance: DupMaintenance | None = None
        self._trackers: dict[NodeId, InterestPolicy] = {}
        self._leases: LeaseTable | None = None
        self._lease_expiries = 0
        self._recorder = None
        #: Graceful degradation: fanout cap (0 = uncapped) and, per
        #: refusing node, the subjects it redirected to its parent.
        self._max_subscribers = 0
        self._breakers = False
        self._redirected: dict[NodeId, set[NodeId]] = {}
        self._rejected_subscribers = 0
        #: Flap-damping gate (``node -> bool``) installed by ``bind``
        #: when the fluctuation layer arms damping; ``None`` otherwise.
        self._flap_gate = None
        self._rejoin_reconciles = 0
        self._rejoin_kept = 0
        self._rejoin_excised = 0

    def bind(self, sim) -> None:
        super().bind(sim)
        self._recorder = getattr(sim, "recorder", None)
        if self.overload is not None:
            self._max_subscribers = self.overload.plan.max_subscribers
            self._breakers = self.overload.plan.breakers_enabled
        sessions = getattr(sim, "sessions", None)
        if sessions is not None and sessions.plan.damping_enabled:
            self._flap_gate = sessions.suppressed
        self.protocol = DupProtocol(is_root=sim.is_root)
        self.maintenance = DupMaintenance(
            self.protocol,
            sim.tree,
            emit=self._emit_maintenance,
            charge=self._charge_maintenance,
            recorder=self._recorder,
        )
        if sim.config.lease_ttl > 0:
            self._leases = LeaseTable(
                sim.config.lease_ttl, clock=lambda: sim.env.now
            )
            sim.env.process(
                self._lease_refresh_loop(),
                name=f"dup-lease-refresh-{sim.key}",
            )
            sim.env.process(
                self._lease_expiry_loop(),
                name=f"dup-lease-expiry-{sim.key}",
            )

    def _record(self, kind: str, node=None, subject=None, detail="") -> None:
        if self._recorder is not None:
            self._recorder.record(kind, node, subject, detail)

    # -- interest ------------------------------------------------------------
    def tracker(self, node: NodeId) -> InterestPolicy:
        """The node's interest policy instance (lazily created)."""
        tracker = self._trackers.get(node)
        if tracker is None:
            tracker = self.sim.make_interest_policy()
            self._trackers[node] = tracker
        return tracker

    def is_interested(self, node: NodeId) -> bool:
        """Whether ``node`` currently satisfies the interest policy."""
        return self.tracker(node).is_interested(self.sim.env.now)

    # -- hooks into the shared query engine ------------------------------------
    def _on_query_arrival(
        self, node: NodeId, packet: Optional[QueryMessage]
    ) -> list[object]:
        sim = self.sim
        now = sim.env._now
        tracker = self._trackers.get(node)
        if tracker is None:
            tracker = self.tracker(node)
        tracker.record(now)
        if sim.is_root(node):
            return []
        # The interest/subscription checks must run before the local-query
        # early return below: ``is_subscribed`` lazily creates the node's
        # subscriber-list entry, and downstream iteration order (e.g. the
        # lease loops walking ``nodes_with_state``) keys off when that
        # entry first appeared.
        protocol = self.protocol
        if not tracker.is_interested(now) or protocol.is_subscribed(node):
            return []
        if self._flap_gate is not None and self._flap_gate(node):
            # Flap damping: a suppressed peer's subscription attempts
            # are refused until its penalty decays below the reuse
            # threshold — no hard state for a peer that keeps crashing.
            return []
        if packet is None and not sim.config.eager_subscribe:
            # Local query with no packet yet: if it misses, the
            # subscription rides the outgoing request (paper: "piggybacks
            # subscribe(N6) by setting the interest bit in the request
            # packet"); if it hits, defer to the next miss rather than
            # paying an explicit hop-by-hop walk.
            return []
        self._record("subscribe", node=node, detail="query-arrival")
        return protocol.ensure_subscribed(node).upstream

    def _on_local_miss(self, node: NodeId) -> list[object]:
        if self.sim.is_root(node) or not self._should_subscribe(node):
            return []
        self._record("subscribe", node=node, detail="local-miss")
        return self.protocol.ensure_subscribed(node).upstream

    def _should_subscribe(self, node: NodeId) -> bool:
        if self._flap_gate is not None and self._flap_gate(node):
            return False
        return self.is_interested(node) and not self.protocol.is_subscribed(
            node
        )

    def _process_control(
        self, node: NodeId, payloads: list[object], explicit: bool
    ) -> list[object]:
        combined = StepResult()
        for payload in payloads:
            self._trace_note(
                node,
                f"dup.{type(payload).__name__.lower()}",
                repr(payload),
            )
            if isinstance(payload, LeaseRefresh):
                self._handle_lease_refresh(node, payload, combined)
                continue
            if isinstance(payload, SubscribeNack):
                self._handle_subscribe_nack(node, payload)
                continue
            if self._max_subscribers and self._degrade_control(
                node, payload, combined
            ):
                continue
            combined.merge(self.protocol.step(node, payload))
            self._note_lease_activity(node, payload)
        if (
            explicit
            and self.sim.config.immediate_push
            and self.protocol.in_dup_tree(node)
        ):
            # A subscriber added via an explicit subscribe missed the
            # reply that a piggybacked one would have ridden back on: the
            # node that caught the subscription — if it is itself a push
            # recipient (root or DUP-tree interior) — hands it the current
            # index right away (paper: the root "pushes the current and
            # future updated index").  Relay nodes on the virtual path do
            # not push: the subscription is not theirs to serve.
            self._push_current(node, combined.new_subscribers)
        return combined.upstream

    # -- graceful degradation (overload layer) --------------------------------
    def _degrade_control(
        self, node: NodeId, payload: object, combined
    ) -> bool:
        """Fanout-capped handling of one control payload at ``node``.

        Returns ``True`` when the payload was fully handled here (the
        normal ``protocol.step`` must be skipped).  Two cases:

        - the subject was previously *redirected* by this node: its
          subscription state lives at the parent, so subscribe /
          unsubscribe / refresh traffic is relayed upstream instead of
          being processed against a list that never held it (an
          unsubscribe would otherwise die here and leak the parent's
          entry forever);
        - a fresh ``Subscribe`` arriving at a node already at its
          fanout cap: refused with a redirect — the subscribe continues
          to the parent, the subject gets a direct NACK naming the
          refuser, and the subject is remembered as redirected.

        The root never refuses (someone must hold the subscription),
        and repair traffic (``RefreshSubscribe`` for non-redirected
        subjects, ``Substitute``) is never refused either.
        """
        subject = getattr(payload, "subject", None)
        if subject is None or subject == node:
            return False
        redirected = self._redirected.get(node)
        if redirected is not None and subject in redirected:
            if isinstance(payload, Unsubscribe):
                redirected.discard(subject)
            if isinstance(
                payload, (Subscribe, Unsubscribe, RefreshSubscribe)
            ):
                self._trace_note(node, "dup.redirect-relay", repr(payload))
                combined.upstream.append(payload)
                return True
            return False
        if not isinstance(payload, Subscribe):
            return False
        sim = self.sim
        if sim.is_root(node):
            return False
        s_list = self.protocol.s_list(node)
        if subject in s_list:
            return False  # already listed: renewal, not growth
        fanout = sum(1 for entry in s_list if entry != node)
        if fanout < self._max_subscribers:
            return False
        # Refuse: redirect the subscribe to the parent, NACK the subject.
        self._rejected_subscribers += 1
        if redirected is None:
            redirected = self._redirected.setdefault(node, set())
        redirected.add(subject)
        self._record(
            "reject-subscriber",
            node=node,
            subject=subject,
            detail=f"fanout={fanout}",
        )
        self._trace_note(node, "dup.reject-subscriber", f"subject={subject}")
        combined.upstream.append(payload)
        self._send_nack(node, subject)
        return True

    def _send_nack(self, refuser: NodeId, subject: NodeId) -> None:
        """Direct best-effort NACK to the refused subject.

        Deliberately unreliable: the NACK is advice (it feeds the
        subject's breaker for the refuser), not protocol state — the
        redirected subscribe is what actually keeps the subject served.
        """
        sim = self.sim
        if not sim.alive(subject):
            return
        message = ControlMessage(
            key=sim.key,
            payloads=[SubscribeNack(subject=subject, refuser=refuser)],
            sender=refuser,
        )
        message.trace_id = self._carrier_trace
        sim.transport.send(subject, message)

    def _handle_subscribe_nack(
        self, node: NodeId, payload: SubscribeNack
    ) -> None:
        """The subject learned a peer refused to list it."""
        self._record(
            "reject-subscriber",
            node=node,
            subject=payload.refuser,
            detail="nack-received",
        )
        if self._breakers and node == payload.subject:
            self.overload.record_failure(
                node, payload.refuser, reason="subscribe-nack"
            )

    @property
    def rejected_subscribers(self) -> int:
        """Subscribes refused (and redirected) by capped interior nodes."""
        return self._rejected_subscribers

    @property
    def split_subscribers(self) -> int:
        """Subscribes delegated sideways by capped nodes (``dup-balanced``
        overrides; 0 here so extras stay key-identical across the DUP
        family, which the differential harness relies on)."""
        return 0

    @property
    def reabsorbed_subscribers(self) -> int:
        """Delegated subjects taken back after load drained
        (``dup-balanced`` overrides; 0 here)."""
        return 0

    # -- pushes ---------------------------------------------------------------
    def on_new_version(self, version) -> None:
        self._push_to_targets(self.sim.tree.root, version)

    def _handle_push(self, node: NodeId, message: PushMessage) -> None:
        sim = self.sim
        sim.cache(node).put(message.version, sim.env.now)
        # Figure 3 (D): the push is the natural moment to notice that the
        # node's interest lapsed during the last cycle.
        if self.protocol.is_subscribed(node) and not self.is_interested(node):
            self._record("unsubscribe", node=node, detail="interest-lapse")
            result = self.protocol.drop_subscription(node)
            self._send_control(
                node, result.upstream, trace_id=message.trace_id
            )
        self._push_to_targets(
            node, message.version, trace_id=message.trace_id
        )

    def _push_to_targets(
        self, node: NodeId, version, trace_id: Optional[int] = None
    ) -> None:
        sim = self.sim
        for target in self.protocol.push_targets(node):
            if not sim.alive(target):
                continue  # repaired by the failure flows
            push = PushMessage(key=sim.key, version=version, sender=node)
            push.trace_id = trace_id
            self._send_push(target, push)

    def _push_current(self, node: NodeId, targets: list[NodeId]) -> None:
        """Push the node's current valid copy to newly added subscribers."""
        if not targets:
            return
        sim = self.sim
        version = sim.lookup(node)
        if version is None:
            return
        for target in targets:
            if target != node and sim.alive(target):
                self._trace_note(
                    node, "dup.push_current", f"target={target}"
                )
                push = PushMessage(
                    key=sim.key, version=version, sender=node
                )
                push.trace_id = self._carrier_trace
                self._send_push(target, push)

    def _send_push(self, target: NodeId, push: PushMessage) -> None:
        """One push hop, acked and retried when the channel exists.

        An unacked push is also DUP's failure detector for silently dead
        subscribers: retry exhaustion raises a suspicion that triggers
        the Section III-C repair flows.
        """
        sim = self.sim
        if self._breakers and not self.overload.allows(push.sender, target):
            # Breaker OPEN for this peer: suppress the push (the
            # subscription survives; the half-open probe will resume
            # pushes once the peer answers again).
            return
        channel = sim.reliable
        if channel is not None:
            channel.send(target, push, sender=push.sender)
        else:
            sim.transport.send(target, push)

    # -- churn -------------------------------------------------------------------
    def on_node_joined_edge(
        self, new: NodeId, upper: NodeId, lower: NodeId
    ) -> None:
        self.maintenance.node_joined_edge(new, upper, lower)

    def on_node_joined_leaf(self, parent: NodeId, new: NodeId) -> None:
        self.maintenance.node_joined_leaf(parent, new)

    def on_node_left(self, node: NodeId) -> None:
        self.maintenance.node_left(node)
        self._trackers.pop(node, None)
        self._redirected.pop(node, None)
        if self._leases is not None:
            self._leases.drop_holder(node)
        self.sim.forget_node(node)

    def on_node_failed(self, node: NodeId) -> None:
        self.maintenance.node_failed(node)
        self._trackers.pop(node, None)
        self._redirected.pop(node, None)
        if self._leases is not None:
            self._leases.drop_holder(node)
        self.sim.forget_node(node)

    def snapshot_for_rejoin(self, node: NodeId) -> dict:
        """The amnesia snapshot: what ``node`` still holds after a
        crash-restart — its subscriber list and its interest tracker
        (the engine captures the TTL cache itself)."""
        return {
            "entries": self.protocol.peek_entries(node),
            "tracker": self._trackers.get(node),
        }

    def on_node_rejoined(
        self,
        node: NodeId,
        parent: NodeId,
        snapshot: "dict | None",
        suppressed: bool = False,
    ) -> None:
        """Crash-restart return: reconcile the retained hard state.

        The rejoiner comes back holding its pre-crash subscriber list,
        interest tracker, and cache.  The reconciliation handshake
        re-validates every retained entry against the current tree and
        the live lease table (:meth:`DupMaintenance.node_rejoined`),
        excises what the auditor would flag, renews the leases of the
        survivors, and re-advertises upstream.  Versions stay monotone
        throughout: the restored cache rejects pushes older than what it
        already holds, and newer pushes replace the stale copy as usual.

        When flap damping ``suppressed`` the peer, none of that happens:
        the node rejoins as a bare leaf with full amnesia and emits no
        re-graft/resubscribe traffic until its penalty decays.
        """
        sim = self.sim
        entries = tuple(snapshot["entries"]) if snapshot else ()
        tracker = snapshot.get("tracker") if snapshot else None
        if suppressed:
            self.protocol.drop_node(node)
            self._trackers.pop(node, None)
            self._redirected.pop(node, None)
            if self._leases is not None:
                self._leases.drop_holder(node)
            if node not in sim.tree:
                self.maintenance.node_joined_leaf(parent, node)
            return
        if tracker is not None:
            self._trackers[node] = tracker
        if node in entries and not self.is_interested(node):
            # Interest lapsed across the downtime: the self-subscription
            # does not survive reconciliation.
            entries = tuple(entry for entry in entries if entry != node)
            self._record(
                "stale-excise", node=node, subject=node, detail="interest-lapse"
            )
        leases = self._leases
        entry_valid = None
        if leases is not None:
            now = sim.env._now

            def entry_valid(entry: NodeId) -> bool:
                return leases.live(node, entry, now)

        kept, excised = self.maintenance.node_rejoined(
            node, parent, entries, entry_valid
        )
        if leases is not None:
            for entry in kept:
                if entry != node:
                    leases.touch(node, entry)
            for entry in excised:
                leases.drop(node, entry)
        self._rejoin_reconciles += 1
        self._rejoin_kept += len(kept)
        self._rejoin_excised += len(excised)

    @property
    def rejoin_reconciles(self) -> int:
        """Crash-restart reconciliation handshakes run."""
        return self._rejoin_reconciles

    @property
    def rejoin_kept_entries(self) -> int:
        """Retained subscriber entries that survived reconciliation."""
        return self._rejoin_kept

    @property
    def rejoin_excised_entries(self) -> int:
        """Retained subscriber entries excised as stale on rejoin."""
        return self._rejoin_excised

    def on_root_failed(self, new_root: NodeId) -> None:
        """Authority failure (paper failure case 5).

        ``new_root`` is either a fresh node taking over the failed
        root's position (the paper's scenario) or an existing tree node
        promoted by the standby failover machinery — the maintenance
        flows differ (a standby's old position must be spliced out and
        its state handed over first).
        """
        old_root = self.sim.tree.root
        if new_root in self.sim.tree:
            self.maintenance.promote_root(new_root)
        else:
            self.maintenance.root_failed(new_root)
        self._trackers.pop(old_root, None)
        self._redirected.pop(old_root, None)
        if self._leases is not None:
            self._leases.drop_holder(old_root)

    def on_peer_suspected(self, reporter: NodeId, suspect: NodeId) -> None:
        """Local-only cleanup after a suspicion of a node still alive.

        The suspect's entry leaves the reporter's list (it stopped
        acking / refreshing, so pushes to it are wasted) but the overlay
        is untouched: if the suspect is in fact healthy its next lease
        refresh arrives with an unknown subject and re-subscribes it
        (see :meth:`_handle_lease_refresh`).
        """
        if suspect not in self.protocol.s_list(reporter):
            return
        if self._leases is not None:
            self._leases.drop(reporter, suspect)
        self._record(
            "unsubscribe", node=reporter, subject=suspect, detail="suspected"
        )
        result = self.protocol.step(reporter, Unsubscribe(suspect))
        self._send_control(reporter, result.upstream)

    # -- maintenance plumbing ------------------------------------------------------
    def _emit_maintenance(self, from_node: NodeId, payload: object) -> None:
        if not self.sim.functioning(from_node):
            # A silently failed node cannot originate repair traffic;
            # its orphans stay dark until leases or retries expose them.
            return
        self._send_control(from_node, [payload])

    def _charge_maintenance(self, hops: int) -> None:
        self.sim.ledger.charge(Category.CONTROL, hops)

    # -- leases --------------------------------------------------------------------
    @property
    def lease_expiries(self) -> int:
        """How many subscriber-list entries lapsed without refresh."""
        return self._lease_expiries

    def _note_lease_activity(self, node: NodeId, payload: object) -> None:
        """Grant / renew / drop lease records as control payloads mutate
        the node's subscriber list."""
        leases = self._leases
        if leases is None:
            return
        s_list = self.protocol.s_list(node)
        if isinstance(payload, (Subscribe, RefreshSubscribe)):
            subject = payload.subject
            if subject != node and subject in s_list:
                leases.touch(node, subject)
        elif isinstance(payload, Unsubscribe):
            leases.drop(node, payload.subject)
        elif isinstance(payload, Substitute):
            leases.drop(node, payload.old)
            if payload.new != node and payload.new in s_list:
                leases.touch(node, payload.new)

    def _handle_lease_refresh(
        self, node: NodeId, payload: LeaseRefresh, combined: StepResult
    ) -> None:
        leases = self._leases
        if leases is None:
            return  # refresh from a differently-configured run: ignore
        subject = payload.subject
        if subject in self.protocol.s_list(node):
            leases.touch(node, subject)
            return
        redirected = self._redirected.get(node)
        if redirected is not None and subject in redirected:
            # The subject's state lives at the parent (fanout-cap
            # redirect): relay the refresh instead of re-adopting it.
            combined.upstream.append(payload)
            return
        # Unknown subject: the entry was expired (or its subscribe was
        # lost before the reliable channel existed).  Self-heal by
        # treating the refresh as a subscribe.
        combined.merge(self.protocol.step(node, Subscribe(subject)))
        self._note_lease_activity(node, Subscribe(subject))

    def _lease_refresh_loop(self):
        sim = self.sim
        interval = (
            sim.config.lease_refresh_interval or self._leases.ttl / 3.0
        )
        while True:
            yield sim.env.timeout(interval)
            for node in self.protocol.nodes_with_state():
                if sim.is_root(node) or not sim.functioning(node):
                    continue
                advertisement = self.protocol.advertisement(node)
                if advertisement is None:
                    continue
                parent = sim.parent(node)
                if parent is None:
                    continue
                # Deliberately unreliable: a lost refresh is absorbed by
                # the lease slack, and an expired entry self-heals on
                # the next refresh that does arrive.
                message = ControlMessage(
                    key=sim.key,
                    payloads=[LeaseRefresh(advertisement)],
                    sender=node,
                )
                sim.transport.send(parent, message)

    def _lease_expiry_loop(self):
        sim = self.sim
        interval = self._leases.ttl / 4.0
        while True:
            yield sim.env.timeout(interval)
            for node in list(self.protocol.nodes_with_state()):
                if not sim.functioning(node):
                    continue
                entries = [
                    entry
                    for entry in self.protocol.s_list(node).snapshot()
                    if entry != node
                ]
                self._leases.reconcile(node, entries)
                for entry in self._leases.expired(node, sim.env.now):
                    self._lease_expired(node, entry)

    def _lease_expired(self, node: NodeId, entry: NodeId) -> None:
        self._lease_expiries += 1
        self._record("lease-expiry", node=node, subject=entry)
        self._leases.drop(node, entry)
        # The suspicion routes to the full Section III-C repair when the
        # entry really is dead, or to local cleanup when it is alive.
        self.sim.suspect_peer(node, entry)

    # -- introspection (used by experiments/tests) -----------------------------------
    def subscribed_nodes(self) -> tuple[NodeId, ...]:
        """Nodes currently subscribed (in their own lists)."""
        return tuple(
            node
            for node in self.protocol.nodes_with_state()
            if self.protocol.is_subscribed(node)
        )

    def dup_tree_size(self) -> int:
        """Number of nodes involved in update propagation."""
        reachable = {self.sim.tree.root}
        frontier = [self.sim.tree.root]
        while frontier:
            sender = frontier.pop()
            if sender != self.sim.tree.root and not self.protocol.in_dup_tree(
                sender
            ):
                continue
            for target in self.protocol.push_targets(sender):
                if target not in reachable:
                    reachable.add(target)
                    frontier.append(target)
        return len(reachable)

    def threshold_bounds(self) -> Optional[tuple[int, int]]:
        """(min, max) effective interest threshold across live trackers.

        For the static window policy both bounds equal ``threshold_c``;
        under the adaptive policy they expose the spread the per-node
        tuning produced.  ``None`` when no node has a tracker yet.
        """
        thresholds = [
            tracker.threshold
            for tracker in self._trackers.values()
            if hasattr(tracker, "threshold")
        ]
        if not thresholds:
            return None
        return (min(thresholds), max(thresholds))

    def max_fanout(self) -> int:
        """Largest subscriber fanout over all nodes holding DUP state
        (entries other than the node itself; the quantity the overload
        layer's ``max_subscribers`` cap bounds)."""
        protocol = self.protocol
        best = 0
        for node in protocol.nodes_with_state():
            s_list = protocol.s_list(node)
            fanout = sum(1 for entry in s_list if entry != node)
            if fanout > best:
                best = fanout
        return best
