"""CUP-ideal: controlled update propagation with *perfect* registration.

An idealized variant of CUP used by the ablation study: interest is
registered transitively and explicitly (a node registers with its parent
whenever it is interested itself or forwards for a registered child), so a
push always reaches every interested node — the cut-off problem of the
real CUP (paper Section II-B: "If intermediate nodes decide to stop
forwarding the index, N6 is cut off from the update information") cannot
occur by construction.

Comparing ``cup`` against ``cup-ideal`` isolates how much of DUP's latency
advantage stems from CUP's cut-offs versus from DUP's short-cut pushes.
"""

from __future__ import annotations

from typing import Optional

from repro.core.interest import InterestPolicy
from repro.net.message import CupRegister, CupUnregister, PushMessage, QueryMessage
from repro.schemes.base import PathCachingScheme

NodeId = int


class CupIdealScheme(PathCachingScheme):
    """Hop-by-hop push with perfect transitive registration."""

    name = "cup-ideal"

    def __init__(self) -> None:
        super().__init__()
        self._registered: dict[NodeId, set[NodeId]] = {}
        self._registered_up: set[NodeId] = set()
        self._trackers: dict[NodeId, InterestPolicy] = {}

    # -- state helpers -----------------------------------------------------
    def registered_children(self, node: NodeId) -> set[NodeId]:
        """Children of ``node`` currently registered for pushes."""
        children = self._registered.get(node)
        if children is None:
            children = set()
            self._registered[node] = children
        return children

    def tracker(self, node: NodeId) -> InterestPolicy:
        """The node's interest policy instance."""
        tracker = self._trackers.get(node)
        if tracker is None:
            tracker = self.sim.make_interest_policy()
            self._trackers[node] = tracker
        return tracker

    def wants_updates(self, node: NodeId) -> bool:
        """Interested itself, or forwarding for registered children."""
        if self.registered_children(node):
            return True
        return self.tracker(node).is_interested(self.sim.env.now)

    def is_registered_up(self, node: NodeId) -> bool:
        """Whether ``node`` is registered with its parent."""
        return node in self._registered_up

    # -- hooks into the shared query engine -------------------------------
    def _on_query_arrival(
        self, node: NodeId, packet: Optional[QueryMessage]
    ) -> list[object]:
        now = self.sim.env.now
        self.tracker(node).record(now)
        if self.sim.is_root(node):
            return []
        if self.wants_updates(node) and node not in self._registered_up:
            self._registered_up.add(node)
            return [CupRegister(node)]
        return []

    def _process_control(
        self, node: NodeId, payloads: list[object], explicit: bool
    ) -> list[object]:
        continuations: list[object] = []
        for payload in payloads:
            if isinstance(payload, CupRegister):
                continuations.extend(self._register(node, payload.child))
            elif isinstance(payload, CupUnregister):
                continuations.extend(self._unregister(node, payload.child))
            else:  # pragma: no cover - defensive
                raise TypeError(f"CUP got foreign payload {payload!r}")
        return continuations

    def _register(self, node: NodeId, child: NodeId) -> list[object]:
        self.registered_children(node).add(child)
        if self.sim.is_root(node):
            return []
        if node not in self._registered_up:
            self._registered_up.add(node)
            return [CupRegister(node)]
        return []

    def _unregister(self, node: NodeId, child: NodeId) -> list[object]:
        self.registered_children(node).discard(child)
        if self.sim.is_root(node):
            return []
        if not self.wants_updates(node) and node in self._registered_up:
            self._registered_up.discard(node)
            return [CupUnregister(node)]
        return []

    # -- pushes -------------------------------------------------------------
    def on_new_version(self, version) -> None:
        self._push_to_children(self.sim.tree.root, version)

    def _handle_push(self, node: NodeId, message: PushMessage) -> None:
        sim = self.sim
        sim.cache(node).put(message.version, sim.env.now)
        if not self.wants_updates(node):
            # Lazy de-registration: this push was wasted on us.
            self._registered_up.discard(node)
            self._send_control(
                node, [CupUnregister(node)], trace_id=message.trace_id
            )
            return
        self._push_to_children(node, message.version, trace_id=message.trace_id)

    def _push_to_children(
        self, node: NodeId, version, trace_id: Optional[int] = None
    ) -> None:
        sim = self.sim
        for child in tuple(self.registered_children(node)):
            if not sim.alive(child):
                self.registered_children(node).discard(child)
                continue
            push = PushMessage(key=sim.key, version=version, sender=node)
            push.trace_id = trace_id
            sim.transport.send(child, push)

    # -- churn ----------------------------------------------------------------
    def on_node_left(self, node: NodeId) -> None:
        self._detach(node)
        super().on_node_left(node)

    def on_node_failed(self, node: NodeId) -> None:
        orphans = self.registered_children(node)
        self._detach(node)
        parent = self.sim.tree.parent(node)
        super().on_node_failed(node)
        # Orphaned children re-register through the repaired topology.
        for orphan in orphans:
            if self.sim.alive(orphan):
                self._registered_up.discard(orphan)
                payloads = [CupRegister(orphan)]
                self._registered_up.add(orphan)
                self._send_control(orphan, payloads)
        # The ex-parent forgets the gone child lazily via _push_to_children.
        if parent is not None:
            self.registered_children(parent).discard(node)

    def _detach(self, node: NodeId) -> None:
        self._registered.pop(node, None)
        self._registered_up.discard(node)
        self._trackers.pop(node, None)
