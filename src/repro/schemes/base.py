"""Scheme interface and the shared path-caching query engine.

All three paper schemes (PCX, CUP, DUP) share the same query path: a
request climbs the index search tree until it meets a node with a valid
index copy (or the authority), and the reply retraces the request path,
being cached at every hop.  :class:`PathCachingScheme` implements that
engine once; the push schemes override the *hooks* to add interest
tracking, piggybacked control payloads, and update propagation.

The scheme talks to the simulation through the narrow facade the engine
exposes (see :class:`repro.engine.simulation.Simulation`): clock, tree,
transport, per-node caches, the authority, and the metric recorders.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional

from repro.index.entry import IndexVersion
from repro.net.message import (
    ControlMessage,
    Message,
    PushMessage,
    QueryMessage,
    ReplyMessage,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.simulation import Simulation

NodeId = int


class Scheme(abc.ABC):
    """Behavioral interface every scheme implements."""

    #: Registry name, e.g. ``"dup"``.
    name: str = "abstract"

    #: Whether this scheme's control messages and pushes ride the
    #: reliable (ack + retransmit) channel when the engine provides one.
    #: Hard-state protocols (DUP) opt in: a lost subscribe corrupts tree
    #: state forever.  Soft-state protocols stay unreliable — their
    #: state self-repairs within a TTL.
    reliable_delivery: bool = False

    def __init__(self) -> None:
        self.sim: "Simulation | None" = None
        #: The engine's overload manager, or ``None`` when the overload
        #: layer is disabled (set by :meth:`bind`).  Schemes consult it
        #: for circuit-breaker gates and graceful-degradation caps.
        self.overload = None
        #: Span context of the message currently being processed (set by
        #: the dispatch paths around control handling) so decision hooks
        #: can attribute annotations and triggered messages to the query
        #: that caused them.
        self._carrier_trace: "int | None" = None
        #: Typed handler table (TYPE_ID -> bound handler), resolved by
        #: :meth:`PathCachingScheme.bind`; empty until bound.
        self._handlers: tuple = ()

    def bind(self, sim: "Simulation") -> None:
        """Attach the scheme to a simulation (called once by the engine)."""
        self.sim = sim
        self.overload = getattr(sim, "overload", None)

    def _trace_note(self, node: NodeId, event: str, detail: str = "") -> None:
        """Annotate the trace of the message currently being processed."""
        self.sim.trace_annotate(self._carrier_trace, node, event, detail)

    # -- events delivered by the engine -----------------------------------
    @abc.abstractmethod
    def on_local_query(self, node: NodeId) -> None:
        """A query for the index was generated at ``node``."""

    @abc.abstractmethod
    def on_message(self, node: NodeId, message: Message) -> None:
        """``message`` was delivered to ``node`` by the transport."""

    def on_new_version(self, version: IndexVersion) -> None:
        """The authority issued a new index version (push hooks go here)."""

    # -- churn events (default: topology-only handling) ----------------------
    def on_node_joined_edge(
        self, new: NodeId, upper: NodeId, lower: NodeId
    ) -> None:
        """A node joined on an existing tree edge."""
        self.sim.tree.insert_on_edge(upper, lower, new)

    def on_node_joined_leaf(self, parent: NodeId, new: NodeId) -> None:
        """A node joined as a fresh leaf."""
        self.sim.tree.add_leaf(parent, new)

    def on_node_left(self, node: NodeId) -> None:
        """A node departed gracefully."""
        self.sim.tree.splice_out(node)
        self.sim.forget_node(node)

    def on_node_failed(self, node: NodeId) -> None:
        """A node crashed."""
        self.sim.tree.splice_out(node)
        self.sim.forget_node(node)

    def on_root_failed(self, new_root: NodeId) -> None:
        """The authority crashed; ``new_root`` takes over its position.

        ``new_root`` may be a fresh node (paper failure case 5) or an
        existing tree node promoted by the standby failover machinery.
        Default: topology-only handling — schemes with per-node
        propagation state (DUP) override this to run their repair flows.
        """
        old_root = self.sim.tree.root
        if new_root in self.sim.tree:
            self.sim.tree.promote_to_root(new_root)
        else:
            self.sim.tree.replace_root(new_root)
        self.sim.forget_node(old_root)

    def snapshot_for_rejoin(self, node: NodeId) -> "object | None":
        """The protocol state ``node`` will still hold across a
        crash-restart (its amnesia snapshot).

        Captured by the engine at crash time and handed back to
        :meth:`on_node_rejoined`.  Soft-state schemes have nothing worth
        keeping beyond the cache (which the engine snapshots itself) and
        return ``None``.
        """
        return None

    def on_node_rejoined(
        self,
        node: NodeId,
        parent: NodeId,
        snapshot: "object | None",
        suppressed: bool = False,
    ) -> None:
        """``node`` returned from a crash-restart (fluctuation layer).

        ``parent`` is where to re-graft if a survivor's repair spliced
        the node out while it was down; ``snapshot`` is what
        :meth:`snapshot_for_rejoin` captured; ``suppressed`` means flap
        damping vetoed state restoration (the node rejoins with full
        amnesia and must not emit re-graft/resubscribe traffic).

        Default (soft-state schemes): re-graft as a leaf when needed and
        otherwise resume silently — TTL state self-repairs.
        """
        if node not in self.sim.tree:
            self.sim.tree.add_leaf(parent, node)

    def on_peer_suspected(self, reporter: NodeId, suspect: NodeId) -> None:
        """``reporter`` suspects ``suspect`` is dead, but it is alive.

        A false suspicion (e.g. acks lost to message loss rather than a
        crash) must never splice a live node out of the overlay; schemes
        may at most clean up the reporter's *local* state.  Default:
        nothing.
        """


class PathCachingScheme(Scheme):
    """Shared query/reply engine with path caching (the PCX substrate).

    Subclass hooks:

    - :meth:`_on_query_arrival` — called once per query arrival at a node
      (locally generated or forwarded); returns control payloads to
      propagate upstream from that node.
    - :meth:`_process_control` — transforms piggybacked/explicit control
      payloads arriving at a node; returns what continues upstream.
    - :meth:`_serve_extra` — called when a query is served at a node
      (push schemes do nothing; kept for symmetry/extension).
    """

    name = "pcx-base"

    #: Whether control payloads outlive their carrier packet: hard-state
    #: protocols (DUP) continue leftovers as explicit charged messages
    #: when the query is served mid-path or was a local hit; soft-state
    #: protocols (CUP) let them die with the packet.
    control_survives_serving = True

    def bind(self, sim: "Simulation") -> None:
        """Attach to a simulation and resolve the typed handler table.

        The table is indexed by :attr:`~repro.net.message.Message.TYPE_ID`
        and holds the handler *bound methods*, resolved once here so the
        per-message dispatch is a list index + call — no isinstance
        chain, no dict lookup — while subclass overrides (e.g. DUP's
        ``_handle_push``) are still honoured through normal method
        resolution.
        """
        super().bind(sim)
        self._handlers = (
            self._handle_query,  # QueryMessage.TYPE_ID == 0
            self._handle_reply,  # ReplyMessage.TYPE_ID == 1
            self._handle_control,  # ControlMessage.TYPE_ID == 2
            self._handle_push,  # PushMessage.TYPE_ID == 3
        )

    # ------------------------------------------------------------------ hooks
    def _on_query_arrival(
        self, node: NodeId, packet: Optional[QueryMessage]
    ) -> list[object]:
        """Interest tracking hook; returns payloads to send upstream."""
        return []

    def _process_control(
        self, node: NodeId, payloads: list[object], explicit: bool
    ) -> list[object]:
        """Process control payloads at ``node``; returns continuations."""
        return []

    def _lookup(self, node: NodeId):
        """Where this scheme looks for a valid index copy at ``node``."""
        return self.sim.lookup(node)

    def _on_local_miss(self, node: NodeId) -> list[object]:
        """Hook: a locally issued query missed and a request packet is
        about to leave ``node``; returns payloads to ride it."""
        return []

    # ---------------------------------------------------------------- queries
    def on_local_query(self, node: NodeId) -> None:
        sim = self.sim
        issued_at = sim.env._now
        trace_id = sim.trace_begin(node)
        self._carrier_trace = trace_id
        payloads = self._on_query_arrival(node, packet=None)
        version = self._lookup(node)
        if version is not None:
            sim.record_latency(0, issued_at, trace_id=trace_id)
            sim.note_read(version)
            # A cache hit leaves no packet to piggyback on: hard-state
            # control payloads travel explicitly, soft-state ones lapse.
            if self.control_survives_serving:
                self._send_control(node, payloads, trace_id=trace_id)
            self._carrier_trace = None
            return
        message = QueryMessage(
            key=sim.key, origin=node, issued_at=issued_at
        )
        message.trace_id = trace_id
        payloads.extend(self._on_local_miss(node))
        if sim.config.piggyback:
            message.control.extend(payloads)
        else:
            self._send_control(node, payloads, trace_id=trace_id)
        self._carrier_trace = None
        parent = sim.parent(node)
        if parent is None:  # pragma: no cover - root always has the index
            sim.record_latency(0, issued_at, trace_id=trace_id)
            return
        sim.transport.send(parent, message, sender=node)

    def _handle_query(self, node: NodeId, message: QueryMessage) -> None:
        sim = self.sim
        self._carrier_trace = message.trace_id
        try:
            own_payloads = self._on_query_arrival(node, packet=message)
            # Piggybacked control bits from downstream are processed at
            # every hop, free of charge; the node's own payloads are
            # destined for the parent and therefore appended only
            # afterwards.
            if message.control:
                message.control = self._process_control(
                    node, message.control, explicit=False
                )
            if sim.config.piggyback:
                message.control.extend(own_payloads)
            else:
                self._send_control(
                    node, own_payloads, trace_id=message.trace_id
                )
            message.path.append(node)
            version = self._lookup(node)
            if version is not None:
                # Served here: hard-state leftovers continue explicitly,
                # soft-state ones die with the packet.
                leftovers, message.control = message.control, []
                if self.control_survives_serving:
                    self._send_control(
                        node, leftovers, trace_id=message.trace_id
                    )
                self._serve(node, message, version)
                return
            parent = sim.parent(node)
            if parent is None:
                # The root must hold the authoritative copy; reaching here
                # means the authority was not started - treat as served
                # with the authority's current version.
                leftovers, message.control = message.control, []
                if self.control_survives_serving:
                    self._send_control(
                        node, leftovers, trace_id=message.trace_id
                    )
                self._serve(node, message, sim.authority.current)
                return
            sim.transport.send(parent, message, sender=node)
        finally:
            self._carrier_trace = None

    def _serve(
        self, node: NodeId, message: QueryMessage, version: IndexVersion
    ) -> None:
        sim = self.sim
        position = len(message.path) - 1
        reply = ReplyMessage(
            key=sim.key,
            version=version,
            path=message.path,
            position=position,
            request_hops=message.hops,
            issued_at=message.issued_at,
        )
        reply.inherit_trace(message)
        sim.trace_annotate(
            message.trace_id, node, "serve", f"version={version.version}"
        )
        self._forward_reply(reply)

    def _handle_reply(self, node: NodeId, reply: ReplyMessage) -> None:
        sim = self.sim
        self._store_reply(node, reply.version)
        if reply.position == 0:
            sim.record_latency(
                reply.request_hops, reply.issued_at, trace_id=reply.trace_id
            )
            sim.note_read(reply.version)
            return
        self._forward_reply(reply)

    def _store_reply(self, node: NodeId, version: IndexVersion) -> None:
        """Path caching: cache the reply at every hop (PCX behaviour)."""
        sim = self.sim
        sim.cache(node).put(version, sim.env._now)

    def _forward_reply(self, reply: ReplyMessage) -> None:
        sim = self.sim
        # The forwarding hop: captured before ``position`` moves so the
        # span records who actually relayed the reply (churn may skip
        # intermediate path entries).
        sender = reply.path[reply.position]
        reply.position -= 1
        next_node = reply.path[reply.position]
        if not sim.alive(next_node):
            # The path broke under churn: skip the missing hop(s).
            while reply.position > 0 and not sim.alive(
                reply.path[reply.position]
            ):
                reply.position -= 1
            next_node = reply.path[reply.position]
            if not sim.alive(next_node):
                sim.transport.drop(
                    reply,
                    destination=next_node,
                    sender=sender,
                    reason="path",
                )
                sim.note_incomplete_query()
                return
        sim.transport.send(next_node, reply, sender=sender)

    # ---------------------------------------------------------------- control
    def _send_control(
        self,
        node: NodeId,
        payloads: list[object],
        trace_id: Optional[int] = None,
    ) -> None:
        """Send payloads explicitly to the parent, one charged hop each.

        Payloads are bundled into a single message so that their relative
        order is preserved at every hop; the hop is still charged once per
        payload.  ``trace_id`` tags the message with the span context of
        the query that produced the payloads (None for untraced traffic
        such as TTL-cycle maintenance).
        """
        if not payloads:
            return
        sim = self.sim
        parent = sim.parent(node)
        if parent is None:
            return
        message = ControlMessage(
            key=sim.key, payloads=list(payloads), sender=node
        )
        message.trace_id = trace_id
        channel = sim.reliable
        if self.reliable_delivery and channel is not None:
            channel.send(parent, message, sender=node, hops=len(payloads))
        else:
            sim.transport.send(parent, message, hops=len(payloads))

    def _handle_control(self, node: NodeId, message: ControlMessage) -> None:
        self._carrier_trace = message.trace_id
        try:
            continuations = self._process_control(
                node, message.payloads, explicit=True
            )
            self._send_control(
                node, continuations, trace_id=message.trace_id
            )
        finally:
            self._carrier_trace = None

    # -------------------------------------------------------------- dispatch
    def on_message(self, node: NodeId, message: Message) -> None:
        # Typed dispatch: TYPE_ID indexes the bound-handler table built
        # at bind() (query/reply/control/push).  Engine-consumed classes
        # carry ids past the table and fall through to the TypeError.
        try:
            handler = self._handlers[message.TYPE_ID]
        except IndexError:
            raise TypeError(f"unhandled message {message!r}") from None
        handler(node, message)

    def _handle_push(self, node: NodeId, message: PushMessage) -> None:
        """Push handling; passive schemes receive none."""
        raise TypeError(f"{self.name} received unexpected push {message!r}")
