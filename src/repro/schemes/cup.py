"""CUP: Controlled Update Propagation (Roussopoulos & Baker, USENIX '03).

The paper's comparison baseline.  Each node records which of its
search-tree children are interested in the index and pushes new versions
hop-by-hop down those branches ("each node needs to record the interests
of its neighboring nodes in the index search tree and push updated index
to them when necessary").

The crucial property, and the one the paper's Section II-B analysis rests
on, is that CUP's interest registrations are **soft state carried by the
query traffic**: a node (re-)registers with its parent when its queries
pass by, and a registration silently decays one TTL after its last
refresh.  A node that is kept warm by pushes stops emitting queries, so
the registrations above it decay and the push chain is *cut off* — the
node only notices at its next miss, which re-warms the chain for another
TTL.  Steady state for an interested node is therefore one miss roughly
every other TTL instead of every TTL: the ~50 % improvement ceiling the
paper derives ("the cost of CUP can at most be reduced to about 50 % of
that of PCX"), and the reason DUP — whose subscriptions are hard state
maintained by an explicit protocol — beats CUP by an order of magnitude
on latency in many configurations.

Registrations ride the ordinary query packets (an interest bit), so CUP's
control-message cost is zero here — a deliberately charitable accounting
for the baseline.  The idealized hard-state variant is available as
``cup-ideal`` for the ablation study.
"""

from __future__ import annotations

from typing import Optional

from repro.core.interest import InterestPolicy
from repro.net.message import CupRegister, PushMessage, QueryMessage
from repro.schemes.base import PathCachingScheme

NodeId = int


class CupScheme(PathCachingScheme):
    """Hop-by-hop push along soft-state interest registrations."""

    name = "cup"

    #: Registrations are soft state riding query packets; they lapse when
    #: the packet is served rather than continuing as explicit messages.
    control_survives_serving = False

    def __init__(self) -> None:
        super().__init__()
        # node -> {child -> time of the registration's last refresh}
        self._registered: dict[NodeId, dict[NodeId, float]] = {}
        self._trackers: dict[NodeId, InterestPolicy] = {}
        #: Graceful degradation: registration-table cap (0 = uncapped).
        self._max_subscribers = 0
        self._rejected_subscribers = 0

    def bind(self, sim) -> None:
        super().bind(sim)
        if self.overload is not None:
            self._max_subscribers = self.overload.plan.max_subscribers

    # -- interest and registration state ------------------------------------
    def tracker(self, node: NodeId) -> InterestPolicy:
        """The node's own interest policy instance (lazily created)."""
        tracker = self._trackers.get(node)
        if tracker is None:
            tracker = self.sim.make_interest_policy()
            self._trackers[node] = tracker
        return tracker

    def is_interested(self, node: NodeId) -> bool:
        """Whether ``node`` itself currently satisfies the interest policy."""
        return self.tracker(node).is_interested(self.sim.env.now)

    def live_registrations(self, node: NodeId) -> list[NodeId]:
        """Children whose registration with ``node`` has not decayed."""
        table = self._registered.get(node)
        if not table:
            return []
        now = self.sim.env.now
        ttl = self.sim.config.ttl
        stale = [c for c, at in table.items() if now - at >= ttl]
        for child in stale:
            del table[child]
        return list(table)

    def wants_updates(self, node: NodeId) -> bool:
        """Interested itself, or forwarding for live registered children."""
        if self.live_registrations(node):
            return True
        return self.is_interested(node)

    # -- hooks into the shared query engine -------------------------------------
    def _on_query_arrival(
        self, node: NodeId, packet: Optional[QueryMessage]
    ) -> list[object]:
        sim = self.sim
        tracker = self._trackers.get(node)
        if tracker is None:
            tracker = self.tracker(node)
        tracker.record(sim.env._now)
        if sim.is_root(node):
            return []
        # ``wants_updates`` must run unconditionally: ``live_registrations``
        # prunes decayed child entries as a side effect.
        if self.wants_updates(node):
            # Soft state: the interest bit rides this very packet (or the
            # explicit fallback when the query was a local hit) and
            # refreshes the parent's registration.
            return [CupRegister(node)]
        return []

    def _process_control(
        self, node: NodeId, payloads: list[object], explicit: bool
    ) -> list[object]:
        refreshed = False
        for payload in payloads:
            if isinstance(payload, CupRegister):
                self._trace_note(
                    node, "cup.register", f"child={payload.child}"
                )
                table = self._registered.setdefault(node, {})
                if (
                    self._max_subscribers
                    and payload.child not in table
                    and not self.sim.is_root(node)
                    and len(table) >= self._max_subscribers
                ):
                    # At capacity: refuse the new registration.  No NACK
                    # is needed — CUP registrations are soft state, so
                    # the child simply stays cold and re-registers with
                    # its next query once load (and the table) drains.
                    self._rejected_subscribers += 1
                    recorder = getattr(self.sim, "recorder", None)
                    if recorder is not None:
                        recorder.record(
                            "reject-subscriber",
                            node=node,
                            subject=payload.child,
                            detail=f"table={len(table)}",
                        )
                    continue
                table[payload.child] = self.sim.env.now
                refreshed = True
            else:  # pragma: no cover - defensive
                raise TypeError(f"CUP got foreign payload {payload!r}")
        if refreshed and not self.sim.is_root(node) and self.wants_updates(node):
            return [CupRegister(node)]
        return []

    @property
    def rejected_subscribers(self) -> int:
        """Registrations refused by capped nodes."""
        return self._rejected_subscribers

    # -- pushes ---------------------------------------------------------------
    def on_new_version(self, version) -> None:
        self._push_registered(self.sim.tree.root, version)

    def _handle_push(self, node: NodeId, message: PushMessage) -> None:
        sim = self.sim
        sim.cache(node).put(message.version, sim.env.now)
        self._push_registered(
            node, message.version, trace_id=message.trace_id
        )

    def _push_registered(
        self, node: NodeId, version, trace_id: Optional[int] = None
    ) -> None:
        sim = self.sim
        for child in self.live_registrations(node):
            if not sim.alive(child):
                self._registered.get(node, {}).pop(child, None)
                continue
            push = PushMessage(key=sim.key, version=version, sender=node)
            push.trace_id = trace_id
            sim.transport.send(child, push)

    # -- churn ----------------------------------------------------------------
    def on_node_left(self, node: NodeId) -> None:
        self._forget(node)
        super().on_node_left(node)

    def on_node_failed(self, node: NodeId) -> None:
        self._forget(node)
        super().on_node_failed(node)

    def on_root_failed(self, new_root: NodeId) -> None:
        """Authority failure: registrations with the old root are lost.

        CUP's soft state needs no explicit repair — children of the new
        root re-register on their next interested query, and until then
        the push chain is simply cut off (exactly CUP's behaviour under
        any broken registration).
        """
        old_root = self.sim.tree.root
        self._registered.pop(old_root, None)
        self._trackers.pop(old_root, None)
        super().on_root_failed(new_root)

    def _forget(self, node: NodeId) -> None:
        self._registered.pop(node, None)
        self._trackers.pop(node, None)
        parent = self.sim.parent(node)
        if parent is not None:
            self._registered.get(parent, {}).pop(node, None)
