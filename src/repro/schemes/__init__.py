"""Index caching / update propagation schemes.

- :class:`~repro.schemes.pcx.PcxScheme` — Path Caching with eXpiration,
  the paper's passive baseline.
- :class:`~repro.schemes.cup.CupScheme` — Controlled Update Propagation
  (Roussopoulos & Baker): hop-by-hop pushes along the search tree.
- :class:`~repro.schemes.dup.DupScheme` — the paper's contribution: pushes
  along the dynamic update propagation tree, skipping uninterested
  intermediate nodes.
- :class:`~repro.schemes.nocache.NoCacheScheme` — no caching at all
  (analytical lower baseline for ablations).
- :class:`~repro.schemes.pushall.PushAllScheme` — SCRIBE-style full-tree
  dissemination every cycle (upper push-cost extreme for ablations).
"""

from repro.schemes.base import PathCachingScheme, Scheme
from repro.schemes.cup import CupScheme
from repro.schemes.cup_ideal import CupIdealScheme
from repro.schemes.cup_popularity import CupPopularityScheme
from repro.schemes.dup import DupScheme
from repro.schemes.dup_invalidate import DupInvalidateScheme
from repro.schemes.nocache import NoCacheScheme
from repro.schemes.pcx import PcxScheme
from repro.schemes.pushall import PushAllScheme
from repro.schemes.registry import available_schemes, make_scheme

__all__ = [
    "CupIdealScheme",
    "CupPopularityScheme",
    "CupScheme",
    "DupInvalidateScheme",
    "DupScheme",
    "NoCacheScheme",
    "PathCachingScheme",
    "PcxScheme",
    "PushAllScheme",
    "Scheme",
    "available_schemes",
    "make_scheme",
]
