"""CUP-popularity: forwarding gated purely on observed branch traffic.

A third reading of CUP's "based on the benefit and the overhead of
pushing the updates, each node determines whether to push the index
update further down the tree": each node keeps a per-child counter of
queries that *actually arrived* from that branch and forwards pushes only
down branches whose counter beats the threshold — no registration
messages at all, not even piggybacked bits.

This is the most conservative CUP imaginable, and it degenerates: a
node's counter only sees downstream *misses*, and pushes prevent exactly
those misses, so the evidence that justifies a push chain evaporates as
soon as the chain works.  Only branches aggregating more than ``c``
misses per window (dense subtrees) keep receiving pushes.  The ablation
suite uses it to bracket the CUP design space:

``cup-popularity``  <=  ``cup`` (soft-state registrations)  <=
``cup-ideal`` (hard state)  —  with DUP beating all three.
"""

from __future__ import annotations

from typing import Optional

from repro.core.interest import WindowInterestPolicy
from repro.net.message import PushMessage, QueryMessage
from repro.schemes.base import PathCachingScheme

NodeId = int


class CupPopularityScheme(PathCachingScheme):
    """Push forwarding gated on raw per-branch query counts."""

    name = "cup-popularity"

    def __init__(self) -> None:
        super().__init__()
        # node -> {child -> sliding-window counter of queries from child}
        self._branches: dict[NodeId, dict[NodeId, WindowInterestPolicy]] = {}

    # -- popularity tracking -------------------------------------------------
    def branch_counter(
        self, node: NodeId, child: NodeId
    ) -> WindowInterestPolicy:
        """The counter ``node`` keeps for queries arriving from ``child``."""
        branches = self._branches.setdefault(node, {})
        counter = branches.get(child)
        if counter is None:
            counter = WindowInterestPolicy(
                self.sim.config.ttl, self.sim.config.threshold_c
            )
            branches[child] = counter
        return counter

    def branch_is_popular(self, node: NodeId, child: NodeId) -> bool:
        """Whether ``node`` currently considers ``child``'s branch popular."""
        counter = self._branches.get(node, {}).get(child)
        if counter is None:
            return False
        return counter.is_interested(self.sim.env.now)

    # -- hooks into the shared query engine -------------------------------------
    def _on_query_arrival(
        self, node: NodeId, packet: Optional[QueryMessage]
    ) -> list[object]:
        if packet is not None:
            # The packet's path still ends at the previous hop here.
            child = packet.path[-1]
            self.branch_counter(node, child).record(self.sim.env.now)
        return []

    # -- pushes ---------------------------------------------------------------
    def on_new_version(self, version) -> None:
        self._push_popular_branches(self.sim.tree.root, version)

    def _handle_push(self, node: NodeId, message: PushMessage) -> None:
        sim = self.sim
        sim.cache(node).put(message.version, sim.env.now)
        self._push_popular_branches(
            node, message.version, trace_id=message.trace_id
        )

    def _push_popular_branches(
        self, node: NodeId, version, trace_id: Optional[int] = None
    ) -> None:
        sim = self.sim
        now = sim.env.now
        branches = self._branches.get(node)
        if not branches:
            return
        for child in list(branches):
            counter = branches[child]
            if not counter.is_interested(now):
                if counter.count(now) == 0:
                    del branches[child]  # fully decayed: free the counter
                continue
            if not sim.alive(child):
                del branches[child]
                continue
            push = PushMessage(key=sim.key, version=version, sender=node)
            push.trace_id = trace_id
            sim.transport.send(child, push)

    # -- churn ----------------------------------------------------------------
    def on_node_left(self, node: NodeId) -> None:
        self._forget(node)
        super().on_node_left(node)

    def on_node_failed(self, node: NodeId) -> None:
        self._forget(node)
        super().on_node_failed(node)

    def _forget(self, node: NodeId) -> None:
        self._branches.pop(node, None)
        parent = self.sim.parent(node)
        if parent is not None:
            self._branches.get(parent, {}).pop(node, None)
