"""No-cache baseline: every query travels all the way to the authority.

Not part of the paper's comparison, but a useful analytical anchor for the
ablation benchmarks: its latency equals the mean node depth and its cost
exactly twice that, independent of the workload.

In the paper's hop-cost model this scheme is also exactly the
*polling-based strong consistency* approach of Section I ("every time a
node requests a data item and there is a cached copy, it first contacts
the server to validate the cached copy"): a validation round trip to the
authority costs the same hops as a fresh fetch, which is why the paper
dismisses polling as generating "significant network traffic" and builds
on TTL/invalidation instead.
"""

from __future__ import annotations

from typing import Optional

from repro.index.entry import IndexVersion
from repro.schemes.base import PathCachingScheme

NodeId = int


class NoCacheScheme(PathCachingScheme):
    """Path caching disabled: only the authority ever serves."""

    name = "nocache"

    def _lookup(self, node: NodeId) -> Optional[IndexVersion]:
        """Only the authority serves."""
        if self.sim.is_root(node):
            return self.sim.lookup(node)
        return None

    def _store_reply(self, node: NodeId, version: IndexVersion) -> None:
        """Replies are consumed, never cached."""
