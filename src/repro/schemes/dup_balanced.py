"""``dup-balanced``: DUP with subscriber-load splitting at capped nodes.

Extends PR 7's fanout-cap refusal into true load balancing: an interior
node at its ``max_subscribers`` cap *splits* — it promotes the
best-ranked entry of its own subscriber list to relay duty for the new
subscriber instead of redirecting the subscribe to its parent.  Load
moves down and the DUP tree widens; when the node's fanout later drains
below the cap, delegated subjects are reabsorbed and the split
dissolves.  The decision logic lives in
:class:`repro.core.balance.DupBalancer` (a pure state machine, shared
with the property-test suite); this adapter wires it to the engine's
transport, leases, flight recorder, and churn events.

With the cap disabled (``max_subscribers == 0``) or never binding, the
code path is byte-identical to plain ``dup`` — the differential suite
proves the below-cap runs bit-identical.
"""

from __future__ import annotations

from repro.core.balance import DupBalancer
from repro.core.protocol import StepResult
from repro.net.message import ControlMessage, LeaseRefresh, Subscribe
from repro.schemes.dup import DupScheme

NodeId = int


class DupBalancedScheme(DupScheme):
    """DUP with split/reabsorb load balancing at the fanout cap."""

    name = "dup-balanced"

    def __init__(self) -> None:
        super().__init__()
        self._balancer: DupBalancer | None = None

    def bind(self, sim) -> None:
        super().bind(sim)
        self._balancer = DupBalancer(
            self.protocol,
            self._max_subscribers,
            redirected=self._redirected,
            alive=sim.alive,
            is_root=sim.is_root,
            send_down=self._send_sideways,
            on_reject=self._on_reject,
            note_lease=self._note_lease_activity,
            record=self._record,
            trace=self._trace_note,
        )

    # -- the capped-control pipeline -----------------------------------------
    def _degrade_control(self, node: NodeId, payload: object, combined) -> bool:
        # The balancer owns the whole capped pipeline (delegation
        # payloads, delegated-subject routing, redirect relaying, and
        # split-or-refuse); the base refusal flow is subsumed.
        return self._balancer.handle(node, payload, combined)

    def _process_control(
        self, node: NodeId, payloads: list[object], explicit: bool
    ) -> list[object]:
        upstream = super()._process_control(node, payloads, explicit)
        if self._max_subscribers:
            extra = self._balancer.rebalance(node)
            if extra is not None:
                if (
                    extra.new_subscribers
                    and self.sim.config.immediate_push
                    and self.protocol.in_dup_tree(node)
                ):
                    # A reabsorbed subject switches pusher; hand it the
                    # current index so the handover leaves no gap.
                    self._push_current(node, extra.new_subscribers)
                upstream.extend(extra.upstream)
        return upstream

    def _on_reject(self, node: NodeId, subject: NodeId) -> None:
        """The balancer fell back to the PR-7 refusal (no candidate)."""
        self._rejected_subscribers += 1
        self._record(
            "reject-subscriber",
            node=node,
            subject=subject,
            detail="no-delegate",
        )
        self._trace_note(node, "dup.reject-subscriber", f"subject={subject}")
        self._send_nack(node, subject)

    def _send_sideways(
        self, sender: NodeId, target: NodeId, payload: object
    ) -> None:
        """Point-to-point control hop off the parent chain.

        Delegation is hard state like the rest of DUP's control traffic,
        so it rides the reliable channel when one exists.
        """
        sim = self.sim
        if not sim.alive(target):
            return
        message = ControlMessage(
            key=sim.key, payloads=[payload], sender=sender
        )
        message.trace_id = self._carrier_trace
        channel = sim.reliable
        if self.reliable_delivery and channel is not None:
            channel.send(target, message, sender=sender, hops=1)
        else:
            sim.transport.send(target, message, hops=1)

    # -- leases ------------------------------------------------------------------
    def _handle_lease_refresh(
        self, node: NodeId, payload: LeaseRefresh, combined: StepResult
    ) -> None:
        if self._max_subscribers:
            delegate = self._balancer.delegate_for(node, payload.subject)
            if (
                delegate is not None
                and payload.subject not in self.protocol.s_list(node)
            ):
                # The subject's entry (and lease) lives at the delegate:
                # forward the refresh there, unreliably like all lease
                # traffic.
                sim = self.sim
                if sim.alive(delegate):
                    message = ControlMessage(
                        key=sim.key, payloads=[payload], sender=node
                    )
                    sim.transport.send(delegate, message)
                return
        super()._handle_lease_refresh(node, payload, combined)

    # -- churn -------------------------------------------------------------------
    def on_node_left(self, node: NodeId) -> None:
        parent = self.sim.tree.parent(node)
        orphans = (
            self._balancer.node_gone(node) if self._max_subscribers else []
        )
        super().on_node_left(node)
        self._rehome_orphans(orphans, node)
        self._shed_adoption_overflow(parent)

    def _shed_adoption_overflow(self, parent: "NodeId | None") -> None:
        """Re-cap a parent that wholesale-adopted a departed child's list."""
        if not self._max_subscribers or parent is None:
            return
        sim = self.sim
        if parent not in sim.tree or not sim.alive(parent):
            return
        extra = self._balancer.shed_overflow(parent)
        if extra is not None:
            self._send_control(parent, extra.upstream)

    def on_node_failed(self, node: NodeId) -> None:
        orphans = (
            self._balancer.node_gone(node) if self._max_subscribers else []
        )
        super().on_node_failed(node)
        self._rehome_orphans(orphans, node)

    def on_root_failed(self, new_root: NodeId) -> None:
        old_root = self.sim.tree.root
        orphans = (
            self._balancer.node_gone(old_root)
            if self._max_subscribers
            else []
        )
        super().on_root_failed(new_root)
        self._rehome_orphans(orphans, old_root)

    def _rehome_orphans(
        self, orphans: list[tuple[NodeId, NodeId]], dead: NodeId
    ) -> None:
        """Re-home subjects stripped from a gone delegate.

        Each orphan returns to its delegator, which absorbs it when
        under the cap, re-delegates when a candidate exists, and falls
        back to the PR-7 parent redirect otherwise (no NACK — the
        subject did nothing wrong).
        """
        if not orphans:
            return
        sim = self.sim
        protocol = self.protocol
        balancer = self._balancer
        for delegator, subject in orphans:
            if subject == dead or not sim.alive(delegator):
                continue
            if not sim.alive(subject):
                continue
            s_list = protocol.s_list(delegator)
            if subject in s_list:
                continue
            if (
                sim.is_root(delegator)
                or balancer.fanout(delegator) < self._max_subscribers
            ):
                self._record(
                    "delegate-rehome",
                    node=delegator,
                    subject=subject,
                    detail="absorbed",
                )
                subscribe = Subscribe(subject)
                result = protocol.step(delegator, subscribe)
                self._note_lease_activity(delegator, subscribe)
                if (
                    result.new_subscribers
                    and sim.config.immediate_push
                    and protocol.in_dup_tree(delegator)
                ):
                    self._push_current(delegator, result.new_subscribers)
                self._send_control(delegator, result.upstream)
                continue
            target = balancer.choose_delegate(delegator, subject)
            if target is not None:
                self._record(
                    "delegate-rehome",
                    node=delegator,
                    subject=subject,
                    detail=f"delegate={target}",
                )
                balancer.delegate(delegator, subject, target)
                continue
            self._record(
                "delegate-rehome",
                node=delegator,
                subject=subject,
                detail="redirected",
            )
            self._redirected.setdefault(delegator, set()).add(subject)
            self._send_control(delegator, [Subscribe(subject)])

    # -- introspection --------------------------------------------------------
    @property
    def split_subscribers(self) -> int:
        """Subscribes delegated sideways instead of refused."""
        return self._balancer.splits if self._balancer is not None else 0

    @property
    def reabsorbed_subscribers(self) -> int:
        """Delegated subjects taken back after load drained."""
        return self._balancer.reabsorbed if self._balancer is not None else 0

    @property
    def balancer(self) -> DupBalancer | None:
        """The underlying balancer (tests and experiments introspect it)."""
        return self._balancer
