"""DUP-invalidate: pushing invalidations instead of updated indices.

The paper's design argument (Section I): "because the index size is very
small, to do cache invalidation, the updated index should be sent so that
caching nodes need not request for the updated index again."  This scheme
is the road not taken — identical DUP machinery (interest, subscriptions,
dynamic tree, direct pushes), but the push carries only an *invalidation*
marker: the subscriber drops its cached copy and must re-fetch on its
next query.

It provides strong-consistency semantics for subscribers (they can never
serve a copy older than the last invalidation) at the cost the paper
predicts: every subscriber pays a fetch round trip per cycle that
DUP-update avoids.  The ``ablation-invalidate`` benchmark quantifies the
gap.
"""

from __future__ import annotations

from typing import Optional

from repro.net.message import PushMessage
from repro.schemes.dup import DupScheme

NodeId = int


class _InvalidationMarker:
    """Sentinel payload carried by invalidation pushes."""

    __slots__ = ("version_number",)

    def __init__(self, version_number: int):
        self.version_number = version_number

    def __repr__(self) -> str:
        return f"Invalidate(v{self.version_number})"


class DupInvalidateScheme(DupScheme):
    """DUP with invalidation pushes instead of update pushes."""

    name = "dup-invalidate"

    def on_new_version(self, version) -> None:
        marker = _InvalidationMarker(version.version)
        self._push_to_targets(self.sim.tree.root, marker)

    def _handle_push(self, node: NodeId, message: PushMessage) -> None:
        sim = self.sim
        if isinstance(message.version, _InvalidationMarker):
            # Drop the local copy; the next query will re-fetch.
            sim.cache(node).invalidate(sim.key)
        else:
            # Immediate push of a concrete version (explicit-subscribe
            # bootstrap) still delivers data.
            sim.cache(node).put(message.version, sim.env.now)
        if self.protocol.is_subscribed(node) and not self.is_interested(node):
            result = self.protocol.drop_subscription(node)
            self._send_control(
                node, result.upstream, trace_id=message.trace_id
            )
        self._push_to_targets(
            node, message.version, trace_id=message.trace_id
        )

    def _push_to_targets(
        self, node: NodeId, payload, trace_id: Optional[int] = None
    ) -> None:
        sim = self.sim
        for target in self.protocol.push_targets(node):
            if not sim.alive(target):
                continue
            push = PushMessage(key=sim.key, version=payload, sender=node)
            push.trace_id = trace_id
            sim.transport.send(target, push)
