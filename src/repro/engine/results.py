"""Result containers: single runs, replications, and scheme comparisons."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.metrics.report import MetricsReport
from repro.stats.confidence import ConfidenceInterval, mean_confidence_interval

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.config import SimulationConfig


@dataclass(frozen=True)
class SimulationResult:
    """All outputs of one simulation run.

    The two headline numbers are ``mean_latency`` (request hops to a valid
    index) and ``cost_per_query`` (total message hops / queries), matching
    the paper's metrics.
    """

    config: "SimulationConfig"
    scheme: str
    queries: int
    mean_latency: float
    latency_ci: Optional[ConfidenceInterval]
    cost_per_query: float
    hit_rate: float
    hop_breakdown: Mapping[str, int]
    dropped_messages: int
    incomplete_queries: int
    final_population: int
    wall_seconds: float
    extras: Mapping[str, object] = field(default_factory=dict)
    latency_percentiles: Mapping[str, float] = field(default_factory=dict)
    stale_read_fraction: float = math.nan

    @property
    def report(self) -> MetricsReport:
        """The standard metrics view of this run."""
        ci = self.latency_ci or ConfidenceInterval(
            self.mean_latency, math.nan, 0.95, self.queries
        )
        return MetricsReport(
            scheme=self.scheme,
            queries=self.queries,
            mean_latency=self.mean_latency,
            latency_ci=ci,
            cost_per_query=self.cost_per_query,
            hit_rate=self.hit_rate,
            hop_breakdown=self.hop_breakdown,
            latency_percentiles=self.latency_percentiles,
            dropped=self.dropped_messages,
            give_ups=int(self.extras.get("delivery_give_ups", 0)),
            stale_read_fraction=self.stale_read_fraction,
        )

    def __str__(self) -> str:
        return str(self.report)


@dataclass(frozen=True)
class ReplicatedResult:
    """Aggregation of one configuration over independent replications."""

    scheme: str
    runs: Sequence[SimulationResult]
    latency: ConfidenceInterval
    cost: ConfidenceInterval
    hit_rate: float

    @classmethod
    def from_runs(cls, runs: Sequence[SimulationResult]) -> "ReplicatedResult":
        """Aggregate replications with Student-t confidence intervals."""
        if not runs:
            raise ValueError("need at least one run")
        latencies = [run.mean_latency for run in runs]
        costs = [run.cost_per_query for run in runs]
        hit_rates = [run.hit_rate for run in runs]
        return cls(
            scheme=runs[0].scheme,
            runs=tuple(runs),
            latency=mean_confidence_interval(latencies),
            cost=mean_confidence_interval(costs),
            hit_rate=sum(hit_rates) / len(hit_rates),
        )

    def __str__(self) -> str:
        return (
            f"[{self.scheme} x{len(self.runs)}] latency={self.latency} "
            f"cost={self.cost} hit_rate={self.hit_rate:.3g}"
        )


@dataclass(frozen=True)
class ComparisonResult:
    """Several schemes on the same workload (paired random seeds).

    ``relative_cost[s]`` is the per-replication ratio of scheme ``s``'s
    cost to PCX's cost on the *same seed*, aggregated over replications —
    exactly what the paper's "relative cost compared to PCX" figures plot.
    """

    by_scheme: Mapping[str, ReplicatedResult]
    relative_cost: Mapping[str, ConfidenceInterval]
    baseline: str = "pcx"

    def latency(self, scheme: str) -> ConfidenceInterval:
        """Latency CI of one scheme."""
        return self.by_scheme[scheme].latency

    def cost(self, scheme: str) -> ConfidenceInterval:
        """Absolute cost CI of one scheme."""
        return self.by_scheme[scheme].cost

    @property
    def schemes(self) -> tuple[str, ...]:
        """Compared scheme names."""
        return tuple(self.by_scheme)

    def __str__(self) -> str:
        lines = []
        for name, result in self.by_scheme.items():
            rel = self.relative_cost.get(name)
            rel_text = f" rel_cost={rel}" if rel is not None else ""
            lines.append(f"{result}{rel_text}")
        return "\n".join(lines)
