"""Streaming sweep telemetry: JSONL export and the ``top`` text view.

The parallel engine emits one structured
:class:`~repro.engine.parallel.ProgressEvent` per finished (or failed)
trial.  :class:`TelemetryWriter` streams those events — plus optional
tree-evolution timeline records — to an append-only JSONL file, flushed
per line so a live run can be tailed.  :func:`render_top` folds the same
stream back into a one-screen dashboard (per-experiment progress, ETA,
worker utilization, rolling latency/cost gauges) for the ``repro-dup
top`` subcommand.

The stream reuses the repo-wide JSONL conventions of
:mod:`repro.metrics.export`: one object per line, a ``"type"``
discriminator per record (``progress``, ``trial-failure``, ``timeline``,
``flight-event``…), NaN/inf serialized as ``null``.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Mapping, Optional, Sequence

from repro.metrics.export import _clean


class TelemetryWriter:
    """Append-only JSONL sink for progress events and timeline records.

    Usable directly as the parallel engine's event sink::

        writer = TelemetryWriter("sweep.jsonl")
        set_default_event_sink(writer)
        try:
            ...  # run sweeps
        finally:
            set_default_event_sink(None)
            writer.close()

    Every record is flushed as soon as it is written, so ``repro-dup top
    sweep.jsonl`` (or a plain ``tail -f``) tracks a live run.
    """

    def __init__(self, path: str):
        self.path = path
        self.written = 0
        self._handle = open(path, "w", encoding="utf-8")

    def __call__(self, event) -> None:
        """Sink one :class:`~repro.engine.parallel.ProgressEvent`."""
        self.write_record(event.to_record())

    def write_record(self, record: Mapping) -> None:
        """Append one JSONL record and flush."""
        if self._handle.closed:
            raise ValueError(f"telemetry writer for {self.path} is closed")
        self._handle.write(json.dumps(_clean(dict(record)), sort_keys=True))
        self._handle.write("\n")
        self._handle.flush()
        self.written += 1

    def write_records(self, records: Iterable[Mapping]) -> int:
        """Append many records (e.g. ``timeline.records()``)."""
        count = 0
        for record in records:
            self.write_record(record)
            count += 1
        return count

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _coerce_records(records: Iterable) -> list[dict]:
    out = []
    for record in records:
        if hasattr(record, "to_record"):
            record = record.to_record()
        out.append(dict(record))
    return out


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None or not isinstance(value, (int, float)):
        return "?"
    if not math.isfinite(value):
        return "?"
    value = max(0.0, float(value))
    if value < 60:
        return f"{value:.0f}s"
    minutes, seconds = divmod(int(value), 60)
    if minutes < 60:
        return f"{minutes}m{seconds:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def _bar(fraction: float, width: int = 24) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


def render_top(records: Iterable, tail: int = 5) -> str:
    """Fold a telemetry stream into a one-screen ``top``-style view.

    ``records`` may be raw JSONL dicts (from
    :func:`repro.metrics.export.read_jsonl`) or live
    :class:`~repro.engine.parallel.ProgressEvent` objects; only
    ``progress`` records drive the view, other record types are counted
    but not rendered.  The latest event per experiment wins, so the view
    is stable regardless of how often it is re-rendered.
    """
    records = _coerce_records(records)
    progress = [r for r in records if r.get("type") == "progress"]
    timeline = sum(1 for r in records if r.get("type") == "timeline")
    flight = sum(1 for r in records if r.get("type") == "flight-event")
    if not progress:
        extra = []
        if timeline:
            extra.append(f"{timeline} timeline record(s)")
        if flight:
            extra.append(f"{flight} flight event(s)")
        suffix = f" ({', '.join(extra)})" if extra else ""
        return f"no progress events yet{suffix}"

    by_experiment: dict[str, dict] = {}
    for record in progress:
        by_experiment[record.get("experiment") or "?"] = record

    lines = []
    total_done = sum(r.get("done", 0) for r in by_experiment.values())
    total_failed = sum(r.get("failed", 0) for r in by_experiment.values())
    total_all = sum(r.get("total", 0) for r in by_experiment.values())
    latest = progress[-1]
    lines.append(
        f"sweep progress: {total_done}/{total_all} trials done"
        + (f", {total_failed} failed" if total_failed else "")
        + f" | workers={latest.get('workers', '?')}"
        + f" util={100.0 * (latest.get('utilization') or 0.0):.0f}%"
        + f" elapsed={_fmt_seconds(latest.get('elapsed_seconds'))}"
    )
    for experiment in sorted(by_experiment):
        record = by_experiment[experiment]
        done = record.get("done", 0)
        failed = record.get("failed", 0)
        total = record.get("total", 0) or 1
        fraction = (done + failed) / total
        gauges = []
        if isinstance(record.get("mean_latency"), (int, float)):
            gauges.append(f"lat={record['mean_latency']:.2f}")
        if isinstance(record.get("cost_per_query"), (int, float)):
            gauges.append(f"cost={record['cost_per_query']:.2f}")
        # Overload gauges ride the same records; NaN (no overload
        # layer) serializes to null and fails the isinstance check.
        if isinstance(record.get("shed_fraction"), (int, float)):
            gauges.append(f"shed={record['shed_fraction']:.3f}")
        if isinstance(record.get("max_queue_depth"), (int, float)):
            gauges.append(f"qdepth={record['max_queue_depth']:.0f}")
        # Fluctuation gauges: same NaN-serializes-to-null convention.
        if isinstance(record.get("down_nodes"), (int, float)):
            gauges.append(f"down={record['down_nodes']:.0f}")
        if isinstance(record.get("flap_suppressed"), (int, float)):
            gauges.append(f"flap={record['flap_suppressed']:.0f}")
        lines.append(
            f"  {experiment:<16} [{_bar(fraction)}] {done}/{total}"
            + (f" !{failed}" if failed else "")
            + f" eta={_fmt_seconds(record.get('eta_seconds'))}"
            + (f" {' '.join(gauges)}" if gauges else "")
        )
    lines.append("recent trials:")
    for record in progress[-tail:]:
        marker = "FAIL" if record.get("kind") == "trial-failed" else "done"
        detail = record.get("error") or (
            f"{_fmt_seconds(record.get('wall_seconds'))}"
        )
        lines.append(f"  [{marker}] {record.get('trial', '?')} {detail}")
    if timeline or flight:
        lines.append(
            f"also in stream: {timeline} timeline record(s), "
            f"{flight} flight event(s)"
        )
    return "\n".join(lines)
