"""Wiring of one simulation run.

:class:`Simulation` builds the topology, transport, caches, scheme,
authority, and workload from a :class:`~repro.engine.config.SimulationConfig`,
runs the event loop for the configured horizon, and collects the paper's
two metrics into a :class:`~repro.engine.results.SimulationResult`.

It also serves as the narrow facade schemes program against: clock
(``env``), topology (``tree``, ``parent``, ``is_root``, ``alive``),
messaging (``transport``), state (``cache``, ``lookup``), metrics
(``record_latency``, ``ledger``, ``registry``), and tracing
(``trace_begin``, ``trace_annotate``).

Observability is wired here: every run owns a
:class:`~repro.metrics.registry.MetricsRegistry` fronting the cost
ledger, latency recorder, transport, and population as live gauges
(``enable_snapshots`` samples it periodically), and
:meth:`Simulation.enable_tracing` attaches a
:class:`~repro.engine.tracing.TraceCollector` that reconstructs every
query's causal chain from the transport observer tap.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.interest import EwmaInterestPolicy, WindowInterestPolicy
from repro.engine.config import SimulationConfig
from repro.engine.results import SimulationResult
from repro.errors import ConfigError
from repro.index.authority import Authority
from repro.index.cache import IndexCache
from repro.index.entry import IndexVersion
from repro.metrics.counters import CostLedger
from repro.metrics.latency import LatencyRecorder
from repro.metrics.registry import MetricsRegistry
from repro.net.faults import FaultInjector
from repro.net.message import AckMessage, Category, Message, ReplyMessage
from repro.net.reliable import ReliableChannel
from repro.net.transport import Transport, TransportEvent
from repro.schemes.registry import make_scheme
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams
from repro.stats.distributions import Exponential
from repro.topology.chord import ChordRing
from repro.topology.chord_tree import chord_search_tree
from repro.topology.can import CanOverlay, can_search_tree
from repro.topology.generators import (
    chain_tree,
    complete_tree,
    random_search_tree,
    star_tree,
)
from repro.topology.tree import SearchTree
from repro.workload.arrivals import make_arrival_process
from repro.workload.churn import ChurnEvent, ChurnProcess
from repro.workload.selection import ZipfNodeSelector

NodeId = int


class Simulation:
    """One end-to-end simulation run (build once, :meth:`run` once)."""

    def __init__(self, config: SimulationConfig):
        config.validate()
        self.config = config
        self.streams = RandomStreams(config.seed)
        self.env = Environment()
        self.tree, self.key = self._build_topology()
        self.ledger = CostLedger(
            clock=lambda: self.env.now,
            warmup=config.warmup,
            count_keepalive=config.count_keepalive,
        )
        self.latency = LatencyRecorder(
            clock=lambda: self.env.now,
            warmup=config.warmup,
            keep_samples=config.keep_latency_samples,
        )
        # -- fault layer: only constructed when a plan asks for it, so a
        # fault-free run is bit-identical to one without the layer.
        self.injector: Optional[FaultInjector] = None
        if config.faults is not None and config.faults.enabled:
            self.injector = FaultInjector(
                config.faults, self.streams, clock=lambda: self.env.now
            )
        self.transport = Transport(
            env=self.env,
            latency=Exponential(config.hop_latency_mean),
            rng=self.streams.get("latency"),
            ledger=self.ledger,
            injector=self.injector,
        )
        self.transport.bind(self._dispatch)
        self.reliable: Optional[ReliableChannel] = None
        if config.retry_budget > 0:
            self.reliable = ReliableChannel(
                env=self.env,
                transport=self.transport,
                retry_budget=config.retry_budget,
                base_timeout=config.ack_timeout,
                backoff=config.retry_backoff,
                on_give_up=self._on_delivery_give_up,
                functioning=self.functioning,
            )
        self._caches: dict[NodeId, IndexCache] = {}
        self._incomplete = 0
        self._reads = 0
        self._stale_reads = 0
        self._suspicions = 0
        self._detection_latency = None
        self._pending_suspicions: set[tuple[NodeId, NodeId]] = set()
        if self.injector is not None:
            self.transport.add_observer(self._observe_fault_drops)
        self._next_node_id = max(self.tree.nodes) + 1
        eligible = [
            node
            for node in self.tree.nodes
            if config.root_queries or node != self.tree.root
        ]
        self.selector = ZipfNodeSelector(
            eligible, config.zipf_theta, self.streams.get("placement")
        )
        self.scheme = make_scheme(config.scheme)
        self.scheme.bind(self)
        self.authority: Optional[Authority] = None
        self._monitor = None
        self._trace = None
        self._ran = False
        self.tracer = None
        self.registry = MetricsRegistry(clock=lambda: self.env.now)
        self._register_standard_metrics()

    def _register_standard_metrics(self) -> None:
        registry = self.registry
        for category in Category:
            registry.gauge(
                f"hops.{category.value}",
                lambda category=category: self.ledger.hops(category),
            )
        registry.gauge("hops.total", lambda: self.ledger.total_hops)
        registry.gauge("latency.count", lambda: self.latency.count)
        registry.gauge("latency.mean", lambda: self.latency.mean)
        registry.gauge("latency.hit_rate", lambda: self.latency.hit_rate)
        if self.config.keep_latency_samples:
            for q in (50, 95, 99):
                registry.gauge(
                    f"latency.p{q}", lambda q=q: self.latency.percentile(q)
                )
        registry.gauge("transport.dropped", lambda: self.transport.dropped)
        registry.gauge("queries.incomplete", lambda: self._incomplete)
        registry.gauge("population", lambda: float(len(self.tree)))
        registry.gauge("reads.total", lambda: float(self._reads))
        registry.gauge("reads.stale", lambda: float(self._stale_reads))
        registry.gauge("reads.stale_fraction", lambda: self.stale_read_fraction)
        injector = self.injector
        if injector is not None:
            registry.gauge(
                "faults.injected_losses", lambda: injector.injected_losses
            )
            registry.gauge(
                "faults.injected_duplicates",
                lambda: injector.injected_duplicates,
            )
            registry.gauge("faults.blackholed", lambda: injector.blackholed)
            if injector.plan.silent_failures:
                self._detection_latency = registry.histogram(
                    "faults.detection_latency"
                )
                registry.gauge(
                    "faults.undetected",
                    lambda: float(len(injector.undetected())),
                )
                registry.gauge("faults.suspicions", lambda: self._suspicions)
        channel = self.reliable
        if channel is not None:
            registry.gauge("reliable.retries", lambda: channel.retries)
            registry.gauge("reliable.acked", lambda: channel.acked)
            registry.gauge("reliable.give_ups", lambda: channel.give_ups)
            registry.gauge("reliable.outstanding", lambda: channel.outstanding)
        if self.config.lease_ttl > 0 and hasattr(
            self.scheme, "lease_expiries"
        ):
            registry.gauge(
                "leases.expired", lambda: float(self.scheme.lease_expiries)
            )

    # -- construction helpers -----------------------------------------------
    def _build_topology(self) -> tuple[SearchTree, int]:
        config = self.config
        rng = self.streams.get("topology")
        if config.topology == "random-tree":
            return random_search_tree(config.num_nodes, config.max_degree, rng), 0
        if config.topology == "chord":
            ring = ChordRing.random(config.num_nodes, rng, bits=32)
            key = int(rng.integers(0, 1 << 32))
            return chord_search_tree(ring, key), key
        if config.topology == "can":
            overlay = CanOverlay.random(config.num_nodes, rng, dimensions=2)
            key = int(rng.integers(0, 1 << 32))
            return can_search_tree(overlay, key), key
        if config.topology == "balanced":
            return complete_tree(config.num_nodes, config.max_degree), 0
        if config.topology == "chain":
            return chain_tree(config.num_nodes), 0
        if config.topology == "star":
            return star_tree(config.num_nodes), 0
        raise ConfigError(f"unknown topology {config.topology!r}")

    # -- facade used by schemes ------------------------------------------------
    def is_root(self, node: NodeId) -> bool:
        """Whether ``node`` is the current authority (tree root)."""
        return node == self.tree.root

    def parent(self, node: NodeId) -> Optional[NodeId]:
        """Parent on the index search tree (``None`` at the root)."""
        if node not in self.tree:
            return None
        return self.tree.parent(node)

    def alive(self, node: NodeId) -> bool:
        """Whether ``node`` is currently part of the overlay.

        This is the *schemes'* view: a silently failed node is still a
        member until some survivor detects the crash, so schemes keep
        sending to it and the transport blackholes the traffic.
        """
        return node in self.tree

    def functioning(self, node: NodeId) -> bool:
        """Whether ``node`` is alive *and* actually responding.

        The engine-internal truth: silently failed nodes are members of
        the overlay but generate no queries, refresh no leases, and emit
        no repair traffic.
        """
        if node not in self.tree:
            return False
        return self.injector is None or not self.injector.is_dead(node)

    def cache(self, node: NodeId) -> IndexCache:
        """The node's index cache (created lazily)."""
        cache = self._caches.get(node)
        if cache is None:
            cache = IndexCache()
            self._caches[node] = cache
        return cache

    def lookup(self, node: NodeId) -> Optional[IndexVersion]:
        """A valid index copy at ``node``, if any.

        The root serves its authoritative (never expiring) copy; everyone
        else consults the local TTL cache.
        """
        if node == self.tree.root:
            if self.authority is None:
                return None
            return self.authority.current
        return self.cache(node).get(self.key, self.env.now)

    def record_latency(
        self,
        hops: float,
        issued_at: float,
        trace_id: Optional[int] = None,
    ) -> None:
        """Record one completed query's request latency.

        ``trace_id`` closes the query's trace when tracing is enabled.
        """
        self.latency.record(hops, issued_at)
        if self.tracer is not None and trace_id is not None:
            self.tracer.complete(trace_id, hops)

    def note_incomplete_query(self) -> None:
        """A query's reply was lost to churn; it never completes."""
        self._incomplete += 1

    def note_read(self, version: IndexVersion) -> None:
        """A query was answered with ``version``; track staleness.

        A read is *stale* when the served copy is older than the
        authority's current version — the consistency metric the TTL /
        push trade-off is about.  Warm-up reads are ignored, matching
        the other recorders.
        """
        if self.env.now < self.config.warmup:
            return
        self._reads += 1
        if (
            self.authority is not None
            and version.version < self.authority.current.version
        ):
            self._stale_reads += 1

    @property
    def stale_read_fraction(self) -> float:
        """Fraction of post-warm-up reads that served a stale version."""
        if self._reads == 0:
            return float("nan")
        return self._stale_reads / self._reads

    def suspect_peer(self, reporter: NodeId, suspect: NodeId) -> None:
        """``reporter`` concluded that ``suspect`` is unresponsive.

        Raised by exhausted retry budgets and expired leases.  When the
        suspect really did fail silently, this is the detection moment:
        the latency since the crash is observed and the full Section
        III-C repair (:meth:`Scheme.on_node_failed`) finally runs.  A
        false suspicion of a live node never mutates the overlay — the
        scheme only cleans up the reporter's local state
        (:meth:`Scheme.on_peer_suspected`).
        """
        self._suspicions += 1
        injector = self.injector
        if (
            injector is not None
            and injector.is_dead(suspect)
            and suspect in self.tree
        ):
            latency = injector.mark_detected(suspect)
            if latency is not None and self._detection_latency is not None:
                self._detection_latency.observe(latency)
            self.scheme.on_node_failed(suspect)
            return
        self.scheme.on_peer_suspected(reporter, suspect)

    def fail_silently(self, victim: NodeId) -> None:
        """Crash ``victim`` without telling anyone.

        The node stays in the overlay and blackholes traffic until a
        survivor's suspicion (retry exhaustion or lease expiry) triggers
        repair through :meth:`suspect_peer`.  Requires a fault plan with
        ``silent_failures``.
        """
        if self.injector is None:
            raise ConfigError(
                "fail_silently needs a FaultPlan with silent_failures"
            )
        self.injector.mark_failed(victim)
        if self.reliable is not None:
            self.reliable.drop_sender(victim)

    def _on_delivery_give_up(
        self, sender: NodeId, destination: NodeId, message: Message
    ) -> None:
        if not self.functioning(sender):
            return  # the reporter died while its last timer was pending
        self.suspect_peer(sender, destination)

    def _observe_fault_drops(self, event: TransportEvent) -> None:
        # Injected losses and blackholes end queries just like churn
        # drops do; count them so incomplete-query accounting stays
        # honest under faults.
        if event.kind != "drop" or event.reason not in ("loss", "blackhole"):
            return
        if event.message.category in (Category.QUERY, Category.REPLY):
            self.note_incomplete_query()
        if (
            event.reason == "blackhole"
            and event.sender is not None
            and event.destination is not None
            and event.message.reliable_id is None
        ):
            # Unreliable traffic into a dead node: the sender's request
            # times out and it probes the silent neighbor — the paper's
            # "when a node detects the failure" moment for nodes that
            # hold no DUP state (reliable traffic detects via its own
            # exhausted retries instead).  One timer per (sender, dead
            # peer) pair at a time.
            key = (event.sender, event.destination)
            if key in self._pending_suspicions:
                return
            self._pending_suspicions.add(key)
            timeout = self.config.ack_timeout * (self.config.retry_budget + 1)
            self.env.call_later(timeout, self._timeout_suspicion, *key)

    def _timeout_suspicion(self, reporter: NodeId, suspect: NodeId) -> None:
        self._pending_suspicions.discard((reporter, suspect))
        if not self.functioning(reporter) or suspect not in self.tree:
            return
        self.suspect_peer(reporter, suspect)

    # -- tracing facade ------------------------------------------------------
    def trace_begin(self, node: NodeId) -> Optional[int]:
        """Open a trace for a query issued now at ``node``.

        Returns ``None`` when tracing is disabled (the default) or the
        query falls into the warm-up.
        """
        if self.tracer is None:
            return None
        return self.tracer.begin(node)

    def trace_annotate(
        self,
        trace_id: Optional[int],
        node: NodeId,
        event: str,
        detail: str = "",
    ) -> None:
        """Record a scheme decision point on a trace (no-op untraced)."""
        if self.tracer is not None and trace_id is not None:
            self.tracer.annotate(trace_id, node, event, detail)

    def enable_tracing(self, keep: int = 100_000):
        """Attach a :class:`~repro.engine.tracing.TraceCollector`.

        Must be called before :meth:`run`; returns the collector.  Every
        post-warm-up query then yields a reconstructed end-to-end trace.
        """
        from repro.engine.tracing import TraceCollector

        if self.tracer is not None:
            return self.tracer
        self.tracer = TraceCollector(
            clock=lambda: self.env.now,
            warmup=self.config.warmup,
            depth_of=self._node_depth,
            keep=keep,
        )
        self.transport.add_observer(self.tracer.observe)
        return self.tracer

    def _node_depth(self, node: NodeId) -> Optional[int]:
        if node not in self.tree:
            return None
        return self.tree.depth(node)

    def enable_snapshots(self, interval: float = 600.0) -> None:
        """Sample the metrics registry every ``interval`` simulated
        seconds (must be called before :meth:`run`)."""

        def loop():
            while True:
                yield self.env.timeout(interval)
                self.registry.record_snapshot()

        self.env.process(loop(), name="metrics-snapshots")

    def forget_node(self, node: NodeId) -> None:
        """Drop per-node engine state after departure/failure."""
        self._caches.pop(node, None)

    def make_interest_policy(self):
        """A fresh per-node interest policy per the configuration."""
        if self.config.interest_policy == "window":
            return WindowInterestPolicy(self.config.ttl, self.config.threshold_c)
        return EwmaInterestPolicy(self.config.ttl, self.config.threshold_c)

    def allocate_node_id(self) -> NodeId:
        """A fresh node id for a joining node."""
        node = self._next_node_id
        self._next_node_id += 1
        return node

    def use_trace(self, trace) -> None:
        """Replay a :class:`repro.workload.trace.QueryTrace` instead of
        generating queries (must be called before :meth:`run`).

        Every event node must exist in the topology; events on departed
        nodes (churn) are skipped.
        """
        if self._ran:
            raise RuntimeError("use_trace must precede run()")
        self._trace = trace

    def add_probe(self, name: str, function, interval: float = 600.0):
        """Sample ``function()`` every ``interval`` simulated seconds.

        Returns the live :class:`repro.sim.monitor.Series`.  Probes must
        be registered before :meth:`run`; the first call fixes the
        sampling cadence.
        """
        from repro.sim.monitor import Monitor

        if self._monitor is None:
            self._monitor = Monitor(self.env, interval)
        series = self._monitor.probe(name, function)
        # Absorb the probe into the unified registry as a live gauge.
        self.registry.gauge(f"probe.{name}", function)
        return series

    def add_standard_probes(self, interval: float = 600.0) -> dict:
        """Register the commonly useful probes; returns name -> series.

        - ``hit_rate`` — cumulative post-warm-up local hit rate;
        - ``mean_latency`` — cumulative post-warm-up latency;
        - ``population`` — overlay size (churn);
        - for DUP schemes, ``subscribed`` and ``dup_tree_size``.
        """
        probes = {
            "hit_rate": lambda: self.latency.hit_rate,
            "mean_latency": lambda: self.latency.mean,
            "population": lambda: float(len(self.tree)),
        }
        if hasattr(self.scheme, "subscribed_nodes"):
            probes["subscribed"] = lambda: float(
                len(self.scheme.subscribed_nodes())
            )
        if hasattr(self.scheme, "dup_tree_size"):
            probes["dup_tree_size"] = lambda: float(
                self.scheme.dup_tree_size()
            )
        return {
            name: self.add_probe(name, function, interval)
            for name, function in probes.items()
        }

    # -- internals -----------------------------------------------------------
    def _dispatch(self, destination: NodeId, message: Message) -> None:
        if destination not in self.tree:
            self.transport.drop(message, destination=destination)
            if isinstance(message, ReplyMessage):
                self.note_incomplete_query()
            return
        channel = self.reliable
        if channel is not None:
            if isinstance(message, AckMessage):
                channel.on_ack(destination, message)
                return
            if message.reliable_id is not None and not channel.deliver(
                destination, message
            ):
                return  # retransmission duplicate: already processed
        self.scheme.on_message(destination, message)

    def _on_new_version(self, version: IndexVersion) -> None:
        self.scheme.on_new_version(version)

    def _query_loop(self):
        config = self.config
        arrivals = make_arrival_process(
            config.arrival,
            config.query_rate,
            self.streams.get("arrivals"),
            config.pareto_alpha,
        )
        draws = self.streams.get("placement-draws")
        churning = config.churn is not None and config.churn.enabled
        while True:
            yield self.env.timeout(arrivals.next_gap())
            if churning or self.injector is not None:
                node = self.selector.sample_alive(draws, self.functioning)
                if node is None:
                    continue
            else:
                node = self.selector.sample(draws)
            self.scheme.on_local_query(node)

    def _trace_loop(self):
        for event in self._trace:
            delay = event.time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            if self.alive(event.node):
                self.scheme.on_local_query(event.node)

    def _churn_loop(self):
        process = ChurnProcess(self.config.churn, self.streams.get("churn"))
        while True:
            yield self.env.timeout(process.next_gap())
            self._apply_churn(process)

    def _apply_churn(self, process: ChurnProcess) -> None:
        kind = process.next_kind()
        members = [n for n in self.tree.nodes if self.functioning(n)]
        non_root = [n for n in members if n != self.tree.root]
        if kind is ChurnEvent.JOIN_EDGE:
            if not non_root:
                return
            lower = process.pick_victim(non_root)
            upper = self.tree.parent(lower)
            self.scheme.on_node_joined_edge(
                self.allocate_node_id(), upper, lower
            )
        elif kind is ChurnEvent.JOIN_LEAF:
            if not members:
                return
            parent = process.pick_victim(members)
            self.scheme.on_node_joined_leaf(parent, self.allocate_node_id())
        else:
            if len(members) <= process.config.min_population or not non_root:
                return
            victim = process.pick_victim(non_root)
            if kind is ChurnEvent.LEAVE:
                self.scheme.on_node_left(victim)
            elif (
                self.injector is not None
                and self.injector.plan.silent_failures
            ):
                # Silent mode: the victim blackholes traffic until a
                # survivor suspects it; no oracle notification.
                self.fail_silently(victim)
            else:
                self.scheme.on_node_failed(victim)

    # -- running ----------------------------------------------------------------
    def start(self) -> None:
        """Start the authority (idempotent).

        Tests use this to drive queries and churn by hand;
        :meth:`run` calls it before installing the workload processes.
        """
        if self.authority is None:
            self.authority = Authority(
                env=self.env,
                key=self.key,
                ttl=self.config.ttl,
                push_lead=self.config.push_lead,
                on_new_version=self._on_new_version,
                value=f"host-of-{self.key}",
            )

    def run(self) -> SimulationResult:
        """Execute the run and collect results (one-shot)."""
        if self._ran:
            raise RuntimeError("a Simulation instance runs only once")
        self._ran = True
        started = time.perf_counter()
        self.start()
        if self._trace is not None:
            self.env.process(self._trace_loop(), name="trace-workload")
        else:
            self.env.process(self._query_loop(), name="query-workload")
        if self.config.churn is not None and self.config.churn.enabled:
            self.env.process(self._churn_loop(), name="churn")
        self.env.run(until=self.config.duration)
        wall = time.perf_counter() - started
        return self._collect(wall)

    def _collect(self, wall_seconds: float) -> SimulationResult:
        extras: dict[str, object] = {}
        if hasattr(self.scheme, "subscribed_nodes"):
            extras["subscribed"] = len(self.scheme.subscribed_nodes())
        if hasattr(self.scheme, "dup_tree_size"):
            extras["dup_tree_size"] = self.scheme.dup_tree_size()
        injector = self.injector
        if injector is not None:
            extras["injected_losses"] = injector.injected_losses
            extras["injected_duplicates"] = injector.injected_duplicates
            extras["blackholed"] = injector.blackholed
            if injector.plan.silent_failures:
                extras["undetected_failures"] = len(injector.undetected())
                extras["suspicions"] = self._suspicions
                histogram = self._detection_latency
                if histogram is not None and histogram.count:
                    summary = histogram.summary()
                    extras["detection_count"] = summary["count"]
                    extras["detection_p50"] = summary["p50"]
                    extras["detection_p95"] = summary["p95"]
        if self.reliable is not None:
            extras["retries"] = self.reliable.retries
            extras["acked"] = self.reliable.acked
            extras["delivery_give_ups"] = self.reliable.give_ups
        if self.config.lease_ttl > 0 and hasattr(
            self.scheme, "lease_expiries"
        ):
            extras["lease_expiries"] = self.scheme.lease_expiries
        keep = self.config.keep_latency_samples and self.latency.count
        return SimulationResult(
            config=self.config,
            scheme=self.scheme.name,
            queries=self.latency.count,
            mean_latency=self.latency.mean,
            latency_ci=self.latency.confidence_interval() if keep else None,
            cost_per_query=self.ledger.cost_per_query(self.latency.count),
            hit_rate=self.latency.hit_rate,
            hop_breakdown=dict(self.ledger.breakdown()),
            dropped_messages=self.transport.dropped,
            incomplete_queries=self._incomplete,
            final_population=len(self.tree),
            wall_seconds=wall_seconds,
            extras=extras,
            latency_percentiles=self.latency.percentiles() if keep else {},
            stale_read_fraction=self.stale_read_fraction,
        )
