"""Wiring of one simulation run.

:class:`Simulation` builds the topology, transport, caches, scheme,
authority, and workload from a :class:`~repro.engine.config.SimulationConfig`,
runs the event loop for the configured horizon, and collects the paper's
two metrics into a :class:`~repro.engine.results.SimulationResult`.

It also serves as the narrow facade schemes program against: clock
(``env``), topology (``tree``, ``parent``, ``is_root``, ``alive``),
messaging (``transport``), state (``cache``, ``lookup``), metrics
(``record_latency``, ``ledger``, ``registry``), and tracing
(``trace_begin``, ``trace_annotate``).

Observability is wired here: every run owns a
:class:`~repro.metrics.registry.MetricsRegistry` fronting the cost
ledger, latency recorder, transport, and population as live gauges
(``enable_snapshots`` samples it periodically), and
:meth:`Simulation.enable_tracing` attaches a
:class:`~repro.engine.tracing.TraceCollector` that reconstructs every
query's causal chain from the transport observer tap.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Optional

from repro import flightrec
from repro.core.interest import (
    AdaptiveInterestPolicy,
    EwmaInterestPolicy,
    WindowInterestPolicy,
)
from repro.engine.config import SimulationConfig
from repro.engine.results import SimulationResult
from repro.errors import ConfigError
from repro.index.authority import Authority, StandbyPool
from repro.index.cache import IndexCache
from repro.index.entry import IndexVersion
from repro.metrics.counters import CostLedger
from repro.metrics.latency import LatencyRecorder
from repro.metrics.registry import MetricsRegistry
from repro.net.faults import FaultInjector, FaultPlan
from repro.net.message import (
    AckMessage,
    AuthorityHeartbeat,
    AuthorityReplicate,
    Category,
    Message,
    ReplyMessage,
)
from repro.net.overload import OverloadManager, build_manager
from repro.net.reliable import ReliableChannel
from repro.net.transport import Transport, TransportEvent
from repro.schemes.registry import make_scheme
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams
from repro.stats.distributions import Exponential
from repro.topology.chord import ChordRing
from repro.topology.chord_tree import chord_search_tree
from repro.topology.can import CanOverlay, can_search_tree
from repro.topology.generators import (
    chain_tree,
    complete_tree,
    random_search_tree,
    star_tree,
)
from repro.topology.tree import SearchTree
from repro.workload.arrivals import make_arrival_process
from repro.workload.churn import ChurnEvent, ChurnProcess
from repro.workload.selection import ZipfNodeSelector
from repro.workload.sessions import SessionEngine
from repro.workload.storms import StormEngine

NodeId = int


class Simulation:
    """One end-to-end simulation run (build once, :meth:`run` once)."""

    def __init__(self, config: SimulationConfig):
        config.validate()
        self.config = config
        self.streams = RandomStreams(config.seed)
        self.env = Environment()
        self.tree, self.key = self._build_topology()
        self.ledger = CostLedger(
            clock=lambda: self.env.now,
            warmup=config.warmup,
            count_keepalive=config.count_keepalive,
        )
        self.latency = LatencyRecorder(
            clock=lambda: self.env.now,
            warmup=config.warmup,
            keep_samples=config.keep_latency_samples,
        )
        # Recorder handle bound once: every completed query goes through
        # it, so skip the attribute chase per call.
        self._latency_record = self.latency.record
        # -- flight recorder: a pure observer (no RNG, no events), so a
        # run with it armed is bit-identical to one without.  Armed by
        # config or process-wide by REPRO_FLIGHT.
        self.recorder: Optional[flightrec.FlightRecorder] = None
        if config.flight_recorder or flightrec.ENABLED:
            self.recorder = flightrec.FlightRecorder(
                clock=lambda: self.env.now,
                capacity=config.flight_capacity,
            )
            flightrec.LAST = self.recorder
        # -- fault layer: only constructed when a plan asks for it, so a
        # fault-free run is bit-identical to one without the layer.  A
        # session plan that crashes peers implies silent failures: the
        # crash-restart path goes through the injector's blackholing.
        fault_plan = config.faults
        if config.sessions is not None and config.sessions.crashes_enabled:
            base = fault_plan if fault_plan is not None else FaultPlan()
            if not base.silent_failures:
                fault_plan = dataclasses.replace(base, silent_failures=True)
        self.injector: Optional[FaultInjector] = None
        if fault_plan is not None and fault_plan.enabled:
            self.injector = FaultInjector(
                fault_plan,
                self.streams,
                clock=lambda: self.env.now,
                recorder=self.recorder,
            )
        self.transport = Transport(
            env=self.env,
            latency=Exponential(config.hop_latency_mean),
            rng=self.streams.get("latency"),
            ledger=self.ledger,
            injector=self.injector,
        )
        self.transport.bind(self._dispatch)
        self.reliable: Optional[ReliableChannel] = None
        if config.retry_budget > 0:
            self.reliable = ReliableChannel(
                env=self.env,
                transport=self.transport,
                retry_budget=config.retry_budget,
                base_timeout=config.ack_timeout,
                backoff=config.retry_backoff,
                timeout_cap=(
                    config.retry_timeout_cap
                    if config.retry_timeout_cap > 0
                    else math.inf
                ),
                on_give_up=self._on_delivery_give_up,
                functioning=self.functioning,
            )
        # -- overload layer: like the fault injector, only constructed
        # when the plan enables something, so a run without it is
        # bit-identical to a build without the layer.
        self.overload: Optional[OverloadManager] = build_manager(
            env=self.env,
            plan=config.overload,
            deliver=self._dispatch_queued,
            recorder=self.recorder,
        )
        # One-attribute hot-path check: the inbox model only intercepts
        # dispatch when a service rate is configured.
        self._inbox_admit = (
            self.overload.admit
            if self.overload is not None and self.overload.plan.inboxes_enabled
            else None
        )
        self.storms: Optional[StormEngine] = None
        if config.storms is not None and config.storms.enabled:
            self.storms = StormEngine(self, config.storms)
        # -- peer fluctuation: constructed before the scheme binds (the
        # DUP scheme wires its flap-damping gate off ``sim.sessions``);
        # an absent or inert plan leaves the attribute None and the run
        # bit-identical to a build without the layer.
        self.sessions: Optional[SessionEngine] = None
        if config.sessions is not None and config.sessions.enabled:
            self.sessions = SessionEngine(self, config.sessions)
        self._caches: dict[NodeId, IndexCache] = {}
        self._past_warmup = config.warmup <= 0.0
        self._incomplete = 0
        self._reads = 0
        self._stale_reads = 0
        self._suspicions = 0
        self._detection_latency = None
        self._pending_suspicions: set[tuple[NodeId, NodeId]] = set()
        if self.injector is not None:
            self.transport.add_observer(self._observe_fault_drops)
        self._next_node_id = max(self.tree.nodes) + 1
        eligible = [
            node
            for node in self.tree.nodes
            if config.root_queries or node != self.tree.root
        ]
        self.selector = ZipfNodeSelector(
            eligible, config.zipf_theta, self.streams.get("placement")
        )
        self.scheme = make_scheme(config.scheme)
        self.scheme.bind(self)
        self.authority: Optional[Authority] = None
        # -- authority failover: standbys chosen breadth-first from the
        # root, so the most promotable nodes sit closest to it.
        self.standby_pool: Optional[StandbyPool] = None
        if config.authority_standbys > 0:
            self.standby_pool = StandbyPool(
                env=self.env,
                standbys=self._choose_standbys(config.authority_standbys),
                failover_timeout=config.failover_timeout,
                recorder=self.recorder,
            )
        self._failover_at: Optional[float] = None
        self.auditor = None
        self._monitor = None
        self._timeline = None
        self._trace = None
        self._ran = False
        self.tracer = None
        self.registry = MetricsRegistry(clock=lambda: self.env.now)
        self._register_standard_metrics()

    def _register_standard_metrics(self) -> None:
        registry = self.registry
        for category in Category:
            registry.gauge(
                f"hops.{category.value}",
                lambda category=category: self.ledger.hops(category),
            )
        registry.gauge("hops.total", lambda: self.ledger.total_hops)
        registry.gauge("latency.count", lambda: self.latency.count)
        registry.gauge("latency.mean", lambda: self.latency.mean)
        registry.gauge("latency.hit_rate", lambda: self.latency.hit_rate)
        if self.config.keep_latency_samples:
            for q in (50, 95, 99):
                registry.gauge(
                    f"latency.p{q}", lambda q=q: self.latency.percentile(q)
                )
        registry.gauge("transport.dropped", lambda: self.transport.dropped)
        registry.gauge("queries.incomplete", lambda: self._incomplete)
        registry.gauge("population", lambda: float(len(self.tree)))
        registry.gauge("reads.total", lambda: float(self._reads))
        registry.gauge("reads.stale", lambda: float(self._stale_reads))
        registry.gauge("reads.stale_fraction", lambda: self.stale_read_fraction)
        injector = self.injector
        if injector is not None:
            registry.gauge(
                "faults.injected_losses", lambda: injector.injected_losses
            )
            registry.gauge(
                "faults.injected_duplicates",
                lambda: injector.injected_duplicates,
            )
            registry.gauge("faults.blackholed", lambda: injector.blackholed)
            if injector.plan.silent_failures:
                self._detection_latency = registry.histogram(
                    "faults.detection_latency"
                )
                registry.gauge(
                    "faults.undetected",
                    lambda: float(len(injector.undetected())),
                )
                registry.gauge("faults.suspicions", lambda: self._suspicions)
            if injector.plan.partitions:
                registry.gauge(
                    "partition.started",
                    lambda: float(injector.partitions_started),
                )
                registry.gauge(
                    "partition.drops", lambda: float(injector.partition_drops)
                )
                registry.gauge(
                    "partition.active",
                    lambda: float(injector.partition_active),
                )
        pool = self.standby_pool
        if pool is not None:
            registry.gauge(
                "failover.replications", lambda: float(pool.replications)
            )
            registry.gauge(
                "failover.heartbeats", lambda: float(pool.heartbeats)
            )
            registry.gauge(
                "failover.promoted",
                lambda: float(pool.promoted is not None),
            )
        channel = self.reliable
        if channel is not None:
            registry.gauge("reliable.retries", lambda: channel.retries)
            registry.gauge("reliable.acked", lambda: channel.acked)
            registry.gauge("reliable.give_ups", lambda: channel.give_ups)
            registry.gauge("reliable.outstanding", lambda: channel.outstanding)
        overload = self.overload
        if overload is not None:
            registry.gauge(
                "overload.shed_fraction", lambda: overload.shed_fraction
            )
            registry.gauge(
                "overload.shed_total", lambda: float(overload.shed_total)
            )
            registry.gauge(
                "overload.max_queue_depth",
                lambda: float(overload.max_queue_depth),
            )
            registry.gauge(
                "overload.breaker_trips",
                lambda: float(overload.breaker_trips),
            )
            registry.gauge(
                "overload.pushes_coalesced",
                lambda: float(overload.pushes_coalesced),
            )
        if self.config.lease_ttl > 0 and hasattr(
            self.scheme, "lease_expiries"
        ):
            registry.gauge(
                "leases.expired", lambda: float(self.scheme.lease_expiries)
            )
        sessions = self.sessions
        if sessions is not None:
            registry.gauge(
                "sessions.crashes", lambda: float(sessions.crashes)
            )
            registry.gauge(
                "sessions.rejoins", lambda: float(sessions.rejoins)
            )
            registry.gauge(
                "sessions.down_now", lambda: float(sessions.down_now)
            )
            registry.gauge(
                "sessions.flap_suppressed",
                lambda: float(sessions.flap_suppressed_now),
            )

    # -- construction helpers -----------------------------------------------
    def _build_topology(self) -> tuple[SearchTree, int]:
        config = self.config
        rng = self.streams.get("topology")
        if config.topology == "random-tree":
            return random_search_tree(config.num_nodes, config.max_degree, rng), 0
        if config.topology == "chord":
            ring = ChordRing.random(config.num_nodes, rng, bits=32)
            key = int(rng.integers(0, 1 << 32))
            return chord_search_tree(ring, key), key
        if config.topology == "can":
            overlay = CanOverlay.random(config.num_nodes, rng, dimensions=2)
            key = int(rng.integers(0, 1 << 32))
            return can_search_tree(overlay, key), key
        if config.topology == "balanced":
            return complete_tree(config.num_nodes, config.max_degree), 0
        if config.topology == "chain":
            return chain_tree(config.num_nodes), 0
        if config.topology == "star":
            return star_tree(config.num_nodes), 0
        raise ConfigError(f"unknown topology {config.topology!r}")

    def _choose_standbys(self, count: int) -> list[NodeId]:
        """The ``count`` nodes closest to the root, breadth-first.

        Standbys near the root keep the replication path short and, on
        promotion, disturb the tree the least (a direct child of the
        root hands its own children straight to the new root).
        """
        from collections import deque

        chosen: list[NodeId] = []
        queue = deque([self.tree.root])
        while queue and len(chosen) < count:
            node = queue.popleft()
            for child in self.tree.children(node):
                if len(chosen) < count:
                    chosen.append(child)
                queue.append(child)
        if len(chosen) < count:  # pragma: no cover - validated in config
            raise ConfigError(
                f"topology too small for {count} authority standbys"
            )
        return chosen

    # -- facade used by schemes ------------------------------------------------
    def is_root(self, node: NodeId) -> bool:
        """Whether ``node`` is the current authority (tree root)."""
        return node == self.tree.root

    def parent(self, node: NodeId) -> Optional[NodeId]:
        """Parent on the index search tree (``None`` at the root)."""
        # Direct read of the tree's parent map: one dict get instead of a
        # membership check plus a guarded lookup.  Semantics are the
        # same — None for the root and for nodes outside the tree.
        return self.tree._parent.get(node)

    def alive(self, node: NodeId) -> bool:
        """Whether ``node`` is currently part of the overlay.

        This is the *schemes'* view: a silently failed node is still a
        member until some survivor detects the crash, so schemes keep
        sending to it and the transport blackholes the traffic.
        """
        return node in self.tree

    def functioning(self, node: NodeId) -> bool:
        """Whether ``node`` is alive *and* actually responding.

        The engine-internal truth: silently failed nodes are members of
        the overlay but generate no queries, refresh no leases, and emit
        no repair traffic.
        """
        if node not in self.tree:
            return False
        return self.injector is None or not self.injector.is_dead(node)

    def cache(self, node: NodeId) -> IndexCache:
        """The node's index cache (created lazily)."""
        cache = self._caches.get(node)
        if cache is None:
            cache = IndexCache()
            self._caches[node] = cache
        return cache

    def lookup(self, node: NodeId) -> Optional[IndexVersion]:
        """A valid index copy at ``node``, if any.

        The root serves its authoritative (never expiring) copy; everyone
        else consults the local TTL cache.
        """
        if node == self.tree._root:
            if self.authority is None:
                return None
            return self.authority.current
        # Inlined self.cache(node): this is the hottest facade call, and
        # the lazy creation must stay so per-node lookup stats are
        # identical whichever path created the cache.
        cache = self._caches.get(node)
        if cache is None:
            cache = IndexCache()
            self._caches[node] = cache
        return cache.get(self.key, self.env._now)

    def record_latency(
        self,
        hops: float,
        issued_at: float,
        trace_id: Optional[int] = None,
    ) -> None:
        """Record one completed query's request latency.

        ``trace_id`` closes the query's trace when tracing is enabled.
        """
        self._latency_record(hops, issued_at)
        if self.tracer is not None and trace_id is not None:
            self.tracer.complete(trace_id, hops)

    def note_incomplete_query(self) -> None:
        """A query's reply was lost to churn; it never completes."""
        self._incomplete += 1

    def note_read(self, version: IndexVersion) -> None:
        """A query was answered with ``version``; track staleness.

        A read is *stale* when the served copy is older than the
        authority's current version — the consistency metric the TTL /
        push trade-off is about.  Warm-up reads are ignored, matching
        the other recorders.
        """
        if not self._past_warmup:
            # Sim time only moves forward during a run, so once the
            # warm-up has passed the clock never needs consulting again.
            if self.env._now < self.config.warmup:
                return
            self._past_warmup = True
        self._reads += 1
        if (
            self.authority is not None
            and version.version < self.authority.current.version
        ):
            self._stale_reads += 1

    @property
    def stale_read_fraction(self) -> float:
        """Fraction of post-warm-up reads that served a stale version."""
        if self._reads == 0:
            return float("nan")
        return self._stale_reads / self._reads

    def suspect_peer(self, reporter: NodeId, suspect: NodeId) -> None:
        """``reporter`` concluded that ``suspect`` is unresponsive.

        Raised by exhausted retry budgets and expired leases.  When the
        suspect really did fail silently, this is the detection moment:
        the latency since the crash is observed and the full Section
        III-C repair (:meth:`Scheme.on_node_failed`) finally runs.  A
        false suspicion of a live node never mutates the overlay — the
        scheme only cleans up the reporter's local state
        (:meth:`Scheme.on_peer_suspected`).
        """
        self._suspicions += 1
        injector = self.injector
        if (
            injector is not None
            and injector.is_dead(suspect)
            and suspect in self.tree
        ):
            if suspect == self.tree.root:
                # Failure case 5 cannot run node_failed (the root has no
                # parent to splice into): route the suspicion to the
                # standby failover machinery instead.
                self._promote_standby()
                return
            latency = injector.mark_detected(suspect)
            if latency is not None and self._detection_latency is not None:
                self._detection_latency.observe(latency)
            self.scheme.on_node_failed(suspect)
            return
        self.scheme.on_peer_suspected(reporter, suspect)

    def fail_silently(self, victim: NodeId) -> None:
        """Crash ``victim`` without telling anyone.

        The node stays in the overlay and blackholes traffic until a
        survivor's suspicion (retry exhaustion or lease expiry) triggers
        repair through :meth:`suspect_peer`.  Requires a fault plan with
        ``silent_failures``.
        """
        if self.injector is None:
            raise ConfigError(
                "fail_silently needs a FaultPlan with silent_failures"
            )
        self.injector.mark_failed(victim)
        if self.reliable is not None:
            self.reliable.drop_sender(victim)
        if victim == self.tree.root and self.authority is not None:
            # A crashed authority issues nothing further; standbys will
            # notice the heartbeat/replication silence and promote.
            self.authority.stop()

    def crash_node(self, node: NodeId) -> dict:
        """Silently crash ``node`` for a crash-restart cycle.

        Unlike churn failure, the node's state is *not* lost: it keeps
        its subscriber list, scheme trackers, and index cache across the
        downtime (amnesia semantics — what survives a process restart on
        the same host).  Returns the snapshot :meth:`rejoin_node` needs;
        the fluctuation layer holds it while the node is down.
        """
        snapshot = {
            "parent": self.parent(node),
            "scheme": self.scheme.snapshot_for_rejoin(node),
            "cache": self._caches.get(node),
        }
        self.fail_silently(node)
        return snapshot

    def rejoin_node(
        self, node: NodeId, snapshot: dict, suppressed: bool = False
    ) -> None:
        """``node`` restarts after :meth:`crash_node`; reconcile it.

        While it was down a survivor may have detected the crash and
        spliced it out (then the pre-crash parent — or the root, if that
        parent is itself gone — re-grafts it), or nobody noticed and it
        is still in place.  Either way the retained state in
        ``snapshot`` is re-validated by the scheme's reconciliation
        handshake; with ``suppressed`` (flap damping) the state is
        discarded instead and no re-graft/resubscribe traffic is sent.
        """
        if self.injector is not None:
            self.injector.revive(node)
        if node in self.tree:
            parent = self.parent(node)
            if parent is None:
                parent = self.tree.root
        else:
            parent = snapshot.get("parent")
            if parent is None or not self.functioning(parent):
                parent = self.tree.root
        cache = snapshot.get("cache")
        if cache is not None and node not in self._caches:
            # The failure repair dropped the cache; the restarted process
            # still has its copy on disk.  Version monotonicity holds:
            # IndexCache.put rejects regressions, so a stale restored
            # copy is superseded by the next fresher reply.
            self._caches[node] = cache
        self.scheme.on_node_rejoined(
            node, parent, snapshot.get("scheme"), suppressed
        )

    def _on_delivery_give_up(
        self, sender: NodeId, destination: NodeId, message: Message
    ) -> None:
        if not self.functioning(sender):
            return  # the reporter died while its last timer was pending
        overload = self.overload
        if overload is not None and overload.plan.breakers_enabled:
            # With breakers, a give-up feeds the breaker instead of the
            # insta-suspicion path: an overloaded (not dead) peer keeps
            # its subscriptions; sends to it are suppressed until the
            # half-open probe finds it answering again.
            overload.record_failure(sender, destination, reason="give-up")
            return
        self.suspect_peer(sender, destination)

    def _observe_fault_drops(self, event: TransportEvent) -> None:
        # Injected losses, blackholes, and partition cuts end queries
        # just like churn drops do; count them so incomplete-query
        # accounting stays honest under faults.
        if event.kind != "drop" or event.reason not in (
            "loss",
            "blackhole",
            "partition",
        ):
            return
        if event.message.category in (Category.QUERY, Category.REPLY):
            self.note_incomplete_query()
        if (
            event.reason == "blackhole"
            and event.sender is not None
            and event.destination is not None
            and event.message.reliable_id is None
        ):
            # Unreliable traffic into a dead node: the sender's request
            # times out and it probes the silent neighbor — the paper's
            # "when a node detects the failure" moment for nodes that
            # hold no DUP state (reliable traffic detects via its own
            # exhausted retries instead).  One timer per (sender, dead
            # peer) pair at a time.
            key = (event.sender, event.destination)
            if key in self._pending_suspicions:
                return
            self._pending_suspicions.add(key)
            timeout = self.config.ack_timeout * (self.config.retry_budget + 1)
            self.env.call_later(timeout, self._timeout_suspicion, *key)

    def _timeout_suspicion(self, reporter: NodeId, suspect: NodeId) -> None:
        self._pending_suspicions.discard((reporter, suspect))
        if not self.functioning(reporter) or suspect not in self.tree:
            return
        self.suspect_peer(reporter, suspect)

    # -- tracing facade ------------------------------------------------------
    def trace_begin(self, node: NodeId) -> Optional[int]:
        """Open a trace for a query issued now at ``node``.

        Returns ``None`` when tracing is disabled (the default) or the
        query falls into the warm-up.
        """
        if self.tracer is None:
            return None
        return self.tracer.begin(node)

    def trace_annotate(
        self,
        trace_id: Optional[int],
        node: NodeId,
        event: str,
        detail: str = "",
    ) -> None:
        """Record a scheme decision point on a trace (no-op untraced)."""
        if self.tracer is not None and trace_id is not None:
            self.tracer.annotate(trace_id, node, event, detail)

    def enable_tracing(self, keep: int = 100_000):
        """Attach a :class:`~repro.engine.tracing.TraceCollector`.

        Must be called before :meth:`run`; returns the collector.  Every
        post-warm-up query then yields a reconstructed end-to-end trace.
        """
        from repro.engine.tracing import TraceCollector

        if self.tracer is not None:
            return self.tracer
        self.tracer = TraceCollector(
            clock=lambda: self.env.now,
            warmup=self.config.warmup,
            depth_of=self._node_depth,
            keep=keep,
        )
        self.transport.add_observer(self.tracer.observe)
        return self.tracer

    def _node_depth(self, node: NodeId) -> Optional[int]:
        if node not in self.tree:
            return None
        return self.tree.depth(node)

    @property
    def timeline(self):
        """The tree-evolution timeline, when enabled (else ``None``)."""
        return self._timeline

    def enable_timeline(
        self, window: float = 600.0, max_buckets: int = 256
    ):
        """Sample the tree-evolution timeline every ``window`` seconds.

        Returns the :class:`~repro.metrics.windows.TreeTimeline`
        (idempotent; must be called before :meth:`run`).  Memory is
        bounded by ``max_buckets`` windows per metric regardless of the
        run length; the timeline is a pure observer and never perturbs
        the run.
        """
        from repro.metrics.windows import TreeTimeline

        if self._timeline is not None:
            return self._timeline
        timeline = TreeTimeline(window=window, max_buckets=max_buckets)

        def loop():
            while True:
                yield self.env.timeout(timeline.window)
                timeline.sample(self)

        self.env.process(loop(), name="tree-timeline")
        self._timeline = timeline
        return timeline

    def dump_flight(self, path) -> int:
        """Dump the flight recorder's ring as JSONL; 0 when unarmed."""
        if self.recorder is None:
            return 0
        return self.recorder.dump(path)

    def enable_snapshots(self, interval: float = 600.0) -> None:
        """Sample the metrics registry every ``interval`` simulated
        seconds (must be called before :meth:`run`)."""

        def loop():
            while True:
                yield self.env.timeout(interval)
                self.registry.record_snapshot()

        self.env.process(loop(), name="metrics-snapshots")

    def forget_node(self, node: NodeId) -> None:
        """Drop per-node engine state after departure/failure."""
        self._caches.pop(node, None)

    def make_interest_policy(self):
        """A fresh per-node interest policy per the configuration.

        A scheme may force a policy kind via an ``interest_policy_override``
        class attribute (``dup-adaptive`` does) regardless of the config.
        """
        config = self.config
        kind = (
            getattr(self.scheme, "interest_policy_override", None)
            or config.interest_policy
        )
        if kind == "window":
            return WindowInterestPolicy(config.ttl, config.threshold_c)
        if kind == "adaptive":
            return AdaptiveInterestPolicy(
                config.ttl,
                config.threshold_floor,
                config.threshold_ceiling,
                config.adaptive_gain,
            )
        return EwmaInterestPolicy(config.ttl, config.threshold_c)

    def allocate_node_id(self) -> NodeId:
        """A fresh node id for a joining node."""
        node = self._next_node_id
        self._next_node_id += 1
        return node

    def use_trace(self, trace) -> None:
        """Replay a :class:`repro.workload.trace.QueryTrace` instead of
        generating queries (must be called before :meth:`run`).

        Every event node must exist in the topology; events on departed
        nodes (churn) are skipped.
        """
        if self._ran:
            raise RuntimeError("use_trace must precede run()")
        self._trace = trace

    def add_probe(self, name: str, function, interval: float = 600.0):
        """Sample ``function()`` every ``interval`` simulated seconds.

        Returns the live :class:`repro.sim.monitor.Series`.  Probes must
        be registered before :meth:`run`; the first call fixes the
        sampling cadence.
        """
        from repro.sim.monitor import Monitor

        if self._monitor is None:
            self._monitor = Monitor(self.env, interval)
        series = self._monitor.probe(name, function)
        # Absorb the probe into the unified registry as a live gauge.
        self.registry.gauge(f"probe.{name}", function)
        return series

    def add_standard_probes(self, interval: float = 600.0) -> dict:
        """Register the commonly useful probes; returns name -> series.

        - ``hit_rate`` — cumulative post-warm-up local hit rate;
        - ``mean_latency`` — cumulative post-warm-up latency;
        - ``population`` — overlay size (churn);
        - for DUP schemes, ``subscribed`` and ``dup_tree_size``.
        """
        probes = {
            "hit_rate": lambda: self.latency.hit_rate,
            "mean_latency": lambda: self.latency.mean,
            "population": lambda: float(len(self.tree)),
        }
        if hasattr(self.scheme, "subscribed_nodes"):
            probes["subscribed"] = lambda: float(
                len(self.scheme.subscribed_nodes())
            )
        if hasattr(self.scheme, "dup_tree_size"):
            probes["dup_tree_size"] = lambda: float(
                self.scheme.dup_tree_size()
            )
        return {
            name: self.add_probe(name, function, interval)
            for name, function in probes.items()
        }

    # -- internals -----------------------------------------------------------
    def _dispatch(self, destination: NodeId, message: Message) -> None:
        if destination not in self.tree:
            self.transport.drop(message, destination=destination)
            if isinstance(message, ReplyMessage):
                self.note_incomplete_query()
            return
        admit = self._inbox_admit
        if admit is not None and not admit(destination, message):
            return  # queued for later service (or shed) by the inbox
        self._dispatch_now(destination, message)

    def _dispatch_queued(self, destination: NodeId, message: Message) -> None:
        """Deliver a message the overload inbox held back until now.

        The destination may have departed while the message sat queued;
        the membership check must run again at service time.
        """
        if destination not in self.tree:
            self.transport.drop(message, destination=destination)
            if isinstance(message, ReplyMessage):
                self.note_incomplete_query()
            return
        self._dispatch_now(destination, message)

    def _dispatch_now(self, destination: NodeId, message: Message) -> None:
        if isinstance(message, (AuthorityReplicate, AuthorityHeartbeat)):
            # Failover plumbing is consumed by the engine, not the scheme.
            pool = self.standby_pool
            if pool is not None:
                if isinstance(message, AuthorityReplicate):
                    pool.record_state(destination, message.state)
                else:
                    pool.record_heartbeat(destination)
            return
        channel = self.reliable
        if channel is not None:
            if isinstance(message, AckMessage):
                channel.on_ack(destination, message)
                overload = self.overload
                if overload is not None and overload.plan.breakers_enabled:
                    # The acked peer answered: close its breaker even if
                    # the cooldown has not elapsed (the half-open race).
                    overload.record_success(destination, message.sender)
                return
            if message.reliable_id is not None and not channel.deliver(
                destination, message
            ):
                return  # retransmission duplicate: already processed
        self.scheme.on_message(destination, message)

    def _authority_coalesce_gap(self) -> float:
        """The authority's forced-update coalescing gap (0 when off)."""
        overload = self.overload
        if overload is None:
            return 0.0
        return overload.plan.authority_coalesce_gap

    def _on_new_version(self, version: IndexVersion) -> None:
        self.scheme.on_new_version(version)
        self._replicate_authority_state()

    # -- authority failover ---------------------------------------------------
    def _replicate_authority_state(self) -> None:
        """Ship the authority's state to every standby (after each issue)."""
        pool = self.standby_pool
        if pool is None or self.authority is None:
            return
        root = self.tree.root
        if not self.functioning(root):
            return
        state = self.authority.state()
        for standby in pool.standbys:
            if standby == root or standby not in self.tree:
                continue
            message = AuthorityReplicate(
                key=self.key, state=state, sender=root
            )
            self.transport.send(standby, message, sender=root)

    def _authority_heartbeat_loop(self):
        """Authority -> standby liveness beacons between issues."""
        pool = self.standby_pool
        interval = pool.failover_timeout / 3.0
        while True:
            yield self.env.timeout(interval)
            if pool.promoted is not None:
                return
            root = self.tree.root
            if not self.functioning(root):
                continue  # a crashed authority falls silent
            for standby in pool.standbys:
                if standby == root or standby not in self.tree:
                    continue
                message = AuthorityHeartbeat(key=self.key, sender=root)
                self.transport.send(standby, message, sender=root)

    def _failover_watch_loop(self):
        """Standby-side crash detection: promote on authority silence.

        Promotion additionally requires the authority to actually be
        gone (``functioning`` false): silence alone can also mean the
        standbys sit on the wrong side of a partition, and promoting a
        standby while the real authority lives would split the brain —
        a state this single-authority model cannot represent, so the
        standbys deliberately wait the partition out.
        """
        pool = self.standby_pool
        interval = pool.failover_timeout / 4.0
        while True:
            yield self.env.timeout(interval)
            if pool.promoted is not None:
                return
            if not self.functioning(self.tree.root) and pool.starved(
                self.functioning
            ):
                self._promote_standby()

    def _crash_authority(self) -> None:
        """Deliberately crash the current authority (chaos event)."""
        pool = self.standby_pool
        if pool is None or pool.promoted is not None:
            return
        root = self.tree.root
        if not self.functioning(root):
            return  # already down
        if self.injector is not None and self.injector.plan.silent_failures:
            # Silent: the root blackholes traffic and the authority falls
            # silent; standbys detect the starvation and promote in the
            # watch loop (realistic detection latency).
            self.fail_silently(root)
        else:
            # Oracle: promotion is immediate, mirroring the oracle
            # notification of ordinary node failures.
            if self.authority is not None:
                self.authority.stop()
            self._promote_standby(force=True)

    def _promote_standby(self, force: bool = False) -> Optional[NodeId]:
        """Fail the tree over to the first viable standby.

        Re-roots the search tree through the scheme's repair flows,
        rebuilds the authority at the successor from the replicated
        state (with a catch-up estimate for issues lost to replication
        lag), and resumes version rotation.  Returns the successor, or
        ``None`` when failover is impossible or already done.
        """
        pool = self.standby_pool
        if pool is None or pool.promoted is not None:
            return None
        old_root = self.tree.root
        if not force and self.functioning(old_root):
            return None  # split-brain gate (see _failover_watch_loop)
        successor = pool.promote(self.functioning, force=force)
        if successor is None:
            return None
        injector = self.injector
        if injector is not None and injector.is_dead(old_root):
            latency = injector.mark_detected(old_root)
            if latency is not None and self._detection_latency is not None:
                self._detection_latency.observe(latency)
        if self.authority is not None and not self.authority.stopped:
            self.authority.stop()
        state = pool.state_at(successor)
        if state is None and force and self.authority is not None:
            # Oracle crash before the first replication arrived: the
            # engine may read the state directly, like other oracle paths.
            state = self.authority.state()
        self.scheme.on_root_failed(successor)
        self.forget_node(old_root)
        refresh = self.config.ttl - self.config.push_lead
        if state is not None:
            # Catch up past issues lost with the old root: one per elapsed
            # refresh interval since the snapshot, plus one for the gap.
            elapsed = max(0.0, self.env.now - state.replicated_at)
            initial = state.next_version + int(elapsed // refresh) + 1
            value = state.value
        else:  # pragma: no cover - desperation path, no replica anywhere
            initial = 0
            value = f"host-of-{self.key}"
        self.authority = Authority(
            env=self.env,
            key=self.key,
            ttl=self.config.ttl,
            push_lead=self.config.push_lead,
            on_new_version=self._on_new_version,
            value=value,
            initial_version=initial,
            min_issue_gap=self._authority_coalesce_gap(),
        )
        self._failover_at = self.env.now
        if self.auditor is not None:
            self.auditor.note_disruption("failover")
        return successor

    def _partition_loop(self):
        """Open and heal the scheduled partition windows."""
        injector = self.injector
        for window in injector.plan.partitions:
            delay = window.start - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            injector.begin_partition(
                list(self.tree.nodes), window.components
            )
            yield self.env.timeout(window.duration)
            injector.heal_partition()
            if self.auditor is not None:
                self.auditor.note_disruption("partition")

    def _audit_loop(self):
        """Periodic anti-entropy sweep of the DUP tree invariants."""
        interval = self.config.audit_interval
        while True:
            yield self.env.timeout(interval)
            confirmed = self.auditor.sweep()
            if confirmed and self.recorder is not None:
                # Divergence is an anomaly worth a post-mortem: flush
                # the ring (latest divergence wins the file).
                self.recorder.anomaly("auditor-divergence")

    def _query_loop(self):
        config = self.config
        arrivals = make_arrival_process(
            config.arrival,
            config.query_rate,
            self.streams.get("arrivals"),
            config.pareto_alpha,
        )
        draws = self.streams.get("placement-draws")
        churning = config.churn is not None and config.churn.enabled
        guarded = (
            churning
            or self.injector is not None
            or config.authority_crash_at > 0
        )

        def eligible_origin(node: NodeId) -> bool:
            # After a failover the promoted standby IS in the selector's
            # population (only the original root was excluded at build
            # time); keep the root-queries policy holding for it too.
            return self.functioning(node) and (
                config.root_queries or node != self.tree.root
            )

        # Localised bindings: this loop issues every query in the run.
        timeout = self.env.timeout
        next_gap = arrivals.next_gap
        sessions = self.sessions
        if sessions is not None and sessions.plan.diurnal_enabled:
            # Diurnal modulation: the same stream draws, with the gap
            # divided by the intensity curve at issue time — higher
            # intensity, shorter gaps, identical distribution family.
            base_gap = next_gap
            modulation = sessions.modulation
            env = self.env

            def next_gap() -> float:
                return base_gap() / modulation(env._now)

        on_local_query = self.scheme.on_local_query
        if guarded:
            while True:
                yield timeout(next_gap())
                node = self.selector.sample_alive(draws, eligible_origin)
                if node is None:
                    continue
                on_local_query(node)
        else:
            sample = self.selector.sample
            while True:
                yield timeout(next_gap())
                on_local_query(sample(draws))

    def _trace_loop(self):
        for event in self._trace:
            delay = event.time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            if self.alive(event.node):
                self.scheme.on_local_query(event.node)

    def _churn_loop(self):
        process = ChurnProcess(self.config.churn, self.streams.get("churn"))
        while True:
            yield self.env.timeout(process.next_gap())
            self._apply_churn(process)

    def _apply_churn(self, process: ChurnProcess) -> None:
        kind = process.next_kind()
        members = [n for n in self.tree.nodes if self.functioning(n)]
        non_root = [n for n in members if n != self.tree.root]
        if kind is ChurnEvent.JOIN_EDGE:
            if not non_root:
                return
            lower = process.pick_victim(non_root)
            upper = self.tree.parent(lower)
            self.scheme.on_node_joined_edge(
                self.allocate_node_id(), upper, lower
            )
        elif kind is ChurnEvent.JOIN_LEAF:
            if not members:
                return
            parent = process.pick_victim(members)
            self.scheme.on_node_joined_leaf(parent, self.allocate_node_id())
        else:
            allow_root = (
                kind is ChurnEvent.FAIL
                and self.config.churn.allow_root_failure
                and self.standby_pool is not None
                and self.standby_pool.promoted is None
                and self.functioning(self.tree.root)
            )
            candidates = members if allow_root else non_root
            if len(members) <= process.config.min_population or not candidates:
                return
            victim = process.pick_victim(candidates)
            if kind is ChurnEvent.LEAVE:
                self.scheme.on_node_left(victim)
            elif victim == self.tree.root:
                # The churned failure hit the authority itself: this is
                # the deliberate root-crash path behind allow_root_failure.
                self._crash_authority()
            elif (
                self.injector is not None
                and self.injector.plan.silent_failures
            ):
                # Silent mode: the victim blackholes traffic until a
                # survivor suspects it; no oracle notification.
                self.fail_silently(victim)
            else:
                self.scheme.on_node_failed(victim)

    # -- running ----------------------------------------------------------------
    def start(self) -> None:
        """Start the authority (idempotent).

        Tests use this to drive queries and churn by hand;
        :meth:`run` calls it before installing the workload processes.
        """
        if self.authority is not None:
            return
        if self.standby_pool is not None:
            # Registered before the authority so the very first issue's
            # replication finds the watch machinery in place.
            self.env.process(
                self._authority_heartbeat_loop(),
                name=f"authority-heartbeat-{self.key}",
            )
            self.env.process(
                self._failover_watch_loop(),
                name=f"failover-watch-{self.key}",
            )
        if self.injector is not None and self.injector.plan.partitions:
            self.env.process(
                self._partition_loop(), name=f"partitions-{self.key}"
            )
        if self.config.audit_interval > 0 and hasattr(
            self.scheme, "protocol"
        ):
            from repro.core.auditor import ConsistencyAuditor

            self.auditor = ConsistencyAuditor(
                protocol=self.scheme.protocol,
                tree=self.tree,
                clock=lambda: self.env.now,
                emit=self.scheme._emit_maintenance,
                recorder=self.recorder,
            )
            self.env.process(
                self._audit_loop(), name=f"auditor-{self.key}"
            )
            registry = self.registry
            auditor = self.auditor
            registry.gauge(
                "audit.violations", lambda: float(auditor.total_violations)
            )
            registry.gauge("audit.repairs", lambda: float(auditor.repairs))
            registry.gauge("audit.sweeps", lambda: float(auditor.sweeps))
        if self.config.authority_crash_at > 0:
            self.env.call_later(
                self.config.authority_crash_at, self._crash_authority
            )
        if self.storms is not None:
            self.storms.install()
        if self.sessions is not None:
            self.sessions.install()
        self.authority = Authority(
            env=self.env,
            key=self.key,
            ttl=self.config.ttl,
            push_lead=self.config.push_lead,
            on_new_version=self._on_new_version,
            value=f"host-of-{self.key}",
            min_issue_gap=self._authority_coalesce_gap(),
        )

    def run(self) -> SimulationResult:
        """Execute the run and collect results (one-shot)."""
        if self._ran:
            raise RuntimeError("a Simulation instance runs only once")
        self._ran = True
        started = time.perf_counter()
        self.start()
        if self._trace is not None:
            self.env.process(self._trace_loop(), name="trace-workload")
        else:
            self.env.process(self._query_loop(), name="query-workload")
        if self.config.churn is not None and self.config.churn.enabled:
            self.env.process(self._churn_loop(), name="churn")
        try:
            self.env.run(until=self.config.duration)
        except BaseException:
            # A crashed run is exactly what the flight recorder is for:
            # flush the ring before the exception propagates.
            if self.recorder is not None:
                self.recorder.anomaly("run-failure")
            raise
        wall = time.perf_counter() - started
        return self._collect(wall)

    def _collect(self, wall_seconds: float) -> SimulationResult:
        extras: dict[str, object] = {}
        if hasattr(self.scheme, "subscribed_nodes"):
            extras["subscribed"] = len(self.scheme.subscribed_nodes())
        if hasattr(self.scheme, "dup_tree_size"):
            extras["dup_tree_size"] = self.scheme.dup_tree_size()
        injector = self.injector
        if injector is not None:
            extras["injected_losses"] = injector.injected_losses
            extras["injected_duplicates"] = injector.injected_duplicates
            extras["blackholed"] = injector.blackholed
            if injector.plan.silent_failures:
                extras["undetected_failures"] = len(injector.undetected())
                extras["suspicions"] = self._suspicions
                histogram = self._detection_latency
                if histogram is not None and histogram.count:
                    summary = histogram.summary()
                    extras["detection_count"] = summary["count"]
                    extras["detection_p50"] = summary["p50"]
                    extras["detection_p95"] = summary["p95"]
            if injector.plan.partitions:
                extras["partitions_started"] = injector.partitions_started
                extras["partition_drops"] = injector.partition_drops
        pool = self.standby_pool
        if pool is not None:
            extras["standby_replications"] = pool.replications
            extras["standby_heartbeats"] = pool.heartbeats
            extras["failover_promoted"] = (
                pool.promoted if pool.promoted is not None else -1
            )
            if self._failover_at is not None:
                extras["failover_at"] = self._failover_at
        if self.auditor is not None:
            extras.update(self.auditor.summary())
        if self.reliable is not None:
            extras["retries"] = self.reliable.retries
            extras["acked"] = self.reliable.acked
            extras["delivery_give_ups"] = self.reliable.give_ups
        overload = self.overload
        if overload is not None:
            extras.update(overload.counters())
            if hasattr(self.scheme, "rejected_subscribers"):
                extras["rejected_subscribers"] = (
                    self.scheme.rejected_subscribers
                )
            # Emitted for every DUP-family scheme (plain dup reports 0
            # splits) so the extras key set is identical across family
            # members — the differential harness compares them verbatim.
            if hasattr(self.scheme, "split_subscribers"):
                extras["split_subscribers"] = self.scheme.split_subscribers
                extras["reabsorbed_subscribers"] = (
                    self.scheme.reabsorbed_subscribers
                )
            if hasattr(self.scheme, "max_fanout"):
                extras["dup_max_fanout"] = self.scheme.max_fanout()
            if self.authority is not None:
                extras["authority_coalesced_updates"] = (
                    self.authority.coalesced_updates
                )
        if self.storms is not None:
            extras.update(self.storms.counters())
        if self.sessions is not None:
            extras.update(self.sessions.counters())
            if hasattr(self.scheme, "rejoin_reconciles"):
                extras["rejoin_reconciles"] = self.scheme.rejoin_reconciles
                extras["rejoin_kept_entries"] = (
                    self.scheme.rejoin_kept_entries
                )
                extras["rejoin_excised_entries"] = (
                    self.scheme.rejoin_excised_entries
                )
        if hasattr(self.scheme, "threshold_bounds"):
            bounds = self.scheme.threshold_bounds()
            if bounds is not None:
                extras["threshold_min"], extras["threshold_max"] = bounds
        if self.config.lease_ttl > 0 and hasattr(
            self.scheme, "lease_expiries"
        ):
            extras["lease_expiries"] = self.scheme.lease_expiries
        keep = self.config.keep_latency_samples and self.latency.count
        return SimulationResult(
            config=self.config,
            scheme=self.scheme.name,
            queries=self.latency.count,
            mean_latency=self.latency.mean,
            latency_ci=self.latency.confidence_interval() if keep else None,
            cost_per_query=self.ledger.cost_per_query(self.latency.count),
            hit_rate=self.latency.hit_rate,
            hop_breakdown=dict(self.ledger.breakdown()),
            dropped_messages=self.transport.dropped,
            incomplete_queries=self._incomplete,
            final_population=len(self.tree),
            wall_seconds=wall_seconds,
            extras=extras,
            latency_percentiles=self.latency.percentiles() if keep else {},
            stale_read_fraction=self.stale_read_fraction,
        )
