"""Named, replayable chaos scenarios.

A :class:`ChaosScenario` is a declarative bundle of the robustness
machinery — partition windows, message loss, a deliberate authority
crash, standby failover, and the consistency auditor — expressed as
*offsets from warm-up* so the same scenario applies unchanged to any
scale's configuration.  Applying a scenario is a pure transformation of
a :class:`~repro.engine.config.SimulationConfig`; nothing else changes,
so a scenario run differs from its baseline only by the faults it
declares, and the empty scenario (``"calm"``) is the identity: applying
it returns the config object untouched and the run stays bit-identical
to one that never imported this module.

Scenarios compose with faults the config already carries: windows are
appended to the existing plan (validation still enforces the sorted,
non-overlapping schedule), loss rates and flags are merged by maximum /
union, and failover knobs only ever tighten (a config already running
more standbys keeps them).

The registry :data:`SCENARIOS` names the stock scenarios; ``"blackout"``
is the acceptance scenario of the robustness PR — a 60 s partition with
the authority crashing silently mid-partition under 10 % message loss,
from which a ``dup`` run with the resilience stack must reconverge.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.engine.config import SimulationConfig
from repro.errors import ConfigError
from repro.net.faults import FaultPlan, PartitionWindow
from repro.net.overload import OverloadPlan
from repro.workload.sessions import SessionPlan
from repro.workload.storms import StormPhase, StormPlan

#: (start offset after warm-up, duration, components) per window.
PartitionSpec = tuple[float, float, int]

#: (kind, start offset after warm-up, duration, rate) per storm phase.
StormSpec = tuple[str, float, float, float]


@dataclass(frozen=True)
class ChaosScenario:
    """One named chaos schedule, relative to the config's warm-up.

    Attributes
    ----------
    name:
        Registry key, also used by the CLI (``repro-dup chaos NAME``).
    description:
        One line for ``repro-dup chaos --list``.
    partitions:
        Partition windows as ``(offset, duration, components)`` triples;
        each opens ``offset`` seconds after warm-up ends.
    crash_offset:
        Crash the authority this long after warm-up (None: no crash).
        Under ``silent_failures`` the crash blackholes the root until a
        standby's failover timeout expires; otherwise promotion is
        oracle-immediate.
    loss_rate:
        Uniform transmission loss the scenario adds (merged by max with
        any loss the config already injects).
    silent_failures:
        Whether crashes blackhole instead of oracle-notifying.
    standbys / failover_timeout:
        Authority replication fan-out and the silence budget before a
        standby promotes itself.  Forced to at least 1 standby whenever
        the scenario crashes the authority.
    audit_interval:
        Cadence of the consistency auditor (0 leaves it off).
    overload:
        An :class:`~repro.net.overload.OverloadPlan` the scenario arms
        (None leaves whatever the config carries; a config that already
        has one keeps its own).
    storms:
        Overload storm phases as ``(kind, offset, duration, rate)``
        tuples, offset from warm-up like partitions; appended to any
        phases the config already schedules.
    sessions:
        A :class:`~repro.workload.sessions.SessionPlan` the scenario
        arms — peer crash-restart lifecycle, regional bursts, flap
        damping (None leaves whatever the config carries; a config that
        already has one keeps its own).
    """

    name: str
    description: str
    partitions: tuple[PartitionSpec, ...] = ()
    crash_offset: "float | None" = None
    loss_rate: float = 0.0
    silent_failures: bool = False
    standbys: int = 0
    failover_timeout: float = 120.0
    audit_interval: float = 0.0
    overload: Optional[OverloadPlan] = None
    storms: tuple[StormSpec, ...] = ()
    sessions: Optional[SessionPlan] = None

    def __post_init__(self) -> None:
        if self.crash_offset is not None and self.standbys < 1:
            raise ConfigError(
                f"scenario {self.name!r} crashes the authority but "
                "provisions no standbys"
            )

    @property
    def is_empty(self) -> bool:
        """Whether applying this scenario changes nothing."""
        return (
            not self.partitions
            and self.crash_offset is None
            and self.loss_rate == 0.0
            and not self.silent_failures
            and self.standbys == 0
            and self.audit_interval == 0.0
            and self.overload is None
            and not self.storms
            and self.sessions is None
        )

    def apply(self, config: SimulationConfig) -> SimulationConfig:
        """The config with this scenario's chaos merged in.

        Offsets resolve against ``config.warmup``; every resulting
        absolute time must fit inside the run's horizon.  The empty
        scenario returns ``config`` itself.
        """
        if self.is_empty:
            return config
        changes: dict = {}

        windows = tuple(
            PartitionWindow(
                start=config.warmup + offset,
                duration=duration,
                components=components,
            )
            for offset, duration, components in self.partitions
        )
        for window in windows:
            if window.end > config.duration:
                raise ConfigError(
                    f"scenario {self.name!r}: partition heals at "
                    f"{window.end:g}s, past the horizon "
                    f"({config.duration:g}s)"
                )
        if windows or self.loss_rate > 0 or self.silent_failures:
            base = config.faults if config.faults is not None else FaultPlan()
            changes["faults"] = dataclasses.replace(
                base,
                loss_rate=max(base.loss_rate, self.loss_rate),
                silent_failures=base.silent_failures or self.silent_failures,
                partitions=tuple(
                    sorted(
                        base.partitions + windows, key=lambda w: w.start
                    )
                ),
            )

        if self.crash_offset is not None:
            crash_at = config.warmup + self.crash_offset
            if crash_at >= config.duration:
                raise ConfigError(
                    f"scenario {self.name!r}: authority crash at "
                    f"{crash_at:g}s, past the horizon "
                    f"({config.duration:g}s)"
                )
            changes["authority_crash_at"] = crash_at
        if self.standbys > 0:
            changes["authority_standbys"] = max(
                config.authority_standbys, self.standbys
            )
            changes["failover_timeout"] = (
                self.failover_timeout
                if config.authority_standbys == 0
                else min(config.failover_timeout, self.failover_timeout)
            )
        if self.audit_interval > 0:
            changes["audit_interval"] = (
                self.audit_interval
                if config.audit_interval == 0
                else min(config.audit_interval, self.audit_interval)
            )
        if self.overload is not None and config.overload is None:
            changes["overload"] = self.overload
        if self.storms:
            phases = tuple(
                StormPhase(
                    kind=kind,
                    start=config.warmup + offset,
                    duration=duration,
                    rate=rate,
                )
                for kind, offset, duration, rate in self.storms
            )
            for phase in phases:
                if phase.end > config.duration:
                    raise ConfigError(
                        f"scenario {self.name!r}: storm ends at "
                        f"{phase.end:g}s, past the horizon "
                        f"({config.duration:g}s)"
                    )
            base_phases = (
                config.storms.phases if config.storms is not None else ()
            )
            changes["storms"] = StormPlan(
                phases=tuple(
                    sorted(base_phases + phases, key=lambda p: p.start)
                )
            )
        if self.sessions is not None and config.sessions is None:
            changes["sessions"] = self.sessions
        return config.replace(**changes)


#: Stock scenarios, keyed by name.
SCENARIOS: dict[str, ChaosScenario] = {
    scenario.name: scenario
    for scenario in (
        ChaosScenario(
            name="calm",
            description="no chaos at all; applying it is the identity",
        ),
        ChaosScenario(
            name="split",
            description=(
                "one clean 5-minute two-way partition, no loss, no "
                "crash; measures pure partition divergence and healing"
            ),
            partitions=((300.0, 300.0, 2),),
            audit_interval=150.0,
        ),
        ChaosScenario(
            name="flap",
            description=(
                "a flap storm: peers cycle through short crash-restart "
                "sessions with flap damping armed; the auditor must stay "
                "clean through every rejoin reconciliation"
            ),
            sessions=SessionPlan(
                mean_session=600.0,
                session_alpha=1.5,
                mean_downtime=60.0,
                downtime_sigma=0.75,
                damp_penalty=1.0,
                damp_half_life=300.0,
                damp_suppress=3.0,
                damp_reuse=1.5,
            ),
            audit_interval=150.0,
        ),
        ChaosScenario(
            name="regional",
            description=(
                "correlated regional churn: Poisson bursts crash whole "
                "BFS neighborhoods of the tree at once, with lognormal "
                "recovery times"
            ),
            sessions=SessionPlan(
                mean_downtime=120.0,
                downtime_sigma=0.75,
                regional_rate=1.0 / 600.0,
                regional_radius=2,
            ),
            audit_interval=150.0,
        ),
        ChaosScenario(
            name="regicide",
            description=(
                "oracle authority crash with two standbys and no other "
                "faults; isolates the failover hand-off"
            ),
            crash_offset=300.0,
            standbys=2,
            audit_interval=150.0,
        ),
        ChaosScenario(
            name="blackout",
            description=(
                "the acceptance scenario: 60 s two-way partition, the "
                "authority crashing silently mid-partition, 10% loss; "
                "standbys must detect, promote, and the auditor must "
                "drive reconvergence"
            ),
            partitions=((300.0, 60.0, 2),),
            crash_offset=330.0,
            loss_rate=0.10,
            silent_failures=True,
            standbys=2,
            failover_timeout=120.0,
            audit_interval=150.0,
        ),
        ChaosScenario(
            name="stampede",
            description=(
                "overload storm: a flash crowd plus an authority update "
                "storm against bounded priority inboxes, breakers, a "
                "fanout cap, and update coalescing"
            ),
            overload=OverloadPlan(
                inbox_capacity=48,
                service_rate=1.5,
                max_subscribers=3,
                authority_coalesce_gap=30.0,
                breaker_threshold=3,
                breaker_cooldown=120.0,
            ),
            storms=(
                ("flash-crowd", 120.0, 1800.0, 12.0),
                ("update-storm", 300.0, 1500.0, 1.0),
            ),
        ),
    )
}


def get_scenario(name: str) -> ChaosScenario:
    """Look up a stock scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown chaos scenario {name!r}; "
            f"available: {tuple(sorted(SCENARIOS))}"
        ) from None
