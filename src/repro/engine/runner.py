"""Running simulations: single runs, replications, scheme comparisons.

The comparison runner uses *common random numbers*: every scheme sees the
identical topology, query stream, and placement for each replication seed,
so scheme differences are not confounded by workload noise — and the
"relative cost compared to PCX" ratios are computed pairwise per seed,
exactly as the paper plots them.

Every entry point accepts ``workers``: trials (independent simulations)
are distributed over a process pool by
:class:`~repro.engine.parallel.ParallelRunner` and reassembled in trial
order, so any worker count produces bit-identical results to the serial
path.  ``workers=1`` (or leaving ``REPRO_WORKERS`` unset) executes
inline exactly as before.  :func:`compare_many` / :func:`replicate_many`
fan an *entire sweep grid* out at once — the wall-clock win for the
figure/table experiments, whose points would otherwise each wait for
their own replications.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.engine.config import SimulationConfig
from repro.engine.parallel import ParallelRunner, TrialSpec
from repro.engine.results import (
    ComparisonResult,
    ReplicatedResult,
    SimulationResult,
)
from repro.engine.simulation import Simulation
from repro.errors import ExperimentError
from repro.sim.rng import derive_trial_seed
from repro.stats.confidence import mean_confidence_interval

PAPER_SCHEMES = ("pcx", "cup", "dup")


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """Build and run one simulation."""
    return Simulation(config).run()


def _replication_config(
    config: SimulationConfig, replication: int
) -> SimulationConfig:
    """The configuration of one replication (stable seed derivation)."""
    return config.replace(seed=derive_trial_seed(config.seed, replication))


def run_replications(
    config: SimulationConfig,
    replications: int = 3,
    workers: "int | str | None" = None,
    experiment: str = "",
) -> ReplicatedResult:
    """Run ``replications`` independent seeds of one configuration."""
    if replications < 1:
        raise ExperimentError(
            f"need at least one replication, got {replications}"
        )
    specs = [
        TrialSpec(
            config=_replication_config(config, offset),
            experiment=experiment,
            scheme=config.scheme,
            replication=offset,
        )
        for offset in range(replications)
    ]
    runner = ParallelRunner(workers=workers, experiment=experiment)
    return ReplicatedResult.from_runs(runner.run_trials(specs))


def _assemble_comparison(
    runs: Mapping[str, Sequence[SimulationResult]],
    schemes: Sequence[str],
    baseline: str,
) -> ComparisonResult:
    """Fold per-scheme replication runs into a :class:`ComparisonResult`."""
    by_scheme = {
        name: ReplicatedResult.from_runs(results)
        for name, results in runs.items()
        if name in schemes
    }
    baseline_costs = [run.cost_per_query for run in runs[baseline]]
    relative: dict[str, object] = {}
    for name in schemes:
        ratios = [
            run.cost_per_query / base
            for run, base in zip(runs[name], baseline_costs)
            if base > 0
        ]
        relative[name] = mean_confidence_interval(ratios)
    return ComparisonResult(
        by_scheme=by_scheme, relative_cost=relative, baseline=baseline
    )


def compare_schemes(
    config: SimulationConfig,
    schemes: Sequence[str] = PAPER_SCHEMES,
    replications: int = 3,
    baseline: str = "pcx",
    workers: "int | str | None" = None,
    experiment: str = "",
) -> ComparisonResult:
    """Run several schemes on identical workloads and compare them.

    Parameters
    ----------
    config:
        Base configuration; its ``scheme`` field is overridden per run.
    schemes:
        Scheme names to compare (default: the paper's three).
    replications:
        Independent seeds per scheme (paired across schemes).
    baseline:
        Scheme the relative costs are normalized to; it is run even if it
        is not in ``schemes``.
    workers:
        Process-pool size for the trial fan-out (default: serial).
    """
    comparisons = compare_many(
        {None: config},
        schemes=schemes,
        replications=replications,
        baseline=baseline,
        workers=workers,
        experiment=experiment,
    )
    return comparisons[None]


def compare_many(
    configs: Mapping,
    schemes: Sequence[str] = PAPER_SCHEMES,
    replications: int = 3,
    baseline: str = "pcx",
    workers: "int | str | None" = None,
    experiment: str = "",
) -> dict:
    """Compare schemes at every sweep point of ``configs`` at once.

    ``configs`` maps sweep-point keys (a rate, a size, a tuple, ...) to
    base configurations.  The full ``points x replications x schemes``
    grid is fanned out over one worker pool, then regrouped into
    ``{point: ComparisonResult}`` — value-identical to calling
    :func:`compare_schemes` per point, but a single global fan-out keeps
    every worker busy until the whole sweep drains.
    """
    if replications < 1:
        raise ExperimentError(
            f"need at least one replication, got {replications}"
        )
    all_schemes = list(dict.fromkeys(list(schemes) + [baseline]))
    specs = []
    keys = []
    for point, config in configs.items():
        for offset in range(replications):
            seeded = _replication_config(config, offset)
            for name in all_schemes:
                specs.append(
                    TrialSpec(
                        config=seeded.replace(scheme=name),
                        experiment=experiment,
                        point=point,
                        scheme=name,
                        replication=offset,
                    )
                )
                keys.append((point, name))
    runner = ParallelRunner(workers=workers, experiment=experiment)
    results = runner.run_trials(specs)

    grouped: dict = {
        point: {name: [] for name in all_schemes} for point in configs
    }
    for (point, name), result in zip(keys, results):
        grouped[point][name].append(result)
    return {
        point: _assemble_comparison(runs, schemes, baseline)
        for point, runs in grouped.items()
    }


def replicate_many(
    configs: Mapping,
    replications: int = 2,
    workers: "int | str | None" = None,
    experiment: str = "",
) -> dict:
    """Run replications of every configuration in one global fan-out.

    Returns ``{key: ReplicatedResult}`` in ``configs`` order —
    value-identical to calling :func:`run_replications` per key.
    """
    if replications < 1:
        raise ExperimentError(
            f"need at least one replication, got {replications}"
        )
    specs = []
    keys = []
    for key, config in configs.items():
        for offset in range(replications):
            specs.append(
                TrialSpec(
                    config=_replication_config(config, offset),
                    experiment=experiment,
                    point=key,
                    scheme=config.scheme,
                    replication=offset,
                )
            )
            keys.append(key)
    runner = ParallelRunner(workers=workers, experiment=experiment)
    results = runner.run_trials(specs)

    grouped: dict = {key: [] for key in configs}
    for key, result in zip(keys, results):
        grouped[key].append(result)
    return {
        key: ReplicatedResult.from_runs(runs)
        for key, runs in grouped.items()
    }


def sweep(
    config: SimulationConfig,
    parameter: str,
    values: Sequence,
    schemes: Sequence[str] = PAPER_SCHEMES,
    replications: int = 2,
    extra: Optional[dict] = None,
    workers: "int | str | None" = None,
    experiment: str = "",
) -> dict:
    """Run a one-parameter sweep and return {value: ComparisonResult}.

    The workhorse behind every paper figure: Figure 4 is
    ``sweep(cfg, "query_rate", [...])``, Figure 6 is
    ``sweep(cfg, "max_degree", [...])``, and so on.  All
    ``values x replications x schemes`` trials share one worker pool.
    """
    configs = {}
    for value in values:
        changes = {parameter: value}
        if extra:
            changes.update(extra)
        configs[value] = config.replace(**changes)
    return compare_many(
        configs,
        schemes=schemes,
        replications=replications,
        workers=workers,
        experiment=experiment,
    )
