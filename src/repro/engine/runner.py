"""Running simulations: single runs, replications, scheme comparisons.

The comparison runner uses *common random numbers*: every scheme sees the
identical topology, query stream, and placement for each replication seed,
so scheme differences are not confounded by workload noise — and the
"relative cost compared to PCX" ratios are computed pairwise per seed,
exactly as the paper plots them.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.engine.config import SimulationConfig
from repro.engine.results import (
    ComparisonResult,
    ReplicatedResult,
    SimulationResult,
)
from repro.engine.simulation import Simulation
from repro.errors import ExperimentError
from repro.stats.confidence import mean_confidence_interval

PAPER_SCHEMES = ("pcx", "cup", "dup")


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """Build and run one simulation."""
    return Simulation(config).run()


def run_replications(
    config: SimulationConfig, replications: int = 3
) -> ReplicatedResult:
    """Run ``replications`` independent seeds of one configuration."""
    if replications < 1:
        raise ExperimentError(
            f"need at least one replication, got {replications}"
        )
    runs = [
        run_simulation(config.replace(seed=config.seed + offset))
        for offset in range(replications)
    ]
    return ReplicatedResult.from_runs(runs)


def compare_schemes(
    config: SimulationConfig,
    schemes: Sequence[str] = PAPER_SCHEMES,
    replications: int = 3,
    baseline: str = "pcx",
) -> ComparisonResult:
    """Run several schemes on identical workloads and compare them.

    Parameters
    ----------
    config:
        Base configuration; its ``scheme`` field is overridden per run.
    schemes:
        Scheme names to compare (default: the paper's three).
    replications:
        Independent seeds per scheme (paired across schemes).
    baseline:
        Scheme the relative costs are normalized to; it is run even if it
        is not in ``schemes``.
    """
    if replications < 1:
        raise ExperimentError(
            f"need at least one replication, got {replications}"
        )
    all_schemes = list(dict.fromkeys(list(schemes) + [baseline]))
    runs: dict[str, list[SimulationResult]] = {name: [] for name in all_schemes}
    for offset in range(replications):
        seeded = config.replace(seed=config.seed + offset)
        for name in all_schemes:
            runs[name].append(run_simulation(seeded.replace(scheme=name)))

    by_scheme = {
        name: ReplicatedResult.from_runs(results)
        for name, results in runs.items()
        if name in schemes
    }
    baseline_costs = [run.cost_per_query for run in runs[baseline]]
    relative: dict[str, object] = {}
    for name in schemes:
        ratios = [
            run.cost_per_query / base
            for run, base in zip(runs[name], baseline_costs)
            if base > 0
        ]
        relative[name] = mean_confidence_interval(ratios)
    return ComparisonResult(
        by_scheme=by_scheme, relative_cost=relative, baseline=baseline
    )


def sweep(
    config: SimulationConfig,
    parameter: str,
    values: Sequence,
    schemes: Sequence[str] = PAPER_SCHEMES,
    replications: int = 2,
    extra: Optional[dict] = None,
) -> dict:
    """Run a one-parameter sweep and return {value: ComparisonResult}.

    The workhorse behind every paper figure: Figure 4 is
    ``sweep(cfg, "query_rate", [...])``, Figure 6 is
    ``sweep(cfg, "max_degree", [...])``, and so on.
    """
    results = {}
    for value in values:
        changes = {parameter: value}
        if extra:
            changes.update(extra)
        results[value] = compare_schemes(
            config.replace(**changes), schemes, replications
        )
    return results
