"""Simulation configuration (the paper's Table I, plus engine knobs).

``SimulationConfig()`` with no arguments reproduces the paper's default
parameters: 4096 nodes, maximum degree 4, one query per second network-
wide, Zipf theta 0.95, threshold c = 6, TTL 60 minutes, push lead 1
minute, exponential hop latency with mean 0.1 s, and a >= 180,000 s
horizon.  :meth:`SimulationConfig.benchmark_scale` returns a laptop-scale
variant used by the benchmark harness (same shapes, smaller wall-clock).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigError
from repro.net.faults import FaultPlan
from repro.net.overload import OverloadPlan
from repro.workload.churn import ChurnConfig
from repro.workload.sessions import SessionPlan
from repro.workload.storms import StormPlan

TOPOLOGIES = ("random-tree", "chord", "can", "balanced", "chain", "star")
ARRIVALS = ("exponential", "pareto")
INTEREST_POLICIES = ("window", "ewma", "adaptive")


@dataclass(frozen=True)
class SimulationConfig:
    """All parameters of one simulation run.

    Paper parameters
    ----------------
    scheme:
        ``"pcx"``, ``"cup"``, ``"dup"``, or an ablation baseline.
    num_nodes:
        Overlay size ``n`` (paper default 4096, range 256-16384).
    max_degree:
        Maximum children per search-tree node ``D`` (default 4, range
        2-10).
    query_rate:
        Network-wide mean query arrival rate ``lambda`` in queries per
        second (default 1, range 0.01-100).
    arrival:
        ``"exponential"`` (default) or ``"pareto"`` inter-arrival times.
    pareto_alpha:
        Pareto tail index (paper uses 1.05 and 1.20).
    zipf_theta:
        Query placement skew (paper sweeps [0.5, 4]; Table I's default
        column is partly illegible, we use the customary 0.95).
    threshold_c:
        Interest threshold ``c`` (default 6, range 2-10).
    ttl:
        Index TTL in seconds (60 minutes per the measurement study the
        paper cites).
    push_lead:
        The root re-issues/pushes this long before expiry (1 minute).
    hop_latency_mean:
        Mean of the exponential per-hop message latency (0.1 s).
    duration:
        Simulated horizon (paper: at least 180,000 s).

    Engine parameters
    -----------------
    topology:
        ``"random-tree"`` (the paper's generator), ``"chord"`` / ``"can"``
        (trees derived from real DHT routing paths), or a regular shape
        for tests.
    interest_policy:
        ``"window"`` (the paper's), ``"ewma"`` (ablation), or
        ``"adaptive"`` (per-node self-tuning threshold; the policy the
        ``dup-adaptive`` scheme selects regardless of this field).
    threshold_floor / threshold_ceiling:
        Hard bounds on the adaptive policy's per-node threshold.  With
        ``floor == ceiling == threshold_c`` the adaptive policy is
        bit-identical to the static window policy.
    adaptive_gain:
        Scales the adaptive policy's observed per-window query rate
        into a threshold (a node seeing ``r`` queries per TTL settles
        near ``round(adaptive_gain * r)``, clamped to the bounds).
    warmup:
        Metrics (latency and cost) ignore everything before this time.
    seed:
        Root seed for all random streams.
    root_queries:
        Whether the authority node also originates queries (off by
        default: its queries are answered locally and only dilute the
        metrics).
    piggyback:
        Whether subscribe/register bits ride on request packets for free
        (paper's design; disable for the ablation).
    immediate_push:
        Whether an explicitly subscribing node is immediately sent the
        current index (paper: the root "pushes the current and future
        updated index").
    eager_subscribe:
        When a DUP node becomes interested on a local cache *hit*, send
        the subscription as an explicit hop-by-hop walk right away
        instead of deferring it to ride the node's next outgoing request
        (the paper allows both; deferred piggybacking is the default and
        the eager variant is an ablation).
    count_keepalive:
        Whether keep-alive traffic counts toward query cost.
    keep_latency_samples:
        Retain per-query latencies for confidence intervals.
    churn:
        Optional churn rates (None disables churn).

    Resilience parameters (all off by default; a run with every one of
    them at its default is bit-identical to a build without the fault
    layer)
    ------------------------------------------------------------------
    faults:
        Optional :class:`~repro.net.faults.FaultPlan` injecting message
        loss, duplication, delay jitter, and silent failures.
    retry_budget:
        Retransmissions per delivery on the reliable channel DUP's
        control messages and pushes use (0 disables the channel).
    ack_timeout:
        Initial ack timeout of the reliable channel in simulated
        seconds; attempt ``k`` waits ``ack_timeout * retry_backoff**k``.
    retry_backoff:
        Exponential backoff factor for retransmission timeouts.
    lease_ttl:
        Lease duration for soft-state subscriptions in simulated
        seconds (0 disables leases).
    lease_refresh_interval:
        How often lease refreshes travel upstream (0 means
        ``lease_ttl / 3``).
    authority_standbys:
        Number of standby nodes the authority replicates its version
        state to (0 disables replication and failover).  Standbys are
        chosen breadth-first from the root at start-up; on an authority
        crash the first functioning standby promotes itself, re-roots
        the tree, and resumes version rotation.
    failover_timeout:
        How long a standby tolerates authority silence (no heartbeat,
        no replication) before promoting itself; heartbeats flow at a
        third of this.  Only meaningful with ``authority_standbys > 0``.
    authority_crash_at:
        Deliberately crash the authority at this simulated time (0
        disables).  Under ``silent_failures`` the crash blackholes the
        root until standby detection fires; otherwise promotion is
        oracle-immediate.  Requires ``authority_standbys >= 1``.
    audit_interval:
        Cadence of the runtime consistency auditor
        (:mod:`repro.core.auditor`), which re-checks the DUP tree
        invariants and repairs divergence left behind by partitions and
        failovers (0 disables; only DUP-family schemes are audited).
    retry_timeout_cap:
        Upper bound on any single retransmission timeout of the
        reliable channel (0, the default, leaves the exponential
        backoff uncapped).  With a cap, attempt ``k`` waits
        ``min(ack_timeout * retry_backoff**k, retry_timeout_cap)``.
    overload:
        Optional :class:`~repro.net.overload.OverloadPlan`: bounded
        priority-classed per-node inboxes with deterministic shedding,
        per-peer circuit breakers, DUP/CUP subscriber caps, and
        authority update coalescing.  ``None`` (or an all-default
        plan) keeps the run bit-identical to a build without the
        overload layer.
    storms:
        Optional :class:`~repro.workload.storms.StormPlan`: adversarial
        overload workloads (flash crowds, authority update storms,
        subscribe/unsubscribe thrash) layered on top of the base
        arrivals.  ``None`` or an empty plan injects nothing.
    sessions:
        Optional :class:`~repro.workload.sessions.SessionPlan`: the peer
        fluctuation layer — Pareto session lengths with lognormal
        downtimes (crash-restart with amnesia semantics), diurnal
        arrival modulation, correlated regional failure bursts, and
        BGP-style flap damping.  ``None`` or an all-default plan keeps
        the run bit-identical to a build without the layer.  A plan
        with crashes enabled implies silent failures (the engine arms a
        fault injector if the fault plan does not already have one).
    flight_recorder:
        Arm the protocol flight recorder (:mod:`repro.flightrec`): a
        bounded ring buffer of structured protocol events (tree
        mutations, subscriptions, lease expiries, failovers, audit
        repairs, partitions) dumped as JSONL on anomaly or on demand.
        Off by default; the ``REPRO_FLIGHT`` environment variable arms
        it process-wide.  The recorder is a pure observer — a run with
        it armed is bit-identical to the same run without.
    flight_capacity:
        Ring-buffer size of the flight recorder (events retained;
        per-kind counts are kept for the whole run regardless).
    """

    scheme: str = "dup"
    num_nodes: int = 4096
    max_degree: int = 4
    query_rate: float = 1.0
    arrival: str = "exponential"
    pareto_alpha: float = 1.05
    zipf_theta: float = 0.95
    threshold_c: int = 6
    ttl: float = 3600.0
    push_lead: float = 60.0
    hop_latency_mean: float = 0.1
    duration: float = 180_000.0
    topology: str = "random-tree"
    interest_policy: str = "window"
    threshold_floor: int = 2
    threshold_ceiling: int = 10
    adaptive_gain: float = 0.5
    warmup: float = 3600.0
    seed: int = 1
    root_queries: bool = False
    piggyback: bool = True
    immediate_push: bool = True
    eager_subscribe: bool = False
    count_keepalive: bool = False
    keep_latency_samples: bool = True
    churn: Optional[ChurnConfig] = field(default=None)
    faults: Optional[FaultPlan] = field(default=None)
    retry_budget: int = 0
    ack_timeout: float = 2.0
    retry_backoff: float = 2.0
    lease_ttl: float = 0.0
    lease_refresh_interval: float = 0.0
    authority_standbys: int = 0
    failover_timeout: float = 120.0
    authority_crash_at: float = 0.0
    audit_interval: float = 0.0
    retry_timeout_cap: float = 0.0
    overload: Optional[OverloadPlan] = field(default=None)
    storms: Optional[StormPlan] = field(default=None)
    sessions: Optional[SessionPlan] = field(default=None)
    flight_recorder: bool = False
    flight_capacity: int = 4096

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` on any invalid parameter."""
        if self.num_nodes < 2:
            raise ConfigError(f"num_nodes must be >= 2, got {self.num_nodes}")
        if self.max_degree < 1:
            raise ConfigError(
                f"max_degree must be >= 1, got {self.max_degree}"
            )
        if self.query_rate <= 0:
            raise ConfigError(
                f"query_rate must be positive, got {self.query_rate}"
            )
        if self.arrival not in ARRIVALS:
            raise ConfigError(
                f"arrival must be one of {ARRIVALS}, got {self.arrival!r}"
            )
        if self.arrival == "pareto" and self.pareto_alpha <= 1:
            raise ConfigError(
                "pareto_alpha must exceed 1 so the mean rate exists; "
                f"got {self.pareto_alpha}"
            )
        if self.zipf_theta < 0:
            raise ConfigError(
                f"zipf_theta must be >= 0, got {self.zipf_theta}"
            )
        if self.threshold_c < 0:
            raise ConfigError(
                f"threshold_c must be >= 0, got {self.threshold_c}"
            )
        if self.ttl <= 0:
            raise ConfigError(f"ttl must be positive, got {self.ttl}")
        if not 0 <= self.push_lead < self.ttl:
            raise ConfigError(
                f"push_lead must lie in [0, ttl); got {self.push_lead}"
            )
        if self.hop_latency_mean <= 0:
            raise ConfigError(
                "hop_latency_mean must be positive, got "
                f"{self.hop_latency_mean}"
            )
        if self.duration <= self.warmup:
            raise ConfigError(
                f"duration ({self.duration}) must exceed warmup "
                f"({self.warmup})"
            )
        if self.warmup < 0:
            raise ConfigError(f"warmup must be >= 0, got {self.warmup}")
        if self.topology not in TOPOLOGIES:
            raise ConfigError(
                f"topology must be one of {TOPOLOGIES}, got {self.topology!r}"
            )
        if self.interest_policy not in INTEREST_POLICIES:
            raise ConfigError(
                f"interest_policy must be one of {INTEREST_POLICIES}, "
                f"got {self.interest_policy!r}"
            )
        if self.threshold_floor < 0:
            raise ConfigError(
                f"threshold_floor must be >= 0, got {self.threshold_floor}"
            )
        if self.threshold_ceiling < self.threshold_floor:
            raise ConfigError(
                f"threshold_ceiling ({self.threshold_ceiling}) must be >= "
                f"threshold_floor ({self.threshold_floor})"
            )
        if self.adaptive_gain < 0:
            raise ConfigError(
                f"adaptive_gain must be >= 0, got {self.adaptive_gain}"
            )
        if self.faults is not None:
            self.faults.validate()
        if self.retry_budget < 0:
            raise ConfigError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )
        if self.ack_timeout <= 0:
            raise ConfigError(
                f"ack_timeout must be positive, got {self.ack_timeout}"
            )
        if self.retry_backoff < 1:
            raise ConfigError(
                f"retry_backoff must be >= 1, got {self.retry_backoff}"
            )
        if self.lease_ttl < 0:
            raise ConfigError(
                f"lease_ttl must be >= 0, got {self.lease_ttl}"
            )
        if self.lease_refresh_interval < 0:
            raise ConfigError(
                "lease_refresh_interval must be >= 0, got "
                f"{self.lease_refresh_interval}"
            )
        if 0 < self.lease_ttl <= self.lease_refresh_interval:
            raise ConfigError(
                "lease_refresh_interval must be smaller than lease_ttl "
                f"({self.lease_refresh_interval} >= {self.lease_ttl})"
            )
        if self.authority_standbys < 0:
            raise ConfigError(
                "authority_standbys must be >= 0, got "
                f"{self.authority_standbys}"
            )
        if self.authority_standbys >= self.num_nodes:
            raise ConfigError(
                f"authority_standbys ({self.authority_standbys}) must be "
                f"smaller than the overlay ({self.num_nodes} nodes)"
            )
        if self.failover_timeout <= 0:
            raise ConfigError(
                "failover_timeout must be positive, got "
                f"{self.failover_timeout}"
            )
        if self.authority_crash_at < 0:
            raise ConfigError(
                "authority_crash_at must be >= 0, got "
                f"{self.authority_crash_at}"
            )
        if self.audit_interval < 0:
            raise ConfigError(
                f"audit_interval must be >= 0, got {self.audit_interval}"
            )
        if self.retry_timeout_cap < 0:
            raise ConfigError(
                "retry_timeout_cap must be >= 0, got "
                f"{self.retry_timeout_cap}"
            )
        if 0 < self.retry_timeout_cap < self.ack_timeout:
            raise ConfigError(
                f"retry_timeout_cap ({self.retry_timeout_cap}) must be "
                f">= ack_timeout ({self.ack_timeout})"
            )
        if self.overload is not None:
            self.overload.validate()
        if self.storms is not None:
            self.storms.validate()
        if self.sessions is not None:
            self.sessions.validate()
        if self.flight_capacity < 1:
            raise ConfigError(
                f"flight_capacity must be >= 1, got {self.flight_capacity}"
            )
        wants_root_crash = self.authority_crash_at > 0 or (
            self.churn is not None and self.churn.allow_root_failure
        )
        if wants_root_crash and self.authority_standbys < 1:
            raise ConfigError(
                "crashing the authority (authority_crash_at or "
                "churn.allow_root_failure) needs authority_standbys >= 1 "
                "so a successor exists"
            )

    def replace(self, **changes) -> "SimulationConfig":
        """A copy with the given fields changed (validated)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def paper_defaults(cls, **overrides) -> "SimulationConfig":
        """The paper's Table I defaults (full fidelity; slow in Python)."""
        return cls(**overrides)

    @classmethod
    def benchmark_scale(cls, **overrides) -> "SimulationConfig":
        """Laptop-scale defaults for the benchmark harness.

        Shrinks the population and horizon while preserving every shape
        the paper reports (the experiments sweep the same parameters).
        """
        defaults = {
            "num_nodes": 512,
            "duration": 3600.0 * 5,
            "warmup": 3600.0,
        }
        defaults.update(overrides)
        return cls(**defaults)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.scheme} n={self.num_nodes} D={self.max_degree} "
            f"lambda={self.query_rate} {self.arrival} "
            f"theta={self.zipf_theta} c={self.threshold_c} "
            f"T={self.duration:.0f}s seed={self.seed}"
        )
