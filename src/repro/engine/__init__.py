"""Simulation engine: configuration, wiring, and replication running."""

from repro.engine.config import SimulationConfig
from repro.engine.parallel import (
    ParallelRunner,
    ProgressEvent,
    TrialFailure,
    TrialSpec,
    resolve_workers,
    set_default_event_sink,
    set_default_progress,
)
from repro.engine.telemetry import TelemetryWriter, render_top
from repro.engine.results import ComparisonResult, ReplicatedResult, SimulationResult
from repro.engine.multikey import MultiKeySimulation
from repro.engine.runner import (
    compare_many,
    compare_schemes,
    replicate_many,
    run_replications,
    run_simulation,
    sweep,
)
from repro.engine.simulation import Simulation

__all__ = [
    "ComparisonResult",
    "MultiKeySimulation",
    "ParallelRunner",
    "ProgressEvent",
    "ReplicatedResult",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "TelemetryWriter",
    "TrialFailure",
    "TrialSpec",
    "compare_many",
    "compare_schemes",
    "render_top",
    "replicate_many",
    "resolve_workers",
    "run_replications",
    "run_simulation",
    "set_default_event_sink",
    "set_default_progress",
    "sweep",
]
