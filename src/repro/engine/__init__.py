"""Simulation engine: configuration, wiring, and replication running."""

from repro.engine.config import SimulationConfig
from repro.engine.results import ComparisonResult, ReplicatedResult, SimulationResult
from repro.engine.multikey import MultiKeySimulation
from repro.engine.runner import compare_schemes, run_replications, run_simulation
from repro.engine.simulation import Simulation

__all__ = [
    "ComparisonResult",
    "MultiKeySimulation",
    "ReplicatedResult",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "compare_schemes",
    "run_replications",
    "run_simulation",
]
