"""Multi-key simulation: many indices sharing one overlay.

The paper's evaluation fixes a single index at one authority ("the index
is maintained at the root node") — a clean isolation of one propagation
tree.  Real deployments serve many keys at once: each key hashes to its
own authority on the DHT, giving every key its own search tree over the
*same* node population, with caches, transport, and cost accounting
shared.

:class:`MultiKeySimulation` builds a Chord ring, derives one search tree
per key, instantiates an independent scheme instance per key (each bound
to a per-key facade slice), and drives a workload where queries pick a
key by a Zipf law over keys and an origin node by the paper's Zipf law
over nodes.  Metrics aggregate across keys; per-key breakdowns are
available for analysis.

Churn is intentionally out of scope here (each key's tree would need its
own repair sequencing); use the single-key engine for churn studies.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.interest import (
    AdaptiveInterestPolicy,
    EwmaInterestPolicy,
    WindowInterestPolicy,
)
from repro.engine.config import SimulationConfig
from repro.engine.results import SimulationResult
from repro.errors import ConfigError
from repro.index.authority import Authority
from repro.index.cache import IndexCache
from repro.index.entry import IndexVersion
from repro.metrics.counters import CostLedger
from repro.metrics.latency import LatencyRecorder
from repro.net.message import Message, ReplyMessage
from repro.net.transport import Transport
from repro.schemes.registry import make_scheme
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams
from repro.stats.distributions import Exponential, ZipfSelector
from repro.topology.chord import ChordRing
from repro.topology.chord_tree import chord_search_tree
from repro.workload.arrivals import make_arrival_process
from repro.workload.selection import ZipfNodeSelector

NodeId = int


class _KeySlice:
    """The per-key facade a scheme instance is bound to.

    Implements the same narrow interface as
    :class:`repro.engine.simulation.Simulation` but scoped to one key's
    tree and authority, while sharing the clock, transport, caches, and
    metric recorders with every other key.
    """

    #: Interface parity: the multi-key engine has no reliable channel
    #: (schemes fall back to plain transport sends).
    reliable = None

    def __init__(self, owner: "MultiKeySimulation", key: int, tree):
        self._owner = owner
        self.key = key
        self.tree = tree
        self.authority: Optional[Authority] = None
        self.scheme: Optional[object] = None

    # -- shared state --------------------------------------------------------
    @property
    def env(self) -> Environment:
        """The shared simulation clock."""
        return self._owner.env

    @property
    def transport(self) -> Transport:
        """The shared transport (one cost ledger for all keys)."""
        return self._owner.transport

    @property
    def config(self) -> SimulationConfig:
        """The run configuration."""
        return self._owner.config

    @property
    def ledger(self) -> CostLedger:
        """The shared cost ledger."""
        return self._owner.ledger

    # -- per-key topology -------------------------------------------------------
    def is_root(self, node: NodeId) -> bool:
        """Whether ``node`` is this key's authority."""
        return node == self.tree.root

    def parent(self, node: NodeId) -> Optional[NodeId]:
        """Parent on this key's search tree."""
        if node not in self.tree:
            return None
        return self.tree.parent(node)

    def alive(self, node: NodeId) -> bool:
        """Whether ``node`` is in the overlay (static here)."""
        return node in self.tree

    def functioning(self, node: NodeId) -> bool:
        """Interface parity: no fault injection here, so alive == working."""
        return node in self.tree

    def note_read(self, version: IndexVersion) -> None:
        """Interface parity: staleness tracking is single-key only."""

    def suspect_peer(self, reporter: NodeId, suspect: NodeId) -> None:
        """Interface parity: no failures here, so suspicions are moot."""

    def cache(self, node: NodeId) -> IndexCache:
        """The node's (shared, multi-key) cache."""
        return self._owner.cache(node)

    def lookup(self, node: NodeId) -> Optional[IndexVersion]:
        """A valid copy of this key's index at ``node``."""
        if node == self.tree.root:
            if self.authority is None:
                return None
            return self.authority.current
        return self.cache(node).get(self.key, self.env.now)

    def record_latency(
        self,
        hops: float,
        issued_at: float,
        trace_id: Optional[int] = None,
    ) -> None:
        """Record a completed query (shared recorder + per-key count)."""
        self._owner.record_latency(self.key, hops, issued_at)

    def note_incomplete_query(self) -> None:
        """Reply lost (cannot happen without churn; kept for interface)."""
        self._owner.note_incomplete_query()

    def trace_begin(self, node: NodeId) -> Optional[int]:
        """Interface parity: per-query tracing is single-key only."""
        return None

    def trace_annotate(
        self,
        trace_id: Optional[int],
        node: NodeId,
        event: str,
        detail: str = "",
    ) -> None:
        """Interface parity: annotations are dropped (no tracer here)."""

    def make_interest_policy(self):
        """Per-node, per-key interest policy.

        Mirrors :meth:`Simulation.make_interest_policy`, including the
        scheme-level ``interest_policy_override`` consult (the scheme
        back-reference is set when the slice is wired up).
        """
        config = self.config
        kind = (
            getattr(self.scheme, "interest_policy_override", None)
            or config.interest_policy
        )
        if kind == "window":
            return WindowInterestPolicy(config.ttl, config.threshold_c)
        if kind == "adaptive":
            return AdaptiveInterestPolicy(
                config.ttl,
                config.threshold_floor,
                config.threshold_ceiling,
                config.adaptive_gain,
            )
        return EwmaInterestPolicy(config.ttl, config.threshold_c)

    def forget_node(self, node: NodeId) -> None:  # pragma: no cover - no churn
        """Interface parity with the single-key engine."""


class MultiKeySimulation:
    """Simulate ``num_keys`` indices over one shared Chord overlay.

    Parameters
    ----------
    config:
        Base configuration.  ``topology`` must be ``"chord"`` (per-key
        trees require a real DHT); ``query_rate`` is the network-wide
        rate across *all* keys; churn must be disabled.
    num_keys:
        Number of distinct indices.
    key_zipf_theta:
        Popularity skew across keys (0 = uniform).
    """

    def __init__(
        self,
        config: SimulationConfig,
        num_keys: int = 8,
        key_zipf_theta: float = 0.8,
    ):
        config.validate()
        if num_keys < 1:
            raise ConfigError(f"need at least one key, got {num_keys}")
        if config.topology != "chord":
            raise ConfigError("multi-key simulation requires topology='chord'")
        if config.churn is not None and config.churn.enabled:
            raise ConfigError("multi-key simulation does not support churn")
        self.config = config
        self.num_keys = num_keys
        self.streams = RandomStreams(config.seed)
        self.env = Environment()
        rng = self.streams.get("topology")
        self.ring = ChordRing.random(config.num_nodes, rng, bits=32)
        self.ledger = CostLedger(
            clock=lambda: self.env.now,
            warmup=config.warmup,
            count_keepalive=config.count_keepalive,
        )
        self.latency = LatencyRecorder(
            clock=lambda: self.env.now,
            warmup=config.warmup,
            keep_samples=config.keep_latency_samples,
        )
        self.transport = Transport(
            env=self.env,
            latency=Exponential(config.hop_latency_mean),
            rng=self.streams.get("latency"),
            ledger=self.ledger,
        )
        self.transport.bind(self._dispatch)
        self._caches: dict[NodeId, IndexCache] = {}
        self._incomplete = 0
        self._queries_per_key: dict[int, int] = {}

        self.slices: dict[int, _KeySlice] = {}
        self.schemes: dict[int, object] = {}
        for index in range(num_keys):
            key = int(rng.integers(0, 1 << 32))
            while key in self.slices:  # pragma: no cover - 2^-32 chance
                key = int(rng.integers(0, 1 << 32))
            tree = chord_search_tree(self.ring, key)
            slice_ = _KeySlice(self, key, tree)
            scheme = make_scheme(config.scheme)
            slice_.scheme = scheme
            scheme.bind(slice_)
            self.slices[key] = slice_
            self.schemes[key] = scheme
            self._queries_per_key[key] = 0

        self._key_selector = ZipfSelector(num_keys, key_zipf_theta)
        self._key_order = list(self.slices)
        self._node_selector = ZipfNodeSelector(
            list(self.ring.node_ids),
            config.zipf_theta,
            self.streams.get("placement"),
        )
        self._ran = False

    # -- shared services ---------------------------------------------------
    def cache(self, node: NodeId) -> IndexCache:
        """One cache per node, holding entries for every key."""
        cache = self._caches.get(node)
        if cache is None:
            cache = IndexCache()
            self._caches[node] = cache
        return cache

    def record_latency(self, key: int, hops: float, issued_at: float) -> None:
        """Aggregate recorder plus a per-key query counter."""
        self.latency.record(hops, issued_at)
        if issued_at >= self.config.warmup:
            self._queries_per_key[key] += 1

    def note_incomplete_query(self) -> None:
        """Interface parity; unreachable without churn."""
        self._incomplete += 1

    def _dispatch(self, destination: NodeId, message: Message) -> None:
        scheme = self.schemes.get(message.key)
        if scheme is None:  # pragma: no cover - defensive
            self.transport.drop()
            if isinstance(message, ReplyMessage):
                self.note_incomplete_query()
            return
        scheme.on_message(destination, message)

    # -- workload ------------------------------------------------------------
    def _query_loop(self):
        config = self.config
        arrivals = make_arrival_process(
            config.arrival,
            config.query_rate,
            self.streams.get("arrivals"),
            config.pareto_alpha,
        )
        key_rng = self.streams.get("key-draws")
        node_rng = self.streams.get("placement-draws")
        while True:
            yield self.env.timeout(arrivals.next_gap())
            key = self._key_order[self._key_selector.sample(key_rng)]
            node = self._node_selector.sample(node_rng)
            slice_ = self.slices[key]
            if node == slice_.tree.root:
                # The authority answers its own queries locally.
                self.record_latency(key, 0, self.env.now)
                continue
            self.schemes[key].on_local_query(node)

    # -- running ----------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Run and return aggregate results (per-key counts in extras)."""
        if self._ran:
            raise RuntimeError("a MultiKeySimulation runs only once")
        self._ran = True
        started = time.perf_counter()
        for slice_ in self.slices.values():
            scheme = self.schemes[slice_.key]
            slice_.authority = Authority(
                env=self.env,
                key=slice_.key,
                ttl=self.config.ttl,
                push_lead=self.config.push_lead,
                on_new_version=scheme.on_new_version,
                value=f"host-of-{slice_.key}",
            )
        self.env.process(self._query_loop(), name="multikey-workload")
        self.env.run(until=self.config.duration)
        wall = time.perf_counter() - started

        extras: dict[str, object] = {
            "num_keys": self.num_keys,
            "queries_per_key": dict(
                sorted(
                    self._queries_per_key.items(),
                    key=lambda item: -item[1],
                )
            ),
        }
        subscribed_total = 0
        for scheme in self.schemes.values():
            if hasattr(scheme, "subscribed_nodes"):
                subscribed_total += len(scheme.subscribed_nodes())
        if subscribed_total:
            extras["total_subscriptions"] = subscribed_total
        keep = self.config.keep_latency_samples and self.latency.count
        return SimulationResult(
            config=self.config,
            scheme=f"{self.config.scheme} (x{self.num_keys} keys)",
            queries=self.latency.count,
            mean_latency=self.latency.mean,
            latency_ci=self.latency.confidence_interval() if keep else None,
            cost_per_query=self.ledger.cost_per_query(self.latency.count),
            hit_rate=self.latency.hit_rate,
            hop_breakdown=dict(self.ledger.breakdown()),
            dropped_messages=self.transport.dropped,
            incomplete_queries=self._incomplete,
            final_population=len(self.ring),
            wall_seconds=wall,
            extras=extras,
            latency_percentiles=self.latency.percentiles() if keep else {},
        )
