"""Multi-key simulation: many indices sharing one overlay.

The paper's evaluation fixes a single index at one authority ("the index
is maintained at the root node") — a clean isolation of one propagation
tree.  Real deployments serve many keys at once: each key hashes to its
own authority on the DHT, giving every key its own search tree over the
*same* node population, with caches, transport, and cost accounting
shared.

:class:`MultiKeySimulation` builds a Chord ring, derives one search tree
per key, instantiates an independent scheme instance per key (each bound
to a per-key facade slice), and drives a workload where queries pick a
key by a Zipf law over keys and an origin node by the paper's Zipf law
over nodes.  Metrics aggregate across keys; per-key breakdowns are
available for analysis.

Churn is intentionally out of scope here (each key's tree would need its
own repair sequencing); use the single-key engine for churn studies.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.interest import (
    AdaptiveInterestPolicy,
    EwmaInterestPolicy,
    WindowInterestPolicy,
)
from repro.engine.config import SimulationConfig
from repro.engine.results import SimulationResult
from repro.errors import ConfigError
from repro.index.authority import Authority
from repro.index.cache import IndexCache
from repro.index.entry import IndexVersion
from repro.core.soa import ExpiryWheel, FlatSubscriberTable
from repro.metrics.counters import CostLedger
from repro.metrics.latency import LatencyRecorder
from repro.metrics.windows import TimeBuckets, WindowedReservoir
from repro.net.message import Message, ReplyMessage
from repro.net.transport import Transport
from repro.schemes.registry import make_scheme
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams
from repro.stats.distributions import Exponential, shared_zipf
from repro.topology.chord import ChordRing
from repro.topology.chord_tree import LazyChordTree, chord_search_tree
from repro.workload.arrivals import make_arrival_process
from repro.workload.selection import ZipfNodeSelector

NodeId = int


class _KeySlice:
    """The per-key facade a scheme instance is bound to.

    Implements the same narrow interface as
    :class:`repro.engine.simulation.Simulation` but scoped to one key's
    tree and authority, while sharing the clock, transport, caches, and
    metric recorders with every other key.
    """

    #: Interface parity: the multi-key engine has no reliable channel
    #: (schemes fall back to plain transport sends).
    reliable = None

    def __init__(self, owner: "MultiKeySimulation", key: int, tree):
        self._owner = owner
        self.key = key
        self.tree = tree
        self.authority: Optional[Authority] = None
        self.scheme: Optional[object] = None

    # -- shared state --------------------------------------------------------
    @property
    def env(self) -> Environment:
        """The shared simulation clock."""
        return self._owner.env

    @property
    def transport(self) -> Transport:
        """The shared transport (one cost ledger for all keys)."""
        return self._owner.transport

    @property
    def config(self) -> SimulationConfig:
        """The run configuration."""
        return self._owner.config

    @property
    def ledger(self) -> CostLedger:
        """The shared cost ledger."""
        return self._owner.ledger

    # -- per-key topology -------------------------------------------------------
    def is_root(self, node: NodeId) -> bool:
        """Whether ``node`` is this key's authority."""
        return node == self.tree.root

    def parent(self, node: NodeId) -> Optional[NodeId]:
        """Parent on this key's search tree."""
        if node not in self.tree:
            return None
        return self.tree.parent(node)

    def alive(self, node: NodeId) -> bool:
        """Whether ``node`` is in the overlay (static here)."""
        return node in self.tree

    def functioning(self, node: NodeId) -> bool:
        """Interface parity: no fault injection here, so alive == working."""
        return node in self.tree

    def note_read(self, version: IndexVersion) -> None:
        """Interface parity: staleness tracking is single-key only."""

    def suspect_peer(self, reporter: NodeId, suspect: NodeId) -> None:
        """Interface parity: no failures here, so suspicions are moot."""

    def cache(self, node: NodeId) -> IndexCache:
        """The node's (shared, multi-key) cache."""
        return self._owner.cache(node)

    def lookup(self, node: NodeId) -> Optional[IndexVersion]:
        """A valid copy of this key's index at ``node``."""
        if node == self.tree.root:
            if self.authority is None:
                return None
            return self.authority.current
        return self.cache(node).get(self.key, self.env.now)

    def record_latency(
        self,
        hops: float,
        issued_at: float,
        trace_id: Optional[int] = None,
    ) -> None:
        """Record a completed query (shared recorder + per-key count)."""
        self._owner.record_latency(self.key, hops, issued_at)

    def note_incomplete_query(self) -> None:
        """Reply lost (cannot happen without churn; kept for interface)."""
        self._owner.note_incomplete_query()

    def trace_begin(self, node: NodeId) -> Optional[int]:
        """Interface parity: per-query tracing is single-key only."""
        return None

    def trace_annotate(
        self,
        trace_id: Optional[int],
        node: NodeId,
        event: str,
        detail: str = "",
    ) -> None:
        """Interface parity: annotations are dropped (no tracer here)."""

    def make_interest_policy(self):
        """Per-node, per-key interest policy.

        Mirrors :meth:`Simulation.make_interest_policy`, including the
        scheme-level ``interest_policy_override`` consult (the scheme
        back-reference is set when the slice is wired up).
        """
        config = self.config
        kind = (
            getattr(self.scheme, "interest_policy_override", None)
            or config.interest_policy
        )
        if kind == "window":
            return WindowInterestPolicy(config.ttl, config.threshold_c)
        if kind == "adaptive":
            return AdaptiveInterestPolicy(
                config.ttl,
                config.threshold_floor,
                config.threshold_ceiling,
                config.adaptive_gain,
            )
        return EwmaInterestPolicy(config.ttl, config.threshold_c)

    def forget_node(self, node: NodeId) -> None:  # pragma: no cover - no churn
        """Interface parity with the single-key engine."""


class MultiKeySimulation:
    """Simulate ``num_keys`` indices over one shared Chord overlay.

    Parameters
    ----------
    config:
        Base configuration.  ``topology`` must be ``"chord"`` (per-key
        trees require a real DHT); ``query_rate`` is the network-wide
        rate across *all* keys; churn must be disabled.
    num_keys:
        Number of distinct indices.
    key_zipf_theta:
        Popularity skew across keys (0 = uniform).
    """

    def __init__(
        self,
        config: SimulationConfig,
        num_keys: int = 8,
        key_zipf_theta: float = 0.8,
    ):
        config.validate()
        if num_keys < 1:
            raise ConfigError(f"need at least one key, got {num_keys}")
        if config.topology != "chord":
            raise ConfigError("multi-key simulation requires topology='chord'")
        if config.churn is not None and config.churn.enabled:
            raise ConfigError("multi-key simulation does not support churn")
        self.config = config
        self.num_keys = num_keys
        self.streams = RandomStreams(config.seed)
        self.env = Environment()
        rng = self.streams.get("topology")
        self.ring = ChordRing.random(config.num_nodes, rng, bits=32)
        self.ledger = CostLedger(
            clock=lambda: self.env.now,
            warmup=config.warmup,
            count_keepalive=config.count_keepalive,
        )
        self.latency = LatencyRecorder(
            clock=lambda: self.env.now,
            warmup=config.warmup,
            keep_samples=config.keep_latency_samples,
        )
        self.transport = Transport(
            env=self.env,
            latency=Exponential(config.hop_latency_mean),
            rng=self.streams.get("latency"),
            ledger=self.ledger,
        )
        self.transport.bind(self._dispatch)
        self._caches: dict[NodeId, IndexCache] = {}
        self._incomplete = 0
        self._queries_per_key: dict[int, int] = {}

        self.slices: dict[int, _KeySlice] = {}
        self.schemes: dict[int, object] = {}
        for index in range(num_keys):
            key = int(rng.integers(0, 1 << 32))
            while key in self.slices:  # pragma: no cover - 2^-32 chance
                key = int(rng.integers(0, 1 << 32))
            tree = chord_search_tree(self.ring, key)
            slice_ = _KeySlice(self, key, tree)
            scheme = make_scheme(config.scheme)
            slice_.scheme = scheme
            scheme.bind(slice_)
            self.slices[key] = slice_
            self.schemes[key] = scheme
            self._queries_per_key[key] = 0

        # Shared CDF table: the key law is a pure function of
        # (num_keys, theta), so 4096-key configs reuse one cumsum.
        self._key_selector = shared_zipf(num_keys, key_zipf_theta)
        self._key_order = list(self.slices)
        self._node_selector = ZipfNodeSelector(
            list(self.ring.node_ids),
            config.zipf_theta,
            self.streams.get("placement"),
        )
        self._ran = False

    # -- shared services ---------------------------------------------------
    def cache(self, node: NodeId) -> IndexCache:
        """One cache per node, holding entries for every key."""
        cache = self._caches.get(node)
        if cache is None:
            cache = IndexCache()
            self._caches[node] = cache
        return cache

    def record_latency(self, key: int, hops: float, issued_at: float) -> None:
        """Aggregate recorder plus a per-key query counter."""
        self.latency.record(hops, issued_at)
        if issued_at >= self.config.warmup:
            self._queries_per_key[key] += 1

    def note_incomplete_query(self) -> None:
        """Interface parity; unreachable without churn."""
        self._incomplete += 1

    def _dispatch(self, destination: NodeId, message: Message) -> None:
        scheme = self.schemes.get(message.key)
        if scheme is None:  # pragma: no cover - defensive
            self.transport.drop()
            if isinstance(message, ReplyMessage):
                self.note_incomplete_query()
            return
        scheme.on_message(destination, message)

    # -- workload ------------------------------------------------------------
    def _query_loop(self):
        config = self.config
        arrivals = make_arrival_process(
            config.arrival,
            config.query_rate,
            self.streams.get("arrivals"),
            config.pareto_alpha,
        )
        key_rng = self.streams.get("key-draws")
        node_rng = self.streams.get("placement-draws")
        while True:
            yield self.env.timeout(arrivals.next_gap())
            key = self._key_order[self._key_selector.sample(key_rng)]
            node = self._node_selector.sample(node_rng)
            slice_ = self.slices[key]
            if node == slice_.tree.root:
                # The authority answers its own queries locally.
                self.record_latency(key, 0, self.env.now)
                continue
            self.schemes[key].on_local_query(node)

    # -- running ----------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Run and return aggregate results (per-key counts in extras)."""
        if self._ran:
            raise RuntimeError("a MultiKeySimulation runs only once")
        self._ran = True
        started = time.perf_counter()
        for slice_ in self.slices.values():
            scheme = self.schemes[slice_.key]
            slice_.authority = Authority(
                env=self.env,
                key=slice_.key,
                ttl=self.config.ttl,
                push_lead=self.config.push_lead,
                on_new_version=scheme.on_new_version,
                value=f"host-of-{slice_.key}",
            )
        self.env.process(self._query_loop(), name="multikey-workload")
        self.env.run(until=self.config.duration)
        wall = time.perf_counter() - started

        extras: dict[str, object] = {
            "num_keys": self.num_keys,
            "queries_per_key": dict(
                sorted(
                    self._queries_per_key.items(),
                    key=lambda item: -item[1],
                )
            ),
        }
        subscribed_total = 0
        for scheme in self.schemes.values():
            if hasattr(scheme, "subscribed_nodes"):
                subscribed_total += len(scheme.subscribed_nodes())
        if subscribed_total:
            extras["total_subscriptions"] = subscribed_total
        keep = self.config.keep_latency_samples and self.latency.count
        return SimulationResult(
            config=self.config,
            scheme=f"{self.config.scheme} (x{self.num_keys} keys)",
            queries=self.latency.count,
            mean_latency=self.latency.mean,
            latency_ci=self.latency.confidence_interval() if keep else None,
            cost_per_query=self.ledger.cost_per_query(self.latency.count),
            hit_rate=self.latency.hit_rate,
            hop_breakdown=dict(self.ledger.breakdown()),
            dropped_messages=self.transport.dropped,
            incomplete_queries=self._incomplete,
            final_population=len(self.ring),
            wall_seconds=wall,
            extras=extras,
            latency_percentiles=self.latency.percentiles() if keep else {},
        )


# ---------------------------------------------------------------------------
# Sharded scale path: 10^5 nodes x 10^3 keys in bounded memory
# ---------------------------------------------------------------------------


class _SweptCache(IndexCache):
    """An :class:`IndexCache` that files every store on an expiry wheel.

    The single-key engines evict lazily on :meth:`IndexCache.get`; at
    scale that leaves every entry nobody re-reads resident until the end
    of the run.  Each successful store pushes an ``(expires_at, node)``
    hint to the engine's shared :class:`~repro.core.soa.ExpiryWheel`;
    the sweep loop pops due hints and runs the cache's vectorized
    :meth:`~repro.index.cache.IndexCache.sweep`.  Refreshes simply push
    a newer hint — the superseded one pops later and finds nothing
    expired (lazy invalidation), so behaviour is unchanged.
    """

    __slots__ = ("_wheel", "_node")

    def __init__(self, node: NodeId, wheel: ExpiryWheel):
        super().__init__()
        self._node = node
        self._wheel = wheel

    def put(self, version: IndexVersion, now: float) -> bool:
        changed = super().put(version, now)
        if changed:
            copy = self.peek(version.key)
            if copy is not None:
                self._wheel.push(copy.expires_at, self._node)
        return changed


def default_shard_count(num_keys: int) -> int:
    """The fixed shard decomposition for ``num_keys`` indices.

    A pure function of the key count — never of the worker count — so
    results are bit-identical whichever pool size executes the shards.
    """
    return min(8, int(num_keys))


class MultiKeyScaleSimulation:
    """One shard of a sharded multi-key run at population scale.

    The multi-key workload decomposes exactly by key: a query for key
    ``k`` touches only ``k``'s search tree, authority, and cache
    entries.  This engine exploits that to run *rank shards* — each
    shard owns a contiguous range of the global key-popularity ranking
    and simulates only its keys:

    - The Poisson query stream is **thinned** per shard: the shard's
      arrival rate is the global rate times its slice's probability
      mass, and key draws use the *conditional* Zipf law
      (:meth:`~repro.stats.distributions.ZipfSelector.slice`), so the
      union over shards reproduces the global workload law exactly.
    - Per-key trees are :class:`~repro.topology.chord_tree.LazyChordTree`
      views — O(1) setup, parents materialized only for nodes the
      workload actually touches — instead of eagerly materialized
      O(n log n)-per-key dicts.
    - Caches are wheel-swept (:class:`_SweptCache`), latency tails come
      from bounded streaming estimators
      (:class:`~repro.metrics.windows.WindowedReservoir` /
      :class:`~repro.metrics.windows.TimeBuckets`) instead of per-query
      sample lists, and subscription fanout is audited through one
      :class:`~repro.core.soa.FlatSubscriberTable`.

    The ring and the key sequence are drawn from the same streams for
    every shard (they depend only on the config), so shard ``i`` of
    ``m`` sees exactly the world the unsharded run would.  Shard-local
    streams are namespaced by rank range, making each shard a pure
    function of ``(config, num_keys, shard)`` — the parallel runner can
    execute shards in any order on any worker count without changing a
    single draw.
    """

    def __init__(
        self,
        config: SimulationConfig,
        num_keys: int = 1024,
        key_zipf_theta: float = 0.8,
        shard_index: int = 0,
        shard_count: int = 1,
        ring: Optional[ChordRing] = None,
        keys: Optional[list[int]] = None,
        sweep_interval: Optional[float] = None,
    ):
        config.validate()
        if num_keys < 1:
            raise ConfigError(f"need at least one key, got {num_keys}")
        if not 0 <= shard_index < shard_count:
            raise ConfigError(
                f"shard {shard_index} outside [0, {shard_count})"
            )
        if shard_count > num_keys:
            raise ConfigError(
                f"cannot cut {num_keys} keys into {shard_count} shards"
            )
        if config.topology != "chord":
            raise ConfigError("scale simulation requires topology='chord'")
        if config.churn is not None and config.churn.enabled:
            raise ConfigError("scale simulation does not support churn")
        self.config = config
        self.num_keys = num_keys
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.streams = RandomStreams(config.seed)
        self.env = Environment()
        if ring is None or keys is None:
            ring, keys = _ring_and_keys(config, num_keys)
        self.ring = ring
        self._keys = keys

        # Contiguous rank range [lo, hi) owned by this shard.
        self.rank_lo = shard_index * num_keys // shard_count
        self.rank_hi = (shard_index + 1) * num_keys // shard_count
        self._key_slice = shared_zipf(num_keys, key_zipf_theta).slice(
            self.rank_lo, self.rank_hi
        )

        self.ledger = CostLedger(
            clock=lambda: self.env.now,
            warmup=config.warmup,
            count_keepalive=config.count_keepalive,
        )
        self.latency = LatencyRecorder(
            clock=lambda: self.env.now,
            warmup=config.warmup,
            keep_samples=False,
        )
        self.reservoir = WindowedReservoir()
        self.buckets = TimeBuckets(width=max(config.duration / 64, 1.0))
        self.transport = Transport(
            env=self.env,
            latency=Exponential(config.hop_latency_mean),
            rng=self._stream("latency"),
            ledger=self.ledger,
        )
        self.transport.bind(self._dispatch)
        self.wheel = ExpiryWheel()
        self._sweep_interval = (
            sweep_interval
            if sweep_interval is not None
            else max(config.ttl / 2, 1.0)
        )
        self._caches: dict[NodeId, _SweptCache] = {}
        self._swept_entries = 0
        self._incomplete = 0
        self._queries_per_key: dict[int, int] = {}

        self.slices: dict[int, _KeySlice] = {}
        self.schemes: dict[int, object] = {}
        for rank in range(self.rank_lo, self.rank_hi):
            key = keys[rank]
            tree = LazyChordTree(self.ring, key)
            slice_ = _KeySlice(self, key, tree)
            scheme = make_scheme(config.scheme)
            slice_.scheme = scheme
            scheme.bind(slice_)
            self.slices[key] = slice_
            self.schemes[key] = scheme
            self._queries_per_key[key] = 0

        self._node_selector = ZipfNodeSelector(
            list(self.ring.node_ids),
            config.zipf_theta,
            self._stream("placement"),
        )
        self._ran = False

    def _stream(self, name: str):
        """A shard-local stream, namespaced by owned rank range."""
        return self.streams.get(
            f"scale/{self.rank_lo}-{self.rank_hi}/{name}"
        )

    # -- shared services (interface mirrored from MultiKeySimulation) -------
    def cache(self, node: NodeId) -> IndexCache:
        """One wheel-swept cache per node, shared by the shard's keys."""
        cache = self._caches.get(node)
        if cache is None:
            cache = _SweptCache(node, self.wheel)
            self._caches[node] = cache
        return cache

    def record_latency(self, key: int, hops: float, issued_at: float) -> None:
        """Streaming recorders: no per-query allocation survives."""
        self.latency.record(hops, issued_at)
        if issued_at >= self.config.warmup:
            self._queries_per_key[key] += 1
            self.reservoir.observe(hops)
            self.buckets.observe(issued_at, hops)

    def note_incomplete_query(self) -> None:
        """Interface parity; unreachable without churn."""
        self._incomplete += 1

    def _dispatch(self, destination: NodeId, message: Message) -> None:
        scheme = self.schemes.get(message.key)
        if scheme is None:  # pragma: no cover - defensive
            self.transport.drop()
            if isinstance(message, ReplyMessage):
                self.note_incomplete_query()
            return
        scheme.on_message(destination, message)

    # -- processes -----------------------------------------------------------
    def _query_loop(self):
        config = self.config
        # Thinning: a Poisson stream marked by an independent key draw
        # splits into independent Poisson streams per mark subset; this
        # shard's subset is its rank range, with probability mass
        # ``slice.mass`` under the key law.
        arrivals = make_arrival_process(
            config.arrival,
            config.query_rate * self._key_slice.mass,
            self._stream("arrivals"),
            config.pareto_alpha,
        )
        key_rng = self._stream("key-draws")
        node_rng = self._stream("placement-draws")
        while True:
            yield self.env.timeout(arrivals.next_gap())
            key = self._keys[self._key_slice.sample(key_rng)]
            node = self._node_selector.sample(node_rng)
            slice_ = self.slices[key]
            if node == slice_.tree.root:
                self.record_latency(key, 0, self.env.now)
                continue
            self.schemes[key].on_local_query(node)

    def _sweep_loop(self):
        """Vectorized TTL reclamation: one flatnonzero pass per period."""
        while True:
            yield self.env.timeout(self._sweep_interval)
            now = self.env.now
            due = self.wheel.pop_due(now)
            if not due:
                continue
            touched: dict[int, None] = {}
            for node, _ in due:
                touched[node] = None
            for node in touched:
                cache = self._caches.get(node)
                if cache is not None:
                    self._swept_entries += cache.sweep(now)

    # -- running ---------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Run this shard and return its (mergeable) results."""
        if self._ran:
            raise RuntimeError("a MultiKeyScaleSimulation runs only once")
        self._ran = True
        started = time.perf_counter()
        for slice_ in self.slices.values():
            scheme = self.schemes[slice_.key]
            slice_.authority = Authority(
                env=self.env,
                key=slice_.key,
                ttl=self.config.ttl,
                push_lead=self.config.push_lead,
                on_new_version=scheme.on_new_version,
                value=f"host-of-{slice_.key}",
            )
        self.env.process(self._query_loop(), name="scale-workload")
        self.env.process(self._sweep_loop(), name="scale-sweeper")
        self.env.run(until=self.config.duration)
        wall = time.perf_counter() - started

        subscribers = FlatSubscriberTable()
        for key, scheme in self.schemes.items():
            if hasattr(scheme, "subscribed_nodes"):
                for node in scheme.subscribed_nodes():
                    subscribers.add(node, key)
        parents_touched = sum(
            slice_.tree.touched for slice_ in self.slices.values()
        )
        extras: dict[str, object] = {
            "num_keys": self.num_keys,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "rank_lo": self.rank_lo,
            "rank_hi": self.rank_hi,
            "shard_mass": self._key_slice.mass,
            "hits": self.latency.hits,
            "total_hops": self.latency.total_hops,
            "queries_per_key": dict(
                sorted(
                    self._queries_per_key.items(),
                    key=lambda item: -item[1],
                )
            ),
            "total_subscriptions": len(subscribers),
            "max_fanout": subscribers.max_fanout(),
            "parents_touched": parents_touched,
            "swept_entries": self._swept_entries,
            "resident_entries": sum(
                len(cache) for cache in self._caches.values()
            ),
            "latency_reservoir": self.reservoir,
            "latency_buckets": self.buckets,
        }
        return SimulationResult(
            config=self.config,
            scheme=(
                f"{self.config.scheme} (scale shard "
                f"{self.shard_index}/{self.shard_count})"
            ),
            queries=self.latency.count,
            mean_latency=self.latency.mean,
            latency_ci=None,
            cost_per_query=self.ledger.cost_per_query(self.latency.count),
            hit_rate=self.latency.hit_rate,
            hop_breakdown=dict(self.ledger.breakdown()),
            dropped_messages=self.transport.dropped,
            incomplete_queries=self._incomplete,
            final_population=len(self.ring),
            wall_seconds=wall,
            extras=extras,
        )


#: Per-process memo of (ring, keys) — both are pure functions of the
#: config's seed/size, and at 10^5 nodes a ring is worth reusing across
#: the shards a worker executes.
_WORLD_CACHE: dict[tuple[int, int, int], tuple[ChordRing, list[int]]] = {}


def _ring_and_keys(
    config: SimulationConfig, num_keys: int
) -> tuple[ChordRing, list[int]]:
    """The shared world every shard of a run agrees on.

    Draws the ring and then the key ids from the ``"topology"`` stream
    in the same order as :class:`MultiKeySimulation`, so the world is a
    pure function of ``(seed, num_nodes, num_keys)`` — identical in
    every worker process, whichever shards it happens to execute.
    """
    cache_key = (config.seed, config.num_nodes, num_keys)
    world = _WORLD_CACHE.get(cache_key)
    if world is None:
        rng = RandomStreams(config.seed).get("topology")
        ring = ChordRing.random(config.num_nodes, rng, bits=32)
        keys: list[int] = []
        seen: set[int] = set()
        while len(keys) < num_keys:
            key = int(rng.integers(0, 1 << 32))
            if key in seen:  # pragma: no cover - 2^-32 chance
                continue
            seen.add(key)
            keys.append(key)
        world = (ring, keys)
        _WORLD_CACHE[cache_key] = world
    return world


def _execute_scale_shard(spec) -> tuple[SimulationResult, None]:
    """Worker-side shard executor for the parallel runner.

    ``spec.point`` carries the shard descriptor; the ring is rebuilt (or
    fetched from the per-process memo) inside the worker, so the spec
    itself stays small and picklable.
    """
    point = spec.point
    sim = MultiKeyScaleSimulation(
        config=spec.config,
        num_keys=point["num_keys"],
        key_zipf_theta=point["key_zipf_theta"],
        shard_index=point["shard_index"],
        shard_count=point["shard_count"],
        sweep_interval=point.get("sweep_interval"),
    )
    return sim.run(), None


def run_scale(
    config: SimulationConfig,
    num_keys: int = 1024,
    key_zipf_theta: float = 0.8,
    shard_count: Optional[int] = None,
    workers: "int | str | None" = 1,
    sweep_interval: Optional[float] = None,
) -> SimulationResult:
    """Run a sharded multi-key simulation and merge shard results.

    ``shard_count`` defaults to :func:`default_shard_count` — a pure
    function of ``num_keys`` — and every merged number is bit-identical
    for any ``workers`` value, because workers only decide *where* the
    fixed shards execute, never what they compute.
    """
    from repro.engine.parallel import ParallelRunner, TrialSpec

    if shard_count is None:
        shard_count = default_shard_count(num_keys)
    specs = [
        TrialSpec(
            config=config,
            experiment="scale",
            point={
                "num_keys": num_keys,
                "key_zipf_theta": key_zipf_theta,
                "shard_index": index,
                "shard_count": shard_count,
                "sweep_interval": sweep_interval,
            },
            scheme=config.scheme,
            replication=index,
        )
        for index in range(shard_count)
    ]
    runner = ParallelRunner(
        workers=workers, experiment="scale", execute=_execute_scale_shard
    )
    results = runner.run_trials(specs)
    return merge_scale_results(results)


def merge_scale_results(results: list[SimulationResult]) -> SimulationResult:
    """Exact cross-shard merge of per-shard :class:`SimulationResult`\\ s.

    Counts and hop sums add; the mean and hit rate are recomputed from
    the merged numerators; latency tails come from merging the shards'
    streaming reservoirs.  Wall-clock is the *sum* of shard walls (total
    compute spent), never part of any golden.
    """
    if not results:
        raise ConfigError("no shard results to merge")
    queries = sum(result.queries for result in results)
    hits = sum(int(result.extras["hits"]) for result in results)
    total_hops = sum(
        float(result.extras["total_hops"]) for result in results
    )
    charged: dict[str, int] = {}
    for result in results:
        for category, count in result.hop_breakdown.items():
            charged[category] = charged.get(category, 0) + count
    cost_total = sum(
        result.cost_per_query * result.queries
        for result in results
        if result.queries
    )
    reservoir = results[0].extras["latency_reservoir"]
    buckets = results[0].extras["latency_buckets"]
    for result in results[1:]:
        reservoir = reservoir.merge(result.extras["latency_reservoir"])
        buckets = buckets.merge(result.extras["latency_buckets"])
    queries_per_key: dict[int, int] = {}
    for result in results:
        queries_per_key.update(result.extras["queries_per_key"])
    first = results[0]
    extras: dict[str, object] = {
        "num_keys": first.extras["num_keys"],
        "shard_count": len(results),
        "hits": hits,
        "total_hops": total_hops,
        "queries_per_key": dict(
            sorted(queries_per_key.items(), key=lambda item: -item[1])
        ),
        "total_subscriptions": sum(
            int(result.extras["total_subscriptions"]) for result in results
        ),
        "max_fanout": max(
            int(result.extras["max_fanout"]) for result in results
        ),
        "parents_touched": sum(
            int(result.extras["parents_touched"]) for result in results
        ),
        "swept_entries": sum(
            int(result.extras["swept_entries"]) for result in results
        ),
        "resident_entries": sum(
            int(result.extras["resident_entries"]) for result in results
        ),
        "latency_p50": reservoir.percentile(50),
        "latency_p95": reservoir.percentile(95),
        "latency_p99": reservoir.percentile(99),
        "bucket_count": len(buckets),
    }
    return SimulationResult(
        config=first.config,
        scheme=(
            f"{first.config.scheme} "
            f"(scale x{first.extras['num_keys']} keys, "
            f"{len(results)} shards)"
        ),
        queries=queries,
        mean_latency=total_hops / queries if queries else float("nan"),
        latency_ci=None,
        cost_per_query=cost_total / queries if queries else float("nan"),
        hit_rate=hits / queries if queries else float("nan"),
        hop_breakdown=charged,
        dropped_messages=sum(r.dropped_messages for r in results),
        incomplete_queries=sum(r.incomplete_queries for r in results),
        final_population=first.final_population,
        wall_seconds=sum(r.wall_seconds for r in results),
        extras=extras,
    )
