"""Multiprocess fan-out for the experiment engine.

Every paper sweep is embarrassingly parallel: each ``(sweep point,
scheme, replication)`` trial is one fully independent simulation whose
randomness is a pure function of its derived seed
(:func:`repro.sim.rng.derive_trial_seed`).  :class:`ParallelRunner`
distributes trials across a process pool and reassembles the results in
trial order, so the merged output is **bit-identical** to a serial run
regardless of worker count or scheduling: a worker never mutates shared
state, it only returns a picklable :class:`SimulationResult` plus a
frozen copy of its run's :class:`~repro.metrics.registry.MetricsRegistry`.

``workers=1`` bypasses the pool entirely and executes trials inline in
submission order — exactly the historical serial code path.  Worker
failures are propagated to the caller as :class:`ExperimentError` naming
the failing experiment, sweep point, scheme, replication, and seed.

Worker-count resolution (:func:`resolve_workers`):

- an explicit integer is used as-is;
- ``"auto"`` (the CLI default) uses every available core;
- ``None`` (the library default) consults the ``REPRO_WORKERS``
  environment variable — the CI matrix sets ``REPRO_WORKERS=2`` to drive
  the whole tier-1 suite through the pool path — and falls back to
  serial execution.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.engine.config import SimulationConfig
from repro.engine.results import SimulationResult
from repro.engine.simulation import Simulation
from repro.errors import ExperimentError
from repro.metrics.registry import FrozenMetrics

#: Environment variable consulted when no worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

_default_progress: Optional[Callable[[str], None]] = None


def set_default_progress(
    callback: Optional[Callable[[str], None]],
) -> Optional[Callable[[str], None]]:
    """Install a process-wide progress sink; returns the previous one.

    The CLI points this at stderr so sweeps report per-point completion
    without threading a callback through every experiment signature.
    ``None`` silences progress (the default, keeping test output clean).
    """
    global _default_progress
    previous = _default_progress
    _default_progress = callback
    return previous


@dataclass(frozen=True)
class TrialFailure:
    """A trial that raised, recorded for the per-experiment failure table."""

    experiment: str
    trial: str
    error: str

    def to_record(self) -> dict:
        """A JSONL-ready record (``type`` discriminates the stream)."""
        return {"type": "trial-failure", **asdict(self)}


@dataclass(frozen=True)
class ProgressEvent:
    """One structured progress tick from a sweep.

    Emitted once per finished (or failed) trial.  ``eta_seconds`` and
    ``utilization`` are live gauges: remaining-trial estimate at the
    current completion rate, and the fraction of worker capacity spent
    inside simulations so far.  ``mean_latency`` / ``cost_per_query``
    mirror the finished trial's headline numbers (NaN on failure) so a
    dashboard can plot rolling divergence/cost without the full result.
    ``shed_fraction`` / ``max_queue_depth`` surface the overload layer's
    gauges (NaN when the trial ran without one); ``down_nodes`` /
    ``flap_suppressed`` the fluctuation layer's (end-of-run currently
    down count and flap-damped peer count, NaN without the layer).
    """

    kind: str  # "trial-done" | "trial-failed"
    experiment: str
    trial: str
    done: int
    failed: int
    total: int
    workers: int
    wall_seconds: float
    elapsed_seconds: float
    eta_seconds: float
    utilization: float
    mean_latency: float = math.nan
    cost_per_query: float = math.nan
    shed_fraction: float = math.nan
    max_queue_depth: float = math.nan
    down_nodes: float = math.nan
    flap_suppressed: float = math.nan
    error: str = ""

    def to_record(self) -> dict:
        """A JSONL-ready record (``type`` discriminates the stream)."""
        return {"type": "progress", **asdict(self)}


_default_event_sink: Optional[Callable[[ProgressEvent], None]] = None


def set_default_event_sink(
    callback: Optional[Callable[[ProgressEvent], None]],
) -> Optional[Callable[[ProgressEvent], None]]:
    """Install a process-wide :class:`ProgressEvent` sink.

    The structured sibling of :func:`set_default_progress`: the CLI's
    ``--telemetry-out`` points this at a JSONL writer, and ``repro-dup
    top`` renders the same stream live.  Returns the previous sink.
    """
    global _default_event_sink
    previous = _default_event_sink
    _default_event_sink = callback
    return previous


def resolve_workers(workers: "int | str | None" = None) -> int:
    """Normalize a worker-count request to a concrete positive integer."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        workers = env
    if isinstance(workers, str):
        if workers.lower() == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            workers = int(workers)
        except ValueError:
            raise ExperimentError(
                f"workers must be an integer or 'auto', got {workers!r}"
            ) from None
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    return int(workers)


@dataclass(frozen=True)
class TrialSpec:
    """One unit of sweep work: a fully seeded simulation configuration.

    ``experiment``, ``point``, ``scheme``, and ``replication`` are labels
    for progress reporting and failure attribution; the configuration
    alone determines the trial's behaviour.
    """

    config: SimulationConfig
    experiment: str = ""
    point: object = None
    scheme: str = ""
    replication: int = 0

    def describe(self) -> str:
        """Human-readable trial identity (used in progress/errors)."""
        parts = [self.experiment or "trial"]
        if self.point is not None:
            parts.append(f"point={self.point}")
        parts.append(f"scheme={self.scheme or self.config.scheme}")
        parts.append(f"rep={self.replication}")
        parts.append(f"seed={self.config.seed}")
        return " ".join(parts)


def _execute(spec: TrialSpec) -> tuple[SimulationResult, Optional[FrozenMetrics]]:
    """Worker-side entry point: run one trial, return picklable payloads."""
    sim = Simulation(spec.config)
    result = sim.run()
    return result, sim.registry.freeze()


#: Worker-side executor signature: spec in, (result, frozen metrics) out.
#: Custom executors must be module-level callables (the pool pickles them
#: by reference) and may return ``None`` metrics when they collect none.
TrialExecutor = Callable[
    [TrialSpec], tuple[SimulationResult, Optional[FrozenMetrics]]
]


class ParallelRunner:
    """Fans trials out over a process pool, merging results in order.

    Parameters
    ----------
    workers:
        Worker-count request (see :func:`resolve_workers`).
    progress:
        Per-trial completion callback receiving one formatted line; when
        omitted, the process-wide default installed via
        :func:`set_default_progress` is used.
    experiment:
        Label stamped onto progress lines and failure messages for specs
        that do not carry their own.
    event_sink:
        Per-trial :class:`ProgressEvent` callback; when omitted, the
        process-wide default from :func:`set_default_event_sink` is used.
    keep_going:
        When true, a failing trial is recorded in :attr:`failures`
        instead of aborting the sweep; the surviving results are still
        returned in spec order.  The default (false) preserves the
        historical fail-fast contract: the first failure raises
        :class:`ExperimentError` (with the recorded failures attached as
        its ``trial_failures`` attribute).
    execute:
        Worker-side executor invoked per spec (see :data:`TrialExecutor`).
        Defaults to running ``Simulation(spec.config)``; the sharded
        multi-key scale engine substitutes its own module-level function
        so the same pool/ordering/failure machinery drives shard
        simulations.  Must be picklable (a module-level function) for
        the pool path.

    After :meth:`run_trials` returns, :attr:`metrics` holds the merged
    :class:`FrozenMetrics` of every trial (pool path only; the serial
    path adds no instrumentation overhead, exactly like the historical
    runner) and :attr:`failures` the :class:`TrialFailure` table.
    """

    def __init__(
        self,
        workers: "int | str | None" = None,
        progress: Optional[Callable[[str], None]] = None,
        experiment: str = "",
        event_sink: Optional[Callable[[ProgressEvent], None]] = None,
        keep_going: bool = False,
        execute: Optional[TrialExecutor] = None,
    ):
        self.workers = resolve_workers(workers)
        self._progress = progress
        self._event_sink = event_sink
        self._execute_fn = execute if execute is not None else _execute
        self.experiment = experiment
        self.keep_going = keep_going
        self.metrics: Optional[FrozenMetrics] = None
        self.failures: list[TrialFailure] = []
        self._started_at = 0.0
        self._busy_seconds = 0.0

    # -- execution -----------------------------------------------------------
    def run_trials(
        self, specs: Iterable[TrialSpec]
    ) -> list[SimulationResult]:
        """Execute every trial; results are returned in spec order."""
        specs = [self._coerce(spec) for spec in specs]
        self.failures = []
        self._busy_seconds = 0.0
        if not specs:
            return []
        self._started_at = time.perf_counter()
        if self.workers == 1:
            return self._run_serial(specs)
        return self._run_pool(specs)

    def _coerce(self, spec) -> TrialSpec:
        if isinstance(spec, TrialSpec):
            if not spec.experiment and self.experiment:
                spec = TrialSpec(
                    config=spec.config,
                    experiment=self.experiment,
                    point=spec.point,
                    scheme=spec.scheme,
                    replication=spec.replication,
                )
            return spec
        if isinstance(spec, SimulationConfig):
            return TrialSpec(config=spec, experiment=self.experiment)
        raise ExperimentError(
            f"expected TrialSpec or SimulationConfig, got {type(spec).__name__}"
        )

    def _run_serial(self, specs: Sequence[TrialSpec]) -> list[SimulationResult]:
        results = []
        done = 0
        for spec in specs:
            try:
                if self._execute_fn is _execute:
                    # Historical inline path: no freeze() overhead when
                    # nobody will merge metrics.
                    result = Simulation(spec.config).run()
                else:
                    result = self._execute_fn(spec)[0]
            except Exception as error:
                self._fail(spec, error, done, len(specs))
                continue
            results.append(result)
            done += 1
            self._report(done, len(specs), spec, result)
        return results

    def _run_pool(self, specs: Sequence[TrialSpec]) -> list[SimulationResult]:
        workers = min(self.workers, len(specs))
        slots: list[Optional[SimulationResult]] = [None] * len(specs)
        frozen: list[Optional[FrozenMetrics]] = [None] * len(specs)
        done = 0
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(self._execute_fn, spec): index
                for index, spec in enumerate(specs)
            }
            pending = set(futures)
            try:
                while pending:
                    finished, pending = wait(
                        pending, return_when=FIRST_EXCEPTION
                    )
                    for future in finished:
                        index = futures[future]
                        spec = specs[index]
                        error = future.exception()
                        if error is not None:
                            self._fail(spec, error, done, len(specs))
                            continue
                        result, metrics = future.result()
                        slots[index], frozen[index] = result, metrics
                        done += 1
                        self._report(done, len(specs), spec, result)
            except BaseException:
                for future in pending:
                    future.cancel()
                raise
        parts = [part for part in frozen if part is not None]
        # Custom executors may return no metrics at all (e.g. the scale
        # shard runner); leave the merged view unset in that case.
        self.metrics = FrozenMetrics.merge(parts) if parts else None
        return [result for result in slots if result is not None]

    # -- failures ------------------------------------------------------------
    def _fail(
        self, spec: TrialSpec, error: BaseException, done: int, total: int
    ) -> None:
        """Record (or raise on) one failed trial."""
        failure = TrialFailure(
            experiment=spec.experiment or self.experiment,
            trial=spec.describe(),
            error=repr(error),
        )
        self.failures.append(failure)
        self._emit_event(
            kind="trial-failed",
            spec=spec,
            done=done,
            total=total,
            wall_seconds=math.nan,
            error=failure.error,
        )
        if not self.keep_going:
            wrapped = ExperimentError(
                f"worker failed on {spec.describe()}: {error!r}"
            )
            wrapped.trial_failures = tuple(self.failures)
            raise wrapped from error

    # -- progress ------------------------------------------------------------
    def _report(
        self, done: int, total: int, spec: TrialSpec, result: SimulationResult
    ) -> None:
        self._busy_seconds += result.wall_seconds
        extras = result.extras
        self._emit_event(
            kind="trial-done",
            spec=spec,
            done=done,
            total=total,
            wall_seconds=result.wall_seconds,
            mean_latency=result.mean_latency,
            cost_per_query=result.cost_per_query,
            shed_fraction=float(extras.get("shed_fraction", math.nan)),
            max_queue_depth=float(
                extras.get("max_queue_depth", math.nan)
            ),
            down_nodes=float(extras.get("session_down_now", math.nan)),
            flap_suppressed=float(
                extras.get("flap_suppressed_now", math.nan)
            ),
        )
        progress = (
            self._progress if self._progress is not None else _default_progress
        )
        if progress is None:
            return
        progress(
            f"[{done}/{total}] {spec.describe()} "
            f"done in {result.wall_seconds:.1f}s"
        )

    def _emit_event(
        self,
        kind: str,
        spec: TrialSpec,
        done: int,
        total: int,
        wall_seconds: float,
        mean_latency: float = math.nan,
        cost_per_query: float = math.nan,
        shed_fraction: float = math.nan,
        max_queue_depth: float = math.nan,
        down_nodes: float = math.nan,
        flap_suppressed: float = math.nan,
        error: str = "",
    ) -> None:
        sink = (
            self._event_sink
            if self._event_sink is not None
            else _default_event_sink
        )
        if sink is None:
            return
        elapsed = max(time.perf_counter() - self._started_at, 1e-9)
        failed = len(self.failures)
        finished = done + failed
        if finished > 0:
            eta = (total - finished) * (elapsed / finished)
        else:
            eta = math.nan
        utilization = min(
            self._busy_seconds / (elapsed * self.workers), 1.0
        )
        sink(
            ProgressEvent(
                kind=kind,
                experiment=spec.experiment or self.experiment,
                trial=spec.describe(),
                done=done,
                failed=failed,
                total=total,
                workers=self.workers,
                wall_seconds=wall_seconds,
                elapsed_seconds=elapsed,
                eta_seconds=eta,
                utilization=utilization,
                mean_latency=mean_latency,
                cost_per_query=cost_per_query,
                shed_fraction=shed_fraction,
                max_queue_depth=max_queue_depth,
                down_nodes=down_nodes,
                flap_suppressed=flap_suppressed,
                error=error,
            )
        )


def run_trials(
    specs: Iterable[TrialSpec],
    workers: "int | str | None" = None,
    progress: Optional[Callable[[str], None]] = None,
    experiment: str = "",
    event_sink: Optional[Callable[[ProgressEvent], None]] = None,
    keep_going: bool = False,
    execute: Optional[TrialExecutor] = None,
) -> list[SimulationResult]:
    """Convenience wrapper: one-shot :class:`ParallelRunner` execution."""
    runner = ParallelRunner(
        workers=workers,
        progress=progress,
        experiment=experiment,
        event_sink=event_sink,
        keep_going=keep_going,
        execute=execute,
    )
    return runner.run_trials(specs)
