"""End-to-end query tracing and structured message logging.

Two observability tools live here, both built on the transport's public
observer tap (:meth:`repro.net.transport.Transport.add_observer`):

- :class:`MessageLog` — a bounded ring buffer of every delivered message
  (time, destination, category, key fields).  The tool for answering
  "what actually happened on the wire between t=7080 and t=7090?"
  without scattering print statements through the schemes.
- :class:`TraceCollector` — reconstructs each query's **full causal
  chain** as a :class:`QueryTrace`: the issue event, every request hop
  up the search tree, the serving node, every reply hop back down,
  the control continuations (subscribe / substitute / register), and
  the pushes they trigger.  Each hop is a timed :class:`HopSpan`
  attributed to the search-tree level it landed on; schemes annotate
  decision points (subscriptions, substitutions, push decisions)
  through ``Simulation.trace_annotate``.

The collector turns the paper's two opaque aggregates (mean latency,
mean cost) into attributable quantities: tail percentiles (p50/p95/p99)
over per-query latencies and hop counts broken down by tree level, so a
regression or a win can be located *where* in the tree it happened.

Enable via ``MessageLog.attach(sim)`` / ``Simulation.enable_tracing()``
before ``run()``.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Optional

from repro.net.message import (
    Category,
    ControlMessage,
    Message,
    PushMessage,
    QueryMessage,
    ReplyMessage,
)
from repro.net.transport import TransportEvent
from repro.stats.running import percentile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.simulation import Simulation

NodeId = int


@dataclass(frozen=True)
class LoggedMessage:
    """One delivered message, flattened for inspection."""

    time: float
    destination: NodeId
    category: str
    kind: str
    detail: str

    def __str__(self) -> str:
        return (
            f"t={self.time:.3f} -> {self.destination} "
            f"[{self.category}] {self.kind} {self.detail}"
        )


def _describe(message: Message) -> tuple[str, str]:
    if isinstance(message, QueryMessage):
        return "query", f"origin={message.origin} hops={message.hops}"
    if isinstance(message, ReplyMessage):
        return (
            "reply",
            f"to={message.destination} request_hops={message.request_hops}",
        )
    if isinstance(message, PushMessage):
        version = getattr(message.version, "version", message.version)
        return "push", f"from={message.sender} version={version}"
    if isinstance(message, ControlMessage):
        payloads = ",".join(type(p).__name__ for p in message.payloads)
        return "control", f"from={message.sender} payloads=[{payloads}]"
    return type(message).__name__.lower(), ""


class MessageLog:
    """A bounded log of delivered messages.

    Parameters
    ----------
    limit:
        Maximum retained entries (oldest evicted first).
    """

    def __init__(self, limit: int = 100_000):
        if limit < 1:
            raise ValueError(f"limit must be positive, got {limit}")
        self._entries: deque[LoggedMessage] = deque(maxlen=limit)
        self._total = 0
        self._observer = None

    # -- attachment ---------------------------------------------------------
    @classmethod
    def attach(cls, sim: "Simulation", limit: int = 100_000) -> "MessageLog":
        """Attach a new log to ``sim``'s transport (before ``run()``).

        Uses the transport's observer tap, so logs stack with the trace
        collector and with each other; call :meth:`detach` to stop
        recording.
        """
        log = cls(limit)

        def observe(event: TransportEvent) -> None:
            if event.kind == "deliver":
                log.record(event.time, event.destination, event.message)

        log._observer = sim.transport.add_observer(observe)
        log._transport = sim.transport
        return log

    def detach(self) -> None:
        """Stop recording (undo :meth:`attach`)."""
        if self._observer is not None:
            self._transport.remove_observer(self._observer)
            self._observer = None

    def record(
        self, time: float, destination: NodeId, message: Message
    ) -> None:
        """Append one delivery."""
        kind, detail = _describe(message)
        self._entries.append(
            LoggedMessage(
                time=time,
                destination=destination,
                category=message.category.value,
                kind=kind,
                detail=detail,
            )
        )
        self._total += 1

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LoggedMessage]:
        return iter(self._entries)

    @property
    def total_recorded(self) -> int:
        """All-time count (including evicted entries)."""
        return self._total

    def between(self, start: float, end: float) -> list[LoggedMessage]:
        """Entries with ``start <= time <= end``."""
        return [e for e in self._entries if start <= e.time <= end]

    def of_category(
        self, category: Category | str, since: float = 0.0
    ) -> list[LoggedMessage]:
        """Entries of one category, optionally after ``since``."""
        name = category.value if isinstance(category, Category) else category
        return [
            e for e in self._entries if e.category == name and e.time >= since
        ]

    def to_node(self, node: NodeId) -> list[LoggedMessage]:
        """Entries delivered to ``node``."""
        return [e for e in self._entries if e.destination == node]

    def summary(self) -> dict[str, int]:
        """Delivery counts by category (over retained entries)."""
        return dict(Counter(e.category for e in self._entries))

    def tail(self, count: int = 20) -> str:
        """The last ``count`` entries, rendered."""
        recent = list(self._entries)[-count:]
        return "\n".join(str(entry) for entry in recent)


# ---------------------------------------------------------------------------
# Query traces
# ---------------------------------------------------------------------------


@dataclass
class HopSpan:
    """One message hop inside a query's causal chain.

    ``level`` is the search-tree depth of the destination at delivery
    time (0 = the authority), giving per-tree-level hop attribution;
    ``None`` when the destination had already left the overlay.
    """

    category: str
    sender: Optional[NodeId]
    destination: Optional[NodeId]
    sent_at: float
    delivered_at: Optional[float] = None
    status: str = "in-flight"  # "in-flight" | "delivered" | "dropped"
    level: Optional[int] = None

    def to_dict(self) -> dict:
        """JSON-serializable view (the JSONL hop schema)."""
        return {
            "category": self.category,
            "from": self.sender,
            "to": self.destination,
            "sent_at": self.sent_at,
            "delivered_at": self.delivered_at,
            "status": self.status,
            "level": self.level,
        }


@dataclass(frozen=True)
class TraceAnnotation:
    """A scheme-emitted event on a trace (subscribe, substitute, ...)."""

    time: float
    node: NodeId
    event: str
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-serializable view (the JSONL annotation schema)."""
        return {
            "time": self.time,
            "node": self.node,
            "event": self.event,
            "detail": self.detail,
        }


@dataclass
class QueryTrace:
    """The reconstructed causal chain of one query."""

    trace_id: int
    origin: NodeId
    issued_at: float
    status: str = "open"  # "open" | "complete" | "incomplete"
    completed_at: Optional[float] = None
    latency_hops: Optional[float] = None
    spans: list[HopSpan] = field(default_factory=list)
    annotations: list[TraceAnnotation] = field(default_factory=list)

    @property
    def request_hops(self) -> int:
        """Delivered request (query-category) hops — the trace's latency."""
        return sum(
            1
            for span in self.spans
            if span.category == Category.QUERY.value
            and span.status == "delivered"
        )

    @property
    def hit(self) -> bool:
        """Whether the query was answered from the local cache."""
        return self.status == "complete" and self.latency_hops == 0

    def spans_of(self, category: Category | str) -> list[HopSpan]:
        """The trace's spans of one message category."""
        name = category.value if isinstance(category, Category) else category
        return [span for span in self.spans if span.category == name]

    def to_dict(self) -> dict:
        """JSON-serializable view (one JSONL trace record)."""
        return {
            "type": "trace",
            "trace_id": self.trace_id,
            "origin": self.origin,
            "issued_at": self.issued_at,
            "status": self.status,
            "completed_at": self.completed_at,
            "latency_hops": self.latency_hops,
            "request_hops": self.request_hops,
            "spans": [span.to_dict() for span in self.spans],
            "annotations": [note.to_dict() for note in self.annotations],
        }

    def __str__(self) -> str:
        latency = (
            "?" if self.latency_hops is None else f"{self.latency_hops:g}"
        )
        return (
            f"trace#{self.trace_id} origin={self.origin} "
            f"t={self.issued_at:.1f} {self.status} latency={latency} "
            f"spans={len(self.spans)}"
        )


class TraceCollector:
    """Assembles transport events and scheme annotations into traces.

    One instance observes a simulation's transport (wired up by
    ``Simulation.enable_tracing``).  The engine calls :meth:`begin` when
    a query is issued and :meth:`complete` when its latency is recorded;
    everything in between — hop spans, drops, annotations — is collected
    from the span context (``trace_id``) each message carries.

    Aggregates (latency percentiles, per-level hop attribution, status
    counts) are maintained incrementally and survive ring-buffer
    eviction of old trace records.

    Parameters
    ----------
    clock:
        Returns current simulation time.
    warmup:
        Queries issued before this time are not traced (matching the
        latency recorder's issue-time warm-up gate).
    depth_of:
        Optional callable mapping a node to its current search-tree
        depth (for per-level hop attribution).
    keep:
        Maximum finished traces retained (oldest evicted first).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        warmup: float = 0.0,
        depth_of: Optional[Callable[[NodeId], Optional[int]]] = None,
        keep: int = 100_000,
    ):
        if keep < 1:
            raise ValueError(f"keep must be positive, got {keep}")
        self._clock = clock
        self._warmup = float(warmup)
        self._depth_of = depth_of
        self._keep = keep
        self._next_id = 1
        self._traces: dict[int, QueryTrace] = {}
        self._finished: deque[int] = deque()
        self._open: set[int] = set()
        self._pending: dict[int, HopSpan] = {}  # id(message) -> span
        # Aggregates that survive eviction.
        self._latencies: list[float] = []
        self._level_hops: Counter = Counter()
        self._category_hops: Counter = Counter()
        self._completed = 0
        self._incomplete = 0
        self._untraced = 0

    # -- trace lifecycle ----------------------------------------------------
    def begin(self, origin: NodeId) -> Optional[int]:
        """Open a trace for a query issued now at ``origin``.

        Returns the trace id, or ``None`` during warm-up (the query is
        not traced, mirroring the metric recorders).
        """
        now = self._clock()
        if now < self._warmup:
            self._untraced += 1
            return None
        trace_id = self._next_id
        self._next_id += 1
        self._traces[trace_id] = QueryTrace(
            trace_id=trace_id, origin=origin, issued_at=now
        )
        self._open.add(trace_id)
        return trace_id

    def annotate(
        self,
        trace_id: Optional[int],
        node: NodeId,
        event: str,
        detail: str = "",
    ) -> None:
        """Record a scheme decision point on a trace (no-op if untraced)."""
        trace = self._traces.get(trace_id) if trace_id is not None else None
        if trace is None:
            return
        trace.annotations.append(
            TraceAnnotation(
                time=self._clock(), node=node, event=event, detail=detail
            )
        )

    def complete(self, trace_id: Optional[int], latency_hops: float) -> None:
        """Mark a trace complete with the latency the engine recorded."""
        trace = self._traces.get(trace_id) if trace_id is not None else None
        if trace is None or trace.status != "open":
            return
        trace.status = "complete"
        trace.completed_at = self._clock()
        trace.latency_hops = latency_hops
        self._latencies.append(float(latency_hops))
        self._completed += 1
        self._finish(trace_id)

    def _abandon(self, trace: QueryTrace) -> None:
        """The chain broke (churn): the query will never complete."""
        if trace.status != "open":
            return
        trace.status = "incomplete"
        trace.completed_at = self._clock()
        self._incomplete += 1
        self._finish(trace.trace_id)

    def _finish(self, trace_id: int) -> None:
        self._open.discard(trace_id)
        self._finished.append(trace_id)
        while len(self._finished) > self._keep:
            evicted = self._finished.popleft()
            self._traces.pop(evicted, None)

    # -- transport observation ----------------------------------------------
    def observe(self, event: TransportEvent) -> None:
        """Transport observer: fold one send/deliver/drop into its trace."""
        message = event.message
        trace = (
            self._traces.get(message.trace_id)
            if message.trace_id is not None
            else None
        )
        if event.kind == "send":
            if trace is None:
                return
            span = HopSpan(
                category=message.category.value,
                sender=event.sender,
                destination=event.destination,
                sent_at=event.time,
            )
            trace.spans.append(span)
            self._pending[id(message)] = span
            return
        span = self._pending.pop(id(message), None)
        if event.kind == "deliver":
            if span is None:
                return
            span.delivered_at = event.time
            span.status = "delivered"
            if self._depth_of is not None and span.destination is not None:
                span.level = self._depth_of(span.destination)
            self._category_hops[span.category] += 1
            if span.category == Category.QUERY.value and span.level is not None:
                self._level_hops[span.level] += 1
            return
        if event.kind == "drop":
            if span is not None:
                span.status = "dropped"
            # Losing a request or its reply ends the query; losing a push
            # or control continuation does not.
            if trace is not None and message.category in (
                Category.QUERY,
                Category.REPLY,
            ):
                self._abandon(trace)

    # -- inspection ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._traces)

    def get(self, trace_id: int) -> Optional[QueryTrace]:
        """The trace with ``trace_id``, if still retained."""
        return self._traces.get(trace_id)

    def traces(self, status: Optional[str] = None) -> list[QueryTrace]:
        """Retained traces in id order, optionally filtered by status."""
        ordered = [self._traces[k] for k in sorted(self._traces)]
        if status is None:
            return ordered
        return [trace for trace in ordered if trace.status == status]

    def slowest(self, count: int = 10) -> list[QueryTrace]:
        """The ``count`` retained completed traces with highest latency."""
        done = self.traces("complete")
        done.sort(key=lambda t: (-(t.latency_hops or 0), t.trace_id))
        return done[:count]

    @property
    def completed(self) -> int:
        """All-time completed traces (including evicted records)."""
        return self._completed

    @property
    def incomplete(self) -> int:
        """All-time traces that lost their request or reply to churn."""
        return self._incomplete

    @property
    def open_count(self) -> int:
        """Traces still in flight."""
        return len(self._open)

    @property
    def untraced(self) -> int:
        """Queries skipped by the warm-up gate."""
        return self._untraced

    @property
    def latencies(self) -> tuple[float, ...]:
        """Latencies of all completed traces (eviction-proof)."""
        return tuple(self._latencies)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of completed-trace latencies."""
        return percentile(self._latencies, q)

    def percentiles(self, qs=(50, 95, 99)) -> dict[str, float]:
        """Tail percentiles keyed ``"p50"``-style."""
        return {f"p{q:g}": percentile(self._latencies, q) for q in qs}

    def hops_by_level(self) -> dict[int, int]:
        """Delivered request hops attributed to destination tree depth."""
        return dict(sorted(self._level_hops.items()))

    def hops_by_category(self) -> dict[str, int]:
        """Delivered traced hops by message category."""
        return dict(self._category_hops)

    def summary(self) -> dict[str, object]:
        """One-glance counts and tails (used by the CLI)."""
        return {
            "completed": self._completed,
            "incomplete": self._incomplete,
            "open": self.open_count,
            **self.percentiles(),
            "hops_by_level": self.hops_by_level(),
        }

    def __repr__(self) -> str:
        return (
            f"TraceCollector(completed={self._completed}, "
            f"incomplete={self._incomplete}, open={self.open_count})"
        )


def merge_summaries(summaries) -> dict[str, object]:
    """Combine per-run :meth:`TraceCollector.summary` dicts.

    Counts (``completed``/``incomplete``/``open`` and the nested
    ``hops_by_level`` attribution) are summed; percentile fields, which
    cannot be combined from summaries alone, are dropped — re-derive them
    from the merged raw latencies when tails across runs are needed.
    Used when a parallel sweep's per-worker trace summaries are folded
    into one report.
    """
    merged: dict[str, object] = {
        "completed": 0,
        "incomplete": 0,
        "open": 0,
        "hops_by_level": {},
    }
    levels: dict[int, int] = merged["hops_by_level"]
    for summary in summaries:
        for key in ("completed", "incomplete", "open"):
            merged[key] += int(summary.get(key, 0))
        for level, hops in dict(summary.get("hops_by_level", {})).items():
            level = int(level)
            levels[level] = levels.get(level, 0) + int(hops)
    merged["hops_by_level"] = dict(sorted(levels.items()))
    return merged
