"""Structured message logging for debugging and analysis.

A :class:`MessageLog` attaches to a simulation's transport and records
every delivered message as a compact :class:`LoggedMessage` — time,
destination, category, type, and key fields — into a bounded ring buffer.
It is the tool for answering "what actually happened on the wire between
t=7080 and t=7090?" without scattering print statements through the
schemes.

Enable via ``MessageLog.attach(sim)`` before ``run()``; query with
:meth:`between`, :meth:`of_category`, and :meth:`summary`.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.net.message import (
    Category,
    ControlMessage,
    Message,
    PushMessage,
    QueryMessage,
    ReplyMessage,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.simulation import Simulation

NodeId = int


@dataclass(frozen=True)
class LoggedMessage:
    """One delivered message, flattened for inspection."""

    time: float
    destination: NodeId
    category: str
    kind: str
    detail: str

    def __str__(self) -> str:
        return (
            f"t={self.time:.3f} -> {self.destination} "
            f"[{self.category}] {self.kind} {self.detail}"
        )


def _describe(message: Message) -> tuple[str, str]:
    if isinstance(message, QueryMessage):
        return "query", f"origin={message.origin} hops={message.hops}"
    if isinstance(message, ReplyMessage):
        return (
            "reply",
            f"to={message.destination} request_hops={message.request_hops}",
        )
    if isinstance(message, PushMessage):
        version = getattr(message.version, "version", message.version)
        return "push", f"from={message.sender} version={version}"
    if isinstance(message, ControlMessage):
        payloads = ",".join(type(p).__name__ for p in message.payloads)
        return "control", f"from={message.sender} payloads=[{payloads}]"
    return type(message).__name__.lower(), ""


class MessageLog:
    """A bounded log of delivered messages.

    Parameters
    ----------
    limit:
        Maximum retained entries (oldest evicted first).
    """

    def __init__(self, limit: int = 100_000):
        if limit < 1:
            raise ValueError(f"limit must be positive, got {limit}")
        self._entries: deque[LoggedMessage] = deque(maxlen=limit)
        self._total = 0

    # -- attachment ---------------------------------------------------------
    @classmethod
    def attach(cls, sim: "Simulation", limit: int = 100_000) -> "MessageLog":
        """Attach a new log to ``sim``'s transport (before ``run()``)."""
        log = cls(limit)
        inner = sim.transport._handler

        def observing_handler(destination: NodeId, message: Message) -> None:
            log.record(sim.env.now, destination, message)
            inner(destination, message)

        sim.transport.bind(observing_handler)
        return log

    def record(
        self, time: float, destination: NodeId, message: Message
    ) -> None:
        """Append one delivery."""
        kind, detail = _describe(message)
        self._entries.append(
            LoggedMessage(
                time=time,
                destination=destination,
                category=message.category.value,
                kind=kind,
                detail=detail,
            )
        )
        self._total += 1

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LoggedMessage]:
        return iter(self._entries)

    @property
    def total_recorded(self) -> int:
        """All-time count (including evicted entries)."""
        return self._total

    def between(self, start: float, end: float) -> list[LoggedMessage]:
        """Entries with ``start <= time <= end``."""
        return [e for e in self._entries if start <= e.time <= end]

    def of_category(
        self, category: Category | str, since: float = 0.0
    ) -> list[LoggedMessage]:
        """Entries of one category, optionally after ``since``."""
        name = category.value if isinstance(category, Category) else category
        return [
            e for e in self._entries if e.category == name and e.time >= since
        ]

    def to_node(self, node: NodeId) -> list[LoggedMessage]:
        """Entries delivered to ``node``."""
        return [e for e in self._entries if e.destination == node]

    def summary(self) -> dict[str, int]:
        """Delivery counts by category (over retained entries)."""
        return dict(Counter(e.category for e in self._entries))

    def tail(self, count: int = 20) -> str:
        """The last ``count`` entries, rendered."""
        recent = list(self._entries)[-count:]
        return "\n".join(str(entry) for entry in recent)
