"""Peer fluctuation: crash-restart sessions, regional bursts, damping.

The paper's churn model (Section III-C) and our churn engine are
memoryless: nodes join or die, but none ever *come back*.  Measured
peer-to-peer populations do the opposite — the same peers cycle between
alive and down, session lengths are heavy-tailed, downtimes cluster
around a median repair time, arrival intensity follows the day, and
whole regions fail together.  This module supplies that lifecycle as a
declarative :class:`SessionPlan` (the ``sessions`` field of
:class:`~repro.engine.config.SimulationConfig`) executed by a
:class:`SessionEngine`:

- **Alive/down/rejoining state machine** — every non-root node of the
  initial overlay lives through alternating *sessions* (Pareto lengths,
  mean ``mean_session``, tail index ``session_alpha``) and *downtimes*
  (log-normal, arithmetic mean ``mean_downtime``, shape
  ``downtime_sigma``).  A session ends in a silent crash
  (:meth:`~repro.engine.simulation.Simulation.crash_node`); the downtime
  ends in a rejoin that restores the node's pre-crash state and runs the
  scheme's reconciliation handshake
  (:meth:`~repro.schemes.base.Scheme.on_node_rejoined`).
- **Diurnal modulation** — the instantaneous query arrival rate is
  scaled by ``1 + amplitude * sin(2*pi*t / period)``; gaps drawn by the
  base arrival process are divided by that curve, so the workload keeps
  its distribution family (and stream draws) while its intensity
  follows the day.
- **Regional bursts** — a Poisson process (``regional_rate``) picks a
  seed node and crashes its whole topology neighborhood (the BFS ball
  of ``regional_radius`` hops on the search tree, root excluded) in one
  event — the correlated failure mode ROADMAP item 4 left open.
- **Flap damping** — BGP-style: every crash adds ``damp_penalty`` to a
  per-peer penalty that decays exponentially with half-life
  ``damp_half_life``.  A peer whose penalty reaches ``damp_suppress``
  is *suppressed*: its rejoin is handled with full amnesia (no state
  restore, no re-graft/resubscribe traffic) and the DUP scheme refuses
  new subscriptions from it until the penalty decays below
  ``damp_reuse``.  Suppression transitions feed the overload layer's
  per-peer circuit breakers when those are armed.

All randomness comes from two dedicated named streams (``sessions`` and
``sessions-regional``), so a run whose plan is ``None`` (or all-default)
is bit-identical to a build without this module, and serial and parallel
execution agree by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import ConfigError
from repro.stats.distributions import LogNormal, Pareto

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.simulation import Simulation

NodeId = int

_TWO_PI = 2.0 * math.pi


@dataclass(frozen=True)
class SessionPlan:
    """Declarative description of one run's peer-fluctuation behavior.

    Every knob defaults to *off*; a default-constructed plan is inert
    and the engine treats it exactly like ``sessions=None``.

    Attributes
    ----------
    mean_session:
        Mean alive-session length in simulated seconds (Pareto).  0
        disables the crash-restart lifecycle.
    session_alpha:
        Pareto tail index of session lengths; must exceed 1 so the mean
        exists (smaller = heavier tail).
    mean_downtime:
        Arithmetic mean downtime (MTTR) in seconds (log-normal).
        Required whenever anything crashes (lifecycle or regional).
    downtime_sigma:
        Log-space shape of the downtime distribution.
    diurnal_amplitude:
        Relative amplitude of the arrival-rate modulation in ``[0, 1)``;
        0 disables the curve.
    diurnal_period:
        Period of the modulation (default: one day).
    regional_rate:
        Correlated regional failure bursts per second; 0 disables them.
    regional_radius:
        BFS radius (tree hops) of the neighborhood a burst crashes.
    max_down_fraction:
        Ceiling on the fraction of the overlay that may be down at
        once; crashes that would exceed it are deferred.
    damp_penalty:
        Penalty added to a peer's damping counter per crash.
    damp_half_life:
        Exponential half-life of the penalty decay, in seconds.
    damp_suppress:
        Penalty at which a peer becomes suppressed; 0 disables damping.
    damp_reuse:
        Penalty below which a suppressed peer is released.
    """

    mean_session: float = 0.0
    session_alpha: float = 1.5
    mean_downtime: float = 0.0
    downtime_sigma: float = 0.75
    diurnal_amplitude: float = 0.0
    diurnal_period: float = 86_400.0
    regional_rate: float = 0.0
    regional_radius: int = 2
    max_down_fraction: float = 0.5
    damp_penalty: float = 1.0
    damp_half_life: float = 300.0
    damp_suppress: float = 0.0
    damp_reuse: float = 1.0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` on any invalid parameter."""
        for name in ("mean_session", "mean_downtime", "regional_rate"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        if self.mean_session > 0 and self.session_alpha <= 1:
            raise ConfigError(
                "session_alpha must exceed 1 (finite mean session), got "
                f"{self.session_alpha}"
            )
        if self.crashes_enabled and self.mean_downtime <= 0:
            raise ConfigError(
                "crashing peers need a positive mean_downtime to rejoin"
            )
        if self.mean_downtime > 0 and self.downtime_sigma <= 0:
            raise ConfigError(
                f"downtime_sigma must be positive, got {self.downtime_sigma}"
            )
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigError(
                "diurnal_amplitude must lie in [0, 1), got "
                f"{self.diurnal_amplitude}"
            )
        if self.diurnal_amplitude > 0 and self.diurnal_period <= 0:
            raise ConfigError(
                f"diurnal_period must be positive, got {self.diurnal_period}"
            )
        if self.regional_radius < 1:
            raise ConfigError(
                f"regional_radius must be >= 1, got {self.regional_radius}"
            )
        if not 0.0 < self.max_down_fraction <= 1.0:
            raise ConfigError(
                "max_down_fraction must lie in (0, 1], got "
                f"{self.max_down_fraction}"
            )
        if self.damp_suppress > 0:
            if self.damp_penalty <= 0:
                raise ConfigError(
                    "damping needs a positive damp_penalty, got "
                    f"{self.damp_penalty}"
                )
            if self.damp_half_life <= 0:
                raise ConfigError(
                    "damping needs a positive damp_half_life, got "
                    f"{self.damp_half_life}"
                )
            if not 0 < self.damp_reuse < self.damp_suppress:
                raise ConfigError(
                    "need 0 < damp_reuse < damp_suppress, got "
                    f"reuse={self.damp_reuse} suppress={self.damp_suppress}"
                )

    @property
    def lifecycle_enabled(self) -> bool:
        """Whether per-node crash-restart sessions run."""
        return self.mean_session > 0

    @property
    def regional_enabled(self) -> bool:
        """Whether correlated regional bursts fire."""
        return self.regional_rate > 0

    @property
    def crashes_enabled(self) -> bool:
        """Whether anything in this plan crashes nodes."""
        return self.lifecycle_enabled or self.regional_enabled

    @property
    def diurnal_enabled(self) -> bool:
        """Whether the arrival-rate curve is active."""
        return self.diurnal_amplitude > 0

    @property
    def damping_enabled(self) -> bool:
        """Whether flap damping gates rejoins and resubscriptions."""
        return self.damp_suppress > 0

    @property
    def enabled(self) -> bool:
        """Whether this plan changes anything at all."""
        return self.crashes_enabled or self.diurnal_enabled


class FlapDamper:
    """BGP-style per-peer flap penalty with exponential decay.

    ``penalize`` adds the configured increment at each flap (crash);
    the stored value decays continuously with the configured half-life.
    A peer crossing the suppress threshold stays suppressed until its
    penalty decays below the (lower) reuse threshold — classic damping
    hysteresis.  Release is detected lazily, on the next ``suppressed``
    probe, and reported through the ``on_release`` callback.
    """

    def __init__(
        self,
        penalty: float,
        half_life: float,
        suppress: float,
        reuse: float,
        on_release: Optional[Callable[[NodeId], None]] = None,
    ):
        self._increment = float(penalty)
        self._decay = math.log(2.0) / float(half_life)
        self._suppress = float(suppress)
        self._reuse = float(reuse)
        self._on_release = on_release
        self._penalty: dict[NodeId, tuple[float, float]] = {}
        self._suppressed: set[NodeId] = set()
        self.suppressions = 0
        self.releases = 0

    def penalty(self, node: NodeId, now: float) -> float:
        """The decayed penalty of ``node`` at ``now``."""
        value, stamp = self._penalty.get(node, (0.0, now))
        return value * math.exp(-self._decay * (now - stamp))

    def penalize(self, node: NodeId, now: float) -> bool:
        """Charge one flap; returns True on an off→on suppress edge."""
        value = self.penalty(node, now) + self._increment
        self._penalty[node] = (value, now)
        if node not in self._suppressed and value >= self._suppress:
            self._suppressed.add(node)
            self.suppressions += 1
            return True
        return False

    def suppressed(self, node: NodeId, now: float) -> bool:
        """Whether ``node`` is damped at ``now`` (releasing lazily)."""
        if node not in self._suppressed:
            return False
        if self.penalty(node, now) > self._reuse:
            return True
        # Keep the residual (<= reuse) penalty: a peer released a moment
        # ago is closer to re-suppression than a first-time flapper.
        self._suppressed.discard(node)
        self.releases += 1
        if self._on_release is not None:
            self._on_release(node)
        return False

    @property
    def suppressed_now(self) -> int:
        """Peers currently suppressed (releases pending their next probe
        are still counted — the gauge is an upper bound)."""
        return len(self._suppressed)


class SessionEngine:
    """Runs a :class:`SessionPlan` against one simulation.

    The lifecycle is event-driven (``env.call_later`` callbacks, no
    per-node process): all session and downtime draws come from the
    single ``sessions`` stream in event order, regional bursts from
    ``sessions-regional``.
    """

    def __init__(self, sim: "Simulation", plan: SessionPlan) -> None:
        self._sim = sim
        self.plan = plan
        self._rng = None
        self._session = (
            Pareto.from_rate(plan.session_alpha, 1.0 / plan.mean_session)
            if plan.lifecycle_enabled
            else None
        )
        self._downtime = (
            LogNormal.from_mean(plan.mean_downtime, plan.downtime_sigma)
            if plan.mean_downtime > 0
            else None
        )
        self.damper: Optional[FlapDamper] = None
        if plan.damping_enabled:
            self.damper = FlapDamper(
                plan.damp_penalty,
                plan.damp_half_life,
                plan.damp_suppress,
                plan.damp_reuse,
                on_release=self._on_release,
            )
        #: Amnesia snapshots of currently-down nodes, keyed by node.
        self._down: dict[NodeId, dict] = {}
        #: Nodes whose crash-restart lifecycle is running.
        self._lifecycle: set[NodeId] = set()
        #: Per-node token invalidating superseded pending crash timers.
        self._epoch: dict[NodeId, int] = {}
        self.crashes = 0
        self.rejoins = 0
        self.rejoins_damped = 0
        self.deferred = 0
        self.regional_bursts = 0
        self.regional_victims = 0

    # -- installation ----------------------------------------------------
    def install(self) -> None:
        """Arm the lifecycle timers and burst process (from ``start()``)."""
        sim = self._sim
        if self.plan.crashes_enabled:
            self._rng = sim.streams.get("sessions")
        if self.plan.lifecycle_enabled:
            protected = self._protected()
            for node in sorted(sim.tree.nodes):
                if node in protected:
                    continue
                self._lifecycle.add(node)
                self._schedule_crash(node, self._session.sample(self._rng))
        if self.plan.regional_enabled:
            sim.env.process(
                self._regional_loop(sim.streams.get("sessions-regional")),
                name="sessions-regional",
            )

    def _protected(self) -> set[NodeId]:
        """Nodes the fluctuation layer never crashes.

        The root (authority failure is its own scenario) and the
        standby pool: a silently dead standby would be promoted into a
        blackhole by the failover machinery.
        """
        sim = self._sim
        protected = {sim.tree.root}
        if sim.standby_pool is not None:
            protected.update(sim.standby_pool.standbys)
        return protected

    # -- diurnal curve ---------------------------------------------------
    def modulation(self, now: float) -> float:
        """The arrival-rate multiplier at simulated time ``now``."""
        plan = self.plan
        return 1.0 + plan.diurnal_amplitude * math.sin(
            _TWO_PI * now / plan.diurnal_period
        )

    # -- damping gate ----------------------------------------------------
    def suppressed(self, node: NodeId) -> bool:
        """Whether flap damping currently suppresses ``node``."""
        return self.damper is not None and self.damper.suppressed(
            node, self._sim.env._now
        )

    def _on_release(self, node: NodeId) -> None:
        sim = self._sim
        self._record("flap-release", node=node)
        parent = sim.parent(node)
        overload = sim.overload
        if (
            parent is not None
            and overload is not None
            and overload.plan.breakers_enabled
        ):
            overload.record_success(parent, node)

    # -- lifecycle -------------------------------------------------------
    def _schedule_crash(self, node: NodeId, delay: float) -> None:
        epoch = self._epoch.get(node, 0) + 1
        self._epoch[node] = epoch
        self._sim.env.call_later(delay, self._session_end, node, epoch)

    def _session_end(self, node: NodeId, epoch: int) -> None:
        if self._epoch.get(node) != epoch:
            return  # superseded by a regional crash of the same node
        sim = self._sim
        if node in self._down:
            return  # its rejoin will restart the session clock
        if not sim.functioning(node) or node in self._protected():
            # Churned out, crashed by another layer, or promoted to
            # authority: this node's fluctuation lifecycle is over.
            self._lifecycle.discard(node)
            return
        if not self._down_budget(1):
            self.deferred += 1
            self._schedule_crash(node, self._session.sample(self._rng))
            return
        self._crash(node, origin="session")

    def _down_budget(self, extra: int) -> bool:
        limit = self.plan.max_down_fraction * len(self._sim.tree)
        return len(self._down) + extra <= limit

    def _crash(self, node: NodeId, origin: str) -> None:
        sim = self._sim
        # Invalidate any pending session timer for this node; the rejoin
        # restarts the clock.
        self._epoch[node] = self._epoch.get(node, 0) + 1
        self._down[node] = sim.crash_node(node)
        self.crashes += 1
        self._record("session-crash", node=node, detail=origin)
        now = sim.env._now
        if self.damper is not None and self.damper.penalize(node, now):
            self._record("flap-suppress", node=node)
            parent = sim.parent(node)
            overload = sim.overload
            if (
                parent is not None
                and overload is not None
                and overload.plan.breakers_enabled
            ):
                overload.record_failure(parent, node, reason="flap-damp")
        sim.env.call_later(
            self._downtime.sample(self._rng), self._rejoin, node
        )

    def _rejoin(self, node: NodeId) -> None:
        sim = self._sim
        snapshot = self._down.pop(node, None)
        if snapshot is None:  # pragma: no cover - defensive
            return
        suppressed = self.suppressed(node)
        sim.rejoin_node(node, snapshot, suppressed=suppressed)
        self.rejoins += 1
        if suppressed:
            self.rejoins_damped += 1
        self._record(
            "session-rejoin",
            node=node,
            detail="damped" if suppressed else "reconciled",
        )
        if node in self._lifecycle:
            self._schedule_crash(node, self._session.sample(self._rng))

    # -- regional bursts -------------------------------------------------
    def _regional_loop(self, rng):
        env = self._sim.env
        rate = self.plan.regional_rate
        while True:
            yield env.timeout(float(rng.exponential(1.0 / rate)))
            self._regional_burst(rng)

    def _regional_burst(self, rng) -> None:
        sim = self._sim
        candidates = sorted(
            node for node in sim.tree.nodes if self._crashable(node)
        )
        if not candidates:
            self.deferred += 1
            return
        seed = candidates[int(rng.integers(len(candidates)))]
        ball = self._ball(seed)
        # Respect the down-fraction ceiling by trimming the ball in BFS
        # order (the seed always crashes).
        victims = []
        for victim in ball:
            if self._down_budget(len(victims) + 1):
                victims.append(victim)
            else:
                self.deferred += 1
        self.regional_bursts += 1
        self.regional_victims += len(victims)
        self._record(
            "session-regional",
            node=seed,
            detail=f"radius={self.plan.regional_radius} victims={len(victims)}",
        )
        for victim in victims:
            self._crash(victim, origin="regional")

    def _crashable(self, node: NodeId) -> bool:
        return (
            self._sim.functioning(node)
            and node not in self._down
            and node not in self._protected()
        )

    def _ball(self, seed: NodeId) -> list[NodeId]:
        """Crashable members of the BFS ball around ``seed``, BFS order."""
        tree = self._sim.tree
        seen = {seed}
        order = [seed]
        frontier = [seed]
        for _ in range(self.plan.regional_radius):
            next_frontier: list[NodeId] = []
            for node in frontier:
                neighbors = list(tree.children(node))
                parent = tree.parent(node)
                if parent is not None:
                    neighbors.append(parent)
                for neighbor in neighbors:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
            order.extend(next_frontier)
        return [node for node in order if self._crashable(node)]

    # -- observation -----------------------------------------------------
    def _record(self, kind: str, node=None, subject=None, detail="") -> None:
        recorder = self._sim.recorder
        if recorder is not None:
            recorder.record(kind, node, subject, detail)

    @property
    def down_now(self) -> int:
        """Nodes currently down (crash-restart in progress)."""
        return len(self._down)

    @property
    def flap_suppressed_now(self) -> int:
        """Peers currently suppressed by flap damping."""
        return 0 if self.damper is None else self.damper.suppressed_now

    def counters(self) -> dict:
        """Fluctuation accounting for result extras and gauges.

        The key set is identical whether or not damping is armed, so
        differential comparisons across variants line up verbatim.
        """
        return {
            "session_crashes": self.crashes,
            "session_rejoins": self.rejoins,
            "session_rejoins_damped": self.rejoins_damped,
            "session_deferred": self.deferred,
            "session_down_now": self.down_now,
            "session_regional_bursts": self.regional_bursts,
            "session_regional_victims": self.regional_victims,
            "flap_suppressions": (
                0 if self.damper is None else self.damper.suppressions
            ),
            "flap_releases": (
                0 if self.damper is None else self.damper.releases
            ),
            "flap_suppressed_now": self.flap_suppressed_now,
        }
