"""Query traces: record, save, load, and replay workloads.

The paper's TTL choice comes from a measurement study of deployed
peer-to-peer systems [Saroiu et al.] and its Pareto arrivals from a
Gnutella trace [Markatos].  Real traces are not redistributable, so this
module provides the equivalent machinery: synthesize a trace from the
paper's workload model once, persist it, and replay it bit-identically
across schemes and code versions — or load an externally prepared trace
in the same simple text format.

Format: one event per line, ``<time_seconds> <node_id>``, ``#`` comments
allowed, times non-decreasing.
"""

from __future__ import annotations

import io
import pathlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.workload.arrivals import make_arrival_process
from repro.workload.selection import ZipfNodeSelector

NodeId = int


@dataclass(frozen=True)
class TraceEvent:
    """One query issue: which node asks, and when."""

    time: float
    node: NodeId


class QueryTrace:
    """An immutable, time-ordered sequence of query events."""

    def __init__(self, events: Iterable[TraceEvent]):
        self._events = tuple(events)
        last = -float("inf")
        for event in self._events:
            if event.time < 0:
                raise WorkloadError(f"negative event time {event.time}")
            if event.time < last:
                raise WorkloadError(
                    f"trace not time-ordered at t={event.time}"
                )
            last = event.time

    # -- construction ------------------------------------------------------
    @classmethod
    def synthesize(
        cls,
        nodes: Sequence[NodeId],
        rate: float,
        duration: float,
        seed: int = 0,
        arrival: str = "exponential",
        pareto_alpha: float = 1.05,
        zipf_theta: float = 0.95,
    ) -> "QueryTrace":
        """Generate a trace from the paper's workload model."""
        if duration <= 0:
            raise WorkloadError(f"duration must be positive, got {duration}")
        rng = np.random.default_rng(seed)
        arrivals = make_arrival_process(arrival, rate, rng, pareto_alpha)
        selector = ZipfNodeSelector(
            nodes, zipf_theta, np.random.default_rng(seed + 1)
        )
        placement_rng = np.random.default_rng(seed + 2)
        events = []
        clock = 0.0
        while True:
            clock += arrivals.next_gap()
            if clock >= duration:
                break
            events.append(TraceEvent(clock, selector.sample(placement_rng)))
        return cls(events)

    @classmethod
    def parse(cls, text: str) -> "QueryTrace":
        """Parse the text format (one ``time node`` pair per line)."""
        events = []
        for line_number, line in enumerate(io.StringIO(text), start=1):
            stripped = line.split("#", 1)[0].strip()
            if not stripped:
                continue
            parts = stripped.split()
            if len(parts) != 2:
                raise WorkloadError(
                    f"line {line_number}: expected 'time node', got "
                    f"{stripped!r}"
                )
            try:
                events.append(TraceEvent(float(parts[0]), int(parts[1])))
            except ValueError as error:
                raise WorkloadError(
                    f"line {line_number}: {error}"
                ) from None
        return cls(events)

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "QueryTrace":
        """Load a trace file."""
        return cls.parse(pathlib.Path(path).read_text(encoding="utf-8"))

    # -- persistence -----------------------------------------------------------
    def dump(self) -> str:
        """Serialize to the text format."""
        lines = ["# repro-dup query trace: <time_seconds> <node_id>"]
        lines.extend(f"{e.time:.6f} {e.node}" for e in self._events)
        return "\n".join(lines) + "\n"

    def save(self, path: str | pathlib.Path) -> None:
        """Write the trace file."""
        pathlib.Path(path).write_text(self.dump(), encoding="utf-8")

    # -- access -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self._events[index]

    @property
    def duration(self) -> float:
        """Time of the last event (0 for an empty trace)."""
        return self._events[-1].time if self._events else 0.0

    @property
    def nodes(self) -> frozenset[NodeId]:
        """All nodes appearing in the trace."""
        return frozenset(event.node for event in self._events)

    def mean_rate(self) -> float:
        """Observed events per second over the trace span."""
        if len(self._events) < 2 or self.duration == 0:
            return float("nan")
        return len(self._events) / self.duration

    def clipped(self, start: float, end: float) -> "QueryTrace":
        """Events with ``start <= time < end``, re-based to start at 0."""
        return QueryTrace(
            TraceEvent(event.time - start, event.node)
            for event in self._events
            if start <= event.time < end
        )

    def __repr__(self) -> str:
        return (
            f"QueryTrace(events={len(self._events)}, "
            f"duration={self.duration:.1f}s)"
        )
