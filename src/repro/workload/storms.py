"""Adversarial overload workloads: flash crowds, update storms, thrash.

The paper evaluates DUP under steady Zipf arrivals; ROADMAP item 4 asks
what the dynamic tree does under *bursty* load.  This module supplies
three storm kinds, declared as :class:`StormPhase` windows inside a
:class:`StormPlan` (the ``storms`` field of
:class:`~repro.engine.config.SimulationConfig`):

``flash-crowd``
    At phase onset the Zipf popularity ranking flips —
    ``rank_flips`` randomly chosen nodes are promoted to the top ranks
    (:meth:`~repro.workload.selection.ZipfNodeSelector.flip_ranks`) —
    and for the phase's duration *extra* queries arrive at ``rate``
    per second on top of the base workload, drawn from the flipped
    ranking.  The subscribe traffic of the freshly hot nodes funnels
    through a few interior nodes: exactly the fan-in the overload
    layer's caps are for.

``update-storm``
    The authority is driven with :meth:`~repro.index.authority.
    Authority.force_update` calls at ``rate`` per second: every one
    fans a push out along the DUP tree (or is coalesced away, when the
    authority's ``min_issue_gap`` is set).

``thrash``
    Subscribe/unsubscribe churn: at ``rate`` per second a random node
    receives a burst of ``burst`` back-to-back queries (default: the
    interest threshold plus one — just enough to push it over the
    subscription threshold).  Its interest then lapses by the next
    push cycle, unsubscribing it again, so the tree's membership flaps.

Every storm draws randomness from dedicated ``storm-*`` streams, so a
run whose plan is ``None`` (or empty) is bit-identical to a build
without this module, and two runs differing only in their storms share
the base workload exactly (common random numbers).  Storm-injected
queries go through the ordinary ``scheme.on_local_query`` path: they
are real offered load, counted by every metric like any other query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.simulation import Simulation

NodeId = int

STORM_KINDS = ("flash-crowd", "update-storm", "thrash")


@dataclass(frozen=True)
class StormPhase:
    """One storm window.

    Attributes
    ----------
    kind:
        ``"flash-crowd"``, ``"update-storm"``, or ``"thrash"``.
    start:
        Absolute simulated time the phase opens (experiments typically
        place it after warm-up).
    duration:
        How long the phase lasts.
    rate:
        Events per simulated second: extra queries (flash-crowd),
        forced authority updates (update-storm), or query bursts
        (thrash).
    rank_flips:
        Flash-crowd only: how many nodes are promoted to the top of
        the Zipf ranking at onset (default 1).
    burst:
        Thrash only: queries per burst; 0 means ``threshold_c + 1``.
    """

    kind: str
    start: float
    duration: float
    rate: float
    rank_flips: int = 1
    burst: int = 0

    def __post_init__(self) -> None:
        if self.kind not in STORM_KINDS:
            raise ConfigError(
                f"storm kind must be one of {STORM_KINDS}, got {self.kind!r}"
            )
        if self.start < 0:
            raise ConfigError(f"storm start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ConfigError(
                f"storm duration must be positive, got {self.duration}"
            )
        if self.rate <= 0:
            raise ConfigError(f"storm rate must be positive, got {self.rate}")
        if self.rank_flips < 1:
            raise ConfigError(
                f"rank_flips must be >= 1, got {self.rank_flips}"
            )
        if self.burst < 0:
            raise ConfigError(f"burst must be >= 0, got {self.burst}")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class StormPlan:
    """The declarative storm schedule of one run."""

    phases: tuple[StormPhase, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        for phase in self.phases:
            if not isinstance(phase, StormPhase):  # pragma: no cover
                raise ConfigError(f"not a StormPhase: {phase!r}")

    @property
    def enabled(self) -> bool:
        return bool(self.phases)


class StormEngine:
    """Runs a :class:`StormPlan` against one simulation.

    One process per phase; each draws from its own named stream
    (``storm-<kind>-<index>``) so concurrent phases stay independent
    and the base workload streams are never touched.
    """

    def __init__(self, sim: "Simulation", plan: StormPlan) -> None:
        self._sim = sim
        self.plan = plan
        self.phases_started = 0
        self.phases_completed = 0
        self.storm_queries = 0
        self.forced_updates = 0
        self.thrash_bursts = 0
        self.rank_flips = 0

    def install(self) -> None:
        """Register one process per phase (called from ``start()``)."""
        for index, phase in enumerate(self.plan.phases):
            rng = self._sim.streams.get(f"storm-{phase.kind}-{index}")
            self._sim.env.process(
                self._phase_loop(phase, rng),
                name=f"storm-{phase.kind}-{index}",
            )

    # -- internals ------------------------------------------------------

    def _record_phase(self, phase: StormPhase, edge: str) -> None:
        recorder = self._sim.recorder
        if recorder is not None:
            recorder.record(
                "storm-phase",
                detail=f"{phase.kind}:{edge} rate={phase.rate:g}",
            )

    def _eligible(self, node: NodeId) -> bool:
        sim = self._sim
        return sim.functioning(node) and (
            sim.config.root_queries or node != sim.tree.root
        )

    def _phase_loop(self, phase: StormPhase, rng):
        sim = self._sim
        env = sim.env
        delay = phase.start - env.now
        if delay > 0:
            yield env.timeout(delay)
        self.phases_started += 1
        self._record_phase(phase, "begin")
        if phase.kind == "flash-crowd":
            promoted = sim.selector.flip_ranks(rng, phase.rank_flips)
            self.rank_flips += len(promoted)
        end = phase.end
        while True:
            gap = float(rng.exponential(1.0 / phase.rate))
            if env.now + gap >= end:
                break
            yield env.timeout(gap)
            if phase.kind == "update-storm":
                self._force_update()
            else:
                self._inject_queries(phase, rng)
        remaining = end - env.now
        if remaining > 0:
            yield env.timeout(remaining)
        self.phases_completed += 1
        self._record_phase(phase, "end")

    def _force_update(self) -> None:
        sim = self._sim
        authority = sim.authority
        if (
            authority is None
            or authority.stopped
            or not sim.functioning(sim.tree.root)
        ):
            return
        self.forced_updates += 1
        authority.force_update()

    def _inject_queries(self, phase: StormPhase, rng) -> None:
        sim = self._sim
        if phase.kind == "thrash":
            # Bursts target the cold tail: a burst at an already-warm
            # Zipf-head node neither churns subscriptions nor forwards
            # anything.
            node = sim.selector.sample_tail(rng, self._eligible)
        else:
            node = sim.selector.sample_alive(rng, self._eligible)
        if node is None:
            return
        if phase.kind == "thrash":
            burst = phase.burst or (sim.config.threshold_c + 1)
            self.thrash_bursts += 1
            self.storm_queries += burst
            for _ in range(burst):
                sim.scheme.on_local_query(node)
        else:
            self.storm_queries += 1
            sim.scheme.on_local_query(node)

    def counters(self) -> dict:
        """Storm accounting for result extras and gauges."""
        return {
            "storm_phases_started": self.phases_started,
            "storm_phases_completed": self.phases_completed,
            "storm_queries": self.storm_queries,
            "storm_forced_updates": self.forced_updates,
            "storm_thrash_bursts": self.thrash_bursts,
            "storm_rank_flips": self.rank_flips,
        }
