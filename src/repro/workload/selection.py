"""Zipf-like placement of queries over the overlay nodes.

The paper: "The queries are distributed to nodes according to Zipf-like
distribution ... P_i = (1/i^theta) / sum_k (1/k^theta)".  The mapping from
Zipf rank to overlay node is an arbitrary but fixed assignment; we use a
seeded random permutation so the hot nodes land at random positions of the
search tree rather than systematically near the root (see DESIGN.md).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.stats.distributions import shared_zipf

NodeId = int


class ZipfNodeSelector:
    """Selects query origins with Zipf-like popularity.

    Parameters
    ----------
    nodes:
        Eligible query origins (the authority node is normally excluded —
        its queries are trivially local).
    theta:
        Zipf skew; 0 is uniform, large values concentrate queries on a few
        hot nodes.
    rng:
        Stream used once to permute the rank-to-node assignment.
    """

    def __init__(
        self,
        nodes: Sequence[NodeId],
        theta: float,
        rng: np.random.Generator,
    ):
        if not nodes:
            raise WorkloadError("need at least one eligible query origin")
        order = list(nodes)
        rng.shuffle(order)
        self._ranked: list[NodeId] = order
        # The rank law is a pure function of (n, theta): share one CDF
        # table across selectors instead of recomputing the O(n) cumsum
        # per instance (the sharded multi-key engine builds one selector
        # per shard over the same 10^5-node population).
        self._zipf = shared_zipf(len(order), theta)

    def sample(self, rng: np.random.Generator) -> NodeId:
        """Draw one query origin."""
        return self._ranked[self._zipf.sample(rng)]

    def sample_alive(
        self,
        rng: np.random.Generator,
        is_alive,
        attempts: int = 64,
    ) -> Optional[NodeId]:
        """Draw an origin that is still in the overlay (under churn).

        Falls back to a linear scan of the ranking if repeated draws keep
        hitting departed nodes; returns ``None`` when no eligible node is
        alive at all.
        """
        for _ in range(attempts):
            node = self.sample(rng)
            if is_alive(node):
                return node
        for node in self._ranked:
            if is_alive(node):
                return node
        return None

    def sample_tail(
        self,
        rng: np.random.Generator,
        is_alive,
        fraction: float = 0.5,
        attempts: int = 64,
    ) -> Optional[NodeId]:
        """Draw uniformly from the cold tail of the popularity ranking.

        Storm thrash uses this: a burst only churns subscription state
        when it lands on a node cold enough that its interest will lapse
        again, and the Zipf head is warm almost by definition.  Falls
        back to a coldest-first scan, then ``None``, like
        :meth:`sample_alive`.

        ``fraction`` is the share of the ranking (coldest end) eligible
        for the draw.  Values above 1 are clamped to the whole
        population; the tail always contains at least the coldest node,
        even when ``total * fraction`` rounds to zero.
        """
        if fraction <= 0:
            raise WorkloadError(
                f"tail fraction must be positive, got {fraction}"
            )
        fraction = min(fraction, 1.0)
        total = len(self._ranked)
        start = max(0, min(total - 1, int(total * (1.0 - fraction))))
        tail = self._ranked[start:]
        for _ in range(attempts):
            node = tail[int(rng.integers(len(tail)))]
            if is_alive(node):
                return node
        for node in reversed(self._ranked):
            if is_alive(node):
                return node
        return None

    def flip_ranks(
        self, rng: np.random.Generator, count: int = 1
    ) -> list[NodeId]:
        """Flash-crowd rank flip: promote ``count`` random nodes to the
        top of the popularity ranking.

        The chosen nodes (drawn without replacement from the whole
        ranking with ``rng`` — storms pass a dedicated stream so the
        base workload's streams are untouched) become the new hottest
        nodes; everyone else shifts down with relative order preserved.
        Returns the promoted nodes, new rank 0 first.
        """
        total = len(self._ranked)
        count = max(1, min(count, total))
        chosen = sorted(
            (int(i) for i in rng.choice(total, size=count, replace=False)),
            reverse=True,
        )
        promoted = [self._ranked.pop(index) for index in chosen]
        self._ranked[:0] = promoted
        return promoted

    def rank_of(self, node: NodeId) -> int:
        """The node's popularity rank (0 = hottest)."""
        return self._ranked.index(node)

    def hottest(self, count: int = 1) -> list[NodeId]:
        """The ``count`` most popular nodes, hottest first."""
        return self._ranked[:count]

    @property
    def theta(self) -> float:
        """The Zipf skew parameter."""
        return self._zipf.theta

    def __len__(self) -> int:
        return len(self._ranked)

    def __repr__(self) -> str:
        return (
            f"ZipfNodeSelector(nodes={len(self._ranked)}, "
            f"theta={self._zipf.theta})"
        )
