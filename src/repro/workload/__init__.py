"""Workload generation: query arrivals, placement, and churn.

Models Section IV of the paper: queries arrive network-wide at rate
``lambda`` with exponential (default) or Pareto inter-arrival times and
are placed on nodes by a Zipf-like popularity distribution.  Churn (node
join / leave / failure) exercises the Section III-C maintenance paths.
"""

from repro.workload.arrivals import ArrivalProcess, make_arrival_process
from repro.workload.churn import ChurnConfig, ChurnEvent, ChurnProcess
from repro.workload.selection import ZipfNodeSelector
from repro.workload.trace import QueryTrace, TraceEvent

__all__ = [
    "ArrivalProcess",
    "ChurnConfig",
    "ChurnEvent",
    "ChurnProcess",
    "QueryTrace",
    "TraceEvent",
    "ZipfNodeSelector",
    "make_arrival_process",
]
