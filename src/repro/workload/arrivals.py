"""Query arrival processes.

The paper draws query inter-arrival times from an exponential distribution
(default) or from the heavy-tailed Pareto distribution with CDF
``F(x) = 1 - (k/(x+k))^alpha`` whose scale ``k`` is set so the mean rate
``(alpha-1)/k`` equals the sweep's ``lambda``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.stats.distributions import Distribution, Exponential, Pareto


class ArrivalProcess:
    """Draws successive inter-arrival gaps from a distribution."""

    def __init__(self, interarrival: Distribution, rng: np.random.Generator):
        self._interarrival = interarrival
        self._rng = rng

    def next_gap(self) -> float:
        """Time until the next arrival."""
        return self._interarrival.sample(self._rng)

    @property
    def mean_rate(self) -> float:
        """Theoretical arrivals per unit time."""
        return 1.0 / self._interarrival.mean

    def __repr__(self) -> str:
        return f"ArrivalProcess({self._interarrival!r})"


def make_arrival_process(
    kind: str,
    rate: float,
    rng: np.random.Generator,
    pareto_alpha: float = 1.05,
) -> ArrivalProcess:
    """Build the paper's arrival process.

    Parameters
    ----------
    kind:
        ``"exponential"`` or ``"pareto"``.
    rate:
        Network-wide query arrival rate ``lambda`` (queries per second).
    rng:
        Random stream (typically ``"arrivals"``).
    pareto_alpha:
        Tail index for the Pareto case (paper uses 1.05 and 1.20).
    """
    if rate <= 0:
        raise WorkloadError(f"query rate must be positive, got {rate}")
    if kind == "exponential":
        return ArrivalProcess(Exponential.from_rate(rate), rng)
    if kind == "pareto":
        return ArrivalProcess(Pareto.from_rate(pareto_alpha, rate), rng)
    raise WorkloadError(
        f"unknown arrival kind {kind!r}; use 'exponential' or 'pareto'"
    )
