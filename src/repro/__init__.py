"""Reproduction of "DUP: Dynamic-tree Based Update Propagation in
Peer-to-Peer Networks" (Yin & Cao, ICDE 2005).

The library provides:

- the DUP protocol itself (:mod:`repro.core`) and its baselines PCX and
  CUP (:mod:`repro.schemes`);
- every substrate the paper depends on — a discrete-event kernel
  (:mod:`repro.sim`), index search trees and a Chord DHT
  (:mod:`repro.topology`), versioned TTL index caches (:mod:`repro.index`),
  hop-accounted messaging (:mod:`repro.net`), and the paper's workload
  model (:mod:`repro.workload`);
- a simulation engine with replication/comparison runners
  (:mod:`repro.engine`) and one experiment module per paper table/figure
  (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import SimulationConfig, compare_schemes
>>> config = SimulationConfig.benchmark_scale(num_nodes=128, query_rate=2.0)
>>> comparison = compare_schemes(config, replications=1)   # doctest: +SKIP
>>> print(comparison)                                      # doctest: +SKIP
"""

from repro.core import DupProtocol, SubscriberList, WindowInterestPolicy
from repro.engine import (
    ComparisonResult,
    MultiKeySimulation,
    ReplicatedResult,
    Simulation,
    SimulationConfig,
    SimulationResult,
    compare_schemes,
    run_replications,
    run_simulation,
)
from repro.engine.runner import sweep
from repro.errors import ReproError
from repro.schemes import available_schemes, make_scheme
from repro.topology import ChordRing, SearchTree, chord_search_tree, random_search_tree
from repro.workload import ChurnConfig

__version__ = "1.0.0"

__all__ = [
    "ChordRing",
    "ChurnConfig",
    "ComparisonResult",
    "DupProtocol",
    "MultiKeySimulation",
    "ReplicatedResult",
    "ReproError",
    "SearchTree",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "SubscriberList",
    "WindowInterestPolicy",
    "__version__",
    "available_schemes",
    "chord_search_tree",
    "compare_schemes",
    "make_scheme",
    "random_search_tree",
    "run_replications",
    "run_simulation",
    "sweep",
]
