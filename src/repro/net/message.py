"""Message and control-payload types exchanged between overlay nodes.

Two layers are distinguished:

- **Messages** travel one overlay hop through the transport and are charged
  to a :class:`Category` (query / reply / push / control / keep-alive).
- **Control payloads** (:class:`Subscribe`, :class:`Substitute`,
  :class:`CupRegister`, ...) describe interest/tree maintenance.  They can
  either ride inside a :class:`QueryMessage` (the paper's "interest bit"
  piggybacking — zero extra hops) or travel standalone wrapped in a
  :class:`ControlMessage` (one charged hop per tree edge).

Every message additionally carries a **span context**: a ``trace_id``
linking it to the query whose causal chain it belongs to (issue →
per-hop forwarding → reply → control continuations → the pushes they
trigger).  The id is ``None`` for traffic outside any query's chain
(TTL-cycle pushes, keep-alives, churn repair) or when tracing is off;
it is propagated with :meth:`Message.inherit_trace` so the
:class:`repro.engine.tracing.TraceCollector` can reassemble full
end-to-end traces from transport events.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

NodeId = int

_sequence = itertools.count()


class Category(enum.Enum):
    """Cost-accounting category for one message hop."""

    QUERY = "query"
    REPLY = "reply"
    PUSH = "push"
    CONTROL = "control"
    KEEPALIVE = "keepalive"


# ---------------------------------------------------------------------------
# Control payloads (DUP: Figure 3 of the paper; CUP: register/unregister)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Subscribe:
    """``subscribe(N_i)``: node ``subject`` wants future index updates."""

    subject: NodeId


@dataclass(frozen=True, slots=True)
class Unsubscribe:
    """``unsubscribe(N_i)``: node ``subject`` no longer wants updates."""

    subject: NodeId


@dataclass(frozen=True, slots=True)
class Substitute:
    """``substitute(N_i, N_j)``: replace ``old`` with ``new`` upstream."""

    old: NodeId
    new: NodeId


@dataclass(frozen=True, slots=True)
class RefreshSubscribe:
    """Failure repair: re-establish ``subject``'s virtual path.

    Unlike a plain :class:`Subscribe`, a refresh keeps travelling upward
    through nodes that already list ``subject`` (their state may be a relic
    of a path through a failed node) and only converts to normal subscribe
    processing at the first node that does not (paper Section III-C,
    failure cases 3 and 4).
    """

    subject: NodeId


@dataclass(frozen=True, slots=True)
class LeaseRefresh:
    """Soft-state lease renewal: keep ``subject``'s entry alive upstream.

    Sent periodically by every node holding DUP state to its parent,
    naming the node's current upstream *advertisement* (itself when it is
    DUP-tree interior, its sole subscriber otherwise).  A parent that
    lists the subject renews the entry's lease; one that does not treats
    the refresh as a :class:`Subscribe`, healing state lost to message
    loss or a false expiry.  Lease traffic is deliberately unreliable —
    it is the redundancy that makes the rest of the state soft.
    """

    subject: NodeId


@dataclass(frozen=True, slots=True)
class SubscribeNack:
    """Overload refusal: ``refuser`` declined to list ``subject``.

    Sent directly to the subject by a DUP interior node at its fanout
    cap (see :class:`repro.net.overload.OverloadPlan.max_subscribers`).
    The refuser forwarded the subject's :class:`Subscribe` to its own
    parent — the redirect — so the subscription still lands, one level
    higher; the NACK is the subject's signal that the refuser is
    overloaded (it feeds the subject's circuit breaker for that peer).
    """

    subject: NodeId
    refuser: NodeId


@dataclass(frozen=True, slots=True)
class Delegate:
    """Load balancing: ``delegator`` hands ``subject`` to the receiver.

    Sent point-to-point by a ``dup-balanced`` interior node at its fanout
    cap to its best-ranked existing subscriber-list entry.  The receiver
    processes ``Subscribe(subject)`` locally — the split promotes it to
    relay duty for the subject — while the delegator remembers the
    mapping so renewals, unsubscribes, substitutes, and lease refreshes
    for the subject route to the delegate instead of the local list.
    """

    subject: NodeId
    delegator: NodeId


@dataclass(frozen=True, slots=True)
class Reclaim:
    """Load balancing: ``delegator`` takes ``subject`` back.

    Sent point-to-point when a delegated subject unsubscribes or when
    the delegator's fanout has drained below the cap and it reabsorbs
    the subject into its own list.  The receiver processes
    ``Unsubscribe(subject)`` locally, dissolving the split branch.
    """

    subject: NodeId
    delegator: NodeId


@dataclass(frozen=True, slots=True)
class CupRegister:
    """CUP: ``child`` registers with the receiving node for pushes."""

    child: NodeId


@dataclass(frozen=True, slots=True)
class CupUnregister:
    """CUP: ``child`` cancels its registration with the receiving node."""

    child: NodeId


ControlPayload = object  # any of the dataclasses above


# ---------------------------------------------------------------------------
# Wire messages
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Message:
    """Base class for everything the transport can carry.

    ``trace_id`` is the span context: the id of the query trace this
    message causally belongs to, or ``None`` when it is not part of any
    traced query (see the module docstring).

    ``TYPE_ID`` is a small per-class integer indexing the scheme layer's
    typed handler table (see
    :meth:`repro.schemes.base.PathCachingScheme.bind`): the four
    scheme-dispatched classes occupy slots 0-3; engine-consumed classes
    sit above the table so a stray one raises cleanly.
    """

    #: Handler-table slot; the base value is past the table on purpose.
    TYPE_ID = 8

    key: int

    category: Category = field(default=Category.CONTROL, init=False)
    trace_id: Optional[int] = field(default=None, init=False)
    #: Delivery id set by the reliable channel when this message is sent
    #: with ack/retry semantics (None for ordinary fire-and-forget hops).
    reliable_id: Optional[int] = field(default=None, init=False)
    #: Global construction order (``slots=True`` needs it declared).
    sequence: int = field(default=-1, init=False)

    def __post_init__(self) -> None:
        self.sequence = next(_sequence)

    def inherit_trace(self, source: "Message | int | None") -> "Message":
        """Adopt the span context of ``source`` (a message or raw id).

        Returns ``self`` so construction and propagation can be chained:
        ``transport.send(dst, PushMessage(...).inherit_trace(query))``.
        Mutates in place — no new message object is created, and a
        self-inheritance is a no-op.  ``source`` may be a message (its
        ``trace_id`` is adopted), a raw id, or ``None``.
        """
        self.trace_id = getattr(source, "trace_id", source)
        return self


@dataclass(slots=True)
class QueryMessage(Message):
    """An index request travelling up the search tree.

    Attributes
    ----------
    origin:
        The node that issued the query.
    path:
        Nodes visited so far, origin first; the reply retraces it.
    control:
        Piggybacked control payloads (the paper's interest bit) processed
        at every hop free of charge.
    """

    TYPE_ID = 0

    origin: NodeId
    issued_at: float = 0.0
    path: list[NodeId] = field(default_factory=list)
    control: list[ControlPayload] = field(default_factory=list)

    def __post_init__(self) -> None:
        Message.__post_init__(self)
        self.category = Category.QUERY
        if not self.path:
            self.path = [self.origin]

    @property
    def hops(self) -> int:
        """Hops the request has travelled so far."""
        return len(self.path) - 1


@dataclass(slots=True)
class ReplyMessage(Message):
    """An index reply retracing the query path back to the origin.

    ``path`` is the query's recorded path (origin first); ``position``
    indexes the node the reply currently sits at.
    """

    TYPE_ID = 1

    version: "object"  # repro.index.entry.IndexVersion (avoid import cycle)
    path: list[NodeId]
    position: int
    request_hops: int
    issued_at: float = 0.0

    def __post_init__(self) -> None:
        Message.__post_init__(self)
        self.category = Category.REPLY

    @property
    def destination(self) -> NodeId:
        """Final destination: the query's origin."""
        return self.path[0]

    def next_hop(self) -> Optional[NodeId]:
        """The node one step closer to the origin, or ``None`` at it."""
        if self.position == 0:
            return None
        return self.path[self.position - 1]


@dataclass(slots=True)
class PushMessage(Message):
    """A proactively pushed index update (CUP hop-by-hop, DUP direct)."""

    TYPE_ID = 3

    version: "object"
    sender: NodeId

    def __post_init__(self) -> None:
        Message.__post_init__(self)
        self.category = Category.PUSH


@dataclass(slots=True)
class ControlMessage(Message):
    """Standalone control payloads travelling one hop up the tree.

    Payloads generated together are bundled so they are processed in
    order at every hop (separate messages could overtake each other under
    random per-hop latencies and corrupt the subscriber lists).  The hop
    is charged once per payload — bundling is an ordering device, not a
    cost discount.
    """

    TYPE_ID = 2

    payloads: list[ControlPayload]
    sender: NodeId

    def __post_init__(self) -> None:
        Message.__post_init__(self)
        self.category = Category.CONTROL


@dataclass(slots=True)
class AckMessage(Message):
    """Delivery acknowledgement for the reliable channel.

    ``acked`` names the :attr:`Message.reliable_id` being confirmed.
    Acks travel one charged control hop, are themselves fire-and-forget
    (a lost ack costs a retransmission, nothing more), and are consumed
    by the engine before scheme dispatch.
    """

    TYPE_ID = 4

    acked: int
    sender: NodeId

    def __post_init__(self) -> None:
        Message.__post_init__(self)
        self.category = Category.CONTROL


@dataclass(slots=True)
class KeepAliveMessage(Message):
    """Host liveness beacon sent to the authority node."""

    TYPE_ID = 5

    sender: NodeId

    def __post_init__(self) -> None:
        Message.__post_init__(self)
        self.category = Category.KEEPALIVE


@dataclass(slots=True)
class AuthorityHeartbeat(Message):
    """Authority liveness beacon sent to each standby between issues.

    Silence (no heartbeat and no replication for ``failover_timeout``)
    is what a standby interprets as an authority crash.
    """

    TYPE_ID = 6

    sender: NodeId

    def __post_init__(self) -> None:
        Message.__post_init__(self)
        self.category = Category.KEEPALIVE


@dataclass(slots=True)
class AuthorityReplicate(Message):
    """Authority state replicated to a standby after each issue.

    Carries an :class:`repro.index.authority.AuthorityState` snapshot
    (typed as ``object`` to avoid an import cycle); doubles as a
    heartbeat for liveness purposes.
    """

    TYPE_ID = 7

    state: "object"
    sender: NodeId

    def __post_init__(self) -> None:
        Message.__post_init__(self)
        self.category = Category.CONTROL
