"""One-overlay-hop message transport with latency and cost accounting.

Every transmission in the system is a single overlay hop (paper Section
II-B measures cost in hops): queries and replies hop along search-tree
edges; DUP pushes hop directly between arbitrary overlay nodes, which is
exactly the short-cut the paper exploits ("the physical distance between
N1 and N6 is not necessarily much longer than that between N1 and N2").

Each hop:

- is delayed by a latency drawn from the configured distribution (the
  paper uses Exponential with mean 0.1 s), and
- charges 1 hop to the message's :class:`~repro.net.message.Category` in
  the cost ledger — unless the hop is *free* (piggybacked control bits) or
  falls into the measurement warm-up.

Observability taps into the transport through **observers**: any number
of callables registered with :meth:`Transport.add_observer` receive a
:class:`TransportEvent` for every send, delivery, and drop.  The
message log and the trace collector are both built on this tap, so they
stack freely and never touch the delivery handler.

An optional :class:`~repro.net.faults.FaultInjector` sits between send
and delivery: it may lose a transmission outright (the hop stays
charged — the network carried it), deliver it twice, stretch its delay,
or swallow it at a silently failed destination (blackhole).  Without an
injector none of those paths exist and the transport behaves exactly as
before — fault support is zero-cost when off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.net.message import Message, QueryMessage
from repro.sim.core import Environment
from repro.stats.distributions import Distribution

NodeId = int
DeliveryHandler = Callable[[NodeId, Message], None]


@dataclass(frozen=True)
class TransportEvent:
    """One observable transport occurrence.

    Attributes
    ----------
    kind:
        ``"send"`` (hop scheduled), ``"deliver"`` (hop completed), or
        ``"drop"`` (message lost).
    time:
        Simulation time of the event.
    destination:
        Receiving node (``None`` only for drops whose target is truly
        unknown).
    message:
        The message involved.
    sender:
        Transmitting node when known (derived from the message where
        possible).
    reason:
        For drops: why the message was lost — ``"churn"`` (destination
        left the overlay), ``"loss"`` (injected message loss),
        ``"blackhole"`` (silently failed destination), ``"partition"``
        (sender and destination sit in different components of an
        active partition), or ``"path"`` (a reply found its remaining
        path dead).
    """

    kind: str
    time: float
    destination: Optional[NodeId]
    message: Message
    sender: Optional[NodeId] = None
    reason: Optional[str] = None


TransportObserver = Callable[[TransportEvent], None]


def _derive_sender(message: Message) -> Optional[NodeId]:
    """Best-effort transmitting node for observer/drop attribution."""
    sender = getattr(message, "sender", None)
    if sender is None and isinstance(message, QueryMessage):
        sender = message.path[-1]
    return sender


class Transport:
    """Delivers messages one hop at a time, charging the cost ledger.

    Parameters
    ----------
    env:
        The simulation environment.
    latency:
        Per-hop latency distribution.
    rng:
        Random stream used to draw latencies (the ``"latency"`` stream).
    ledger:
        The :class:`repro.metrics.counters.CostLedger` charged per hop.
    handler:
        Callback invoked as ``handler(destination, message)`` on delivery;
        set by the engine after node handlers exist (see :meth:`bind`).
    injector:
        Optional :class:`repro.net.faults.FaultInjector` consulted on
        every send and delivery (see :meth:`use_injector`).
    """

    def __init__(
        self,
        env: Environment,
        latency: Distribution,
        rng: np.random.Generator,
        ledger: "object",
        handler: Optional[DeliveryHandler] = None,
        injector: Optional["object"] = None,
    ):
        self._env = env
        self._latency = latency
        self._rng = rng
        self._ledger = ledger
        self._handler = handler
        self._injector = injector
        self._dropped = 0
        self._observers: list[TransportObserver] = []

    def bind(self, handler: DeliveryHandler) -> None:
        """Set the delivery callback (must happen before the first send)."""
        self._handler = handler

    def use_injector(self, injector: Optional["object"]) -> None:
        """Install (or clear) the fault injector."""
        self._injector = injector

    @property
    def injector(self) -> Optional["object"]:
        """The installed fault injector, if any."""
        return self._injector

    # -- observer tap -------------------------------------------------------
    def add_observer(self, observer: TransportObserver) -> TransportObserver:
        """Register an observer for send/deliver/drop events.

        Observers stack: each registered callable sees every event, in
        registration order, before the delivery handler runs.  Returns
        the observer so call sites can keep the handle for
        :meth:`remove_observer`.
        """
        self._observers.append(observer)
        return observer

    def remove_observer(self, observer: TransportObserver) -> None:
        """Unregister a previously added observer."""
        try:
            self._observers.remove(observer)
        except ValueError:
            raise ValueError("observer was not registered") from None

    @property
    def observers(self) -> tuple[TransportObserver, ...]:
        """The currently registered observers, in notification order."""
        return tuple(self._observers)

    def _notify(self, event: TransportEvent) -> None:
        for observer in self._observers:
            observer(event)

    @property
    def dropped(self) -> int:
        """Messages dropped for any reason (churn, loss, blackhole)."""
        return self._dropped

    def send(
        self,
        destination: NodeId,
        message: Message,
        free: bool = False,
        hops: int = 1,
        sender: Optional[NodeId] = None,
    ) -> None:
        """Transmit ``message`` one overlay hop to ``destination``.

        Parameters
        ----------
        destination:
            Receiving node id.
        message:
            The message; its ``category`` decides the ledger account.
        free:
            When true the hop is not charged (piggybacked control bit).
        hops:
            Hop cost to charge (always 1 in the paper's model; kept
            explicit for clarity at call sites).
        sender:
            Transmitting node, for observers; derived from the message
            (``sender`` attribute, or the query path) when omitted.
        """
        if self._handler is None:
            raise RuntimeError("transport used before bind()")
        if not free:
            self._ledger.charge(message.category, hops)
        injector = self._injector
        if injector is None and not self._observers:
            # Fast branch: no injector and no observers attached — the
            # hop is charge + latency draw + delayed delivery, nothing
            # else.  The RNG draw happens at the same point as in the
            # instrumented path, so streams stay bit-identical.  defer()
            # skips the Timeout machinery in batched environments and
            # degrades to call_later everywhere else.
            self._env.defer(
                self._latency.sample(self._rng),
                self._deliver,
                destination,
                message,
            )
            return
        if self._observers or injector is not None:
            if sender is None:
                sender = _derive_sender(message)
        if self._observers:
            self._notify(
                TransportEvent(
                    kind="send",
                    time=self._env.now,
                    destination=destination,
                    message=message,
                    sender=sender,
                )
            )
        if injector is not None:
            if injector.partition_active and injector.crosses_partition(
                sender, destination
            ):
                # The hop was charged — the packet left the sender and
                # died at the cut.
                self.drop(
                    message,
                    destination=destination,
                    sender=sender,
                    reason="partition",
                )
                return
            if injector.should_drop(message):
                # The hop was charged — the network carried the message;
                # the receiver just never saw it.
                self.drop(
                    message,
                    destination=destination,
                    sender=sender,
                    reason="loss",
                )
                return
            if injector.should_duplicate(message):
                self._env.call_later(
                    injector.duplicate_delay(self._latency),
                    self._deliver,
                    destination,
                    message,
                )
        delay = self._latency.sample(self._rng)
        if injector is not None:
            delay += injector.extra_delay()
        self._env.call_later(delay, self._deliver, destination, message)

    def _deliver(self, destination: NodeId, message: Message) -> None:
        injector = self._injector
        if injector is not None and injector.is_dead(destination):
            injector.note_blackholed()
            self.drop(
                message,
                destination=destination,
                sender=_derive_sender(message),
                reason="blackhole",
            )
            return
        if self._observers:
            self._notify(
                TransportEvent(
                    kind="deliver",
                    time=self._env.now,
                    destination=destination,
                    message=message,
                )
            )
        self._handler(destination, message)

    def drop(
        self,
        message: Optional[Message] = None,
        destination: Optional[NodeId] = None,
        sender: Optional[NodeId] = None,
        reason: str = "churn",
    ) -> None:
        """Record a lost message, attributing the loss to a link.

        ``destination`` and ``sender`` identify the link the message died
        on (the sender is derived from the message when omitted);
        ``reason`` distinguishes churn drops from injected losses,
        blackholes, and dead reply paths.
        """
        self._dropped += 1
        if self._observers and message is not None:
            if sender is None:
                sender = _derive_sender(message)
            self._notify(
                TransportEvent(
                    kind="drop",
                    time=self._env.now,
                    destination=destination,
                    message=message,
                    sender=sender,
                    reason=reason,
                )
            )
