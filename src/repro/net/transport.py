"""One-overlay-hop message transport with latency and cost accounting.

Every transmission in the system is a single overlay hop (paper Section
II-B measures cost in hops): queries and replies hop along search-tree
edges; DUP pushes hop directly between arbitrary overlay nodes, which is
exactly the short-cut the paper exploits ("the physical distance between
N1 and N6 is not necessarily much longer than that between N1 and N2").

Each hop:

- is delayed by a latency drawn from the configured distribution (the
  paper uses Exponential with mean 0.1 s), and
- charges 1 hop to the message's :class:`~repro.net.message.Category` in
  the cost ledger — unless the hop is *free* (piggybacked control bits) or
  falls into the measurement warm-up.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.net.message import Message
from repro.sim.core import Environment
from repro.stats.distributions import Distribution

NodeId = int
DeliveryHandler = Callable[[NodeId, Message], None]


class Transport:
    """Delivers messages one hop at a time, charging the cost ledger.

    Parameters
    ----------
    env:
        The simulation environment.
    latency:
        Per-hop latency distribution.
    rng:
        Random stream used to draw latencies (the ``"latency"`` stream).
    ledger:
        The :class:`repro.metrics.counters.CostLedger` charged per hop.
    handler:
        Callback invoked as ``handler(destination, message)`` on delivery;
        set by the engine after node handlers exist (see :meth:`bind`).
    """

    def __init__(
        self,
        env: Environment,
        latency: Distribution,
        rng: np.random.Generator,
        ledger: "object",
        handler: Optional[DeliveryHandler] = None,
    ):
        self._env = env
        self._latency = latency
        self._rng = rng
        self._ledger = ledger
        self._handler = handler
        self._dropped = 0

    def bind(self, handler: DeliveryHandler) -> None:
        """Set the delivery callback (must happen before the first send)."""
        self._handler = handler

    @property
    def dropped(self) -> int:
        """Messages dropped because the destination vanished (churn)."""
        return self._dropped

    def send(
        self,
        destination: NodeId,
        message: Message,
        free: bool = False,
        hops: int = 1,
    ) -> None:
        """Transmit ``message`` one overlay hop to ``destination``.

        Parameters
        ----------
        destination:
            Receiving node id.
        message:
            The message; its ``category`` decides the ledger account.
        free:
            When true the hop is not charged (piggybacked control bit).
        hops:
            Hop cost to charge (always 1 in the paper's model; kept
            explicit for clarity at call sites).
        """
        if self._handler is None:
            raise RuntimeError("transport used before bind()")
        if not free:
            self._ledger.charge(message.category, hops)
        delay = self._latency.sample(self._rng)
        self._env.call_later(delay, self._deliver, destination, message)

    def _deliver(self, destination: NodeId, message: Message) -> None:
        self._handler(destination, message)

    def drop(self) -> None:
        """Record a message lost to churn (destination left the overlay)."""
        self._dropped += 1
