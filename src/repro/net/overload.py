"""Overload resilience: bounded inboxes, priority shedding, breakers.

The paper evaluates DUP under steady Zipf arrivals; this module supplies
the machinery for the *bursty* regime ROADMAP item 4 asks about.  Three
cooperating pieces, all deterministic and RNG-free:

``OverloadPlan``
    The declarative configuration (frozen dataclass) hung off
    :class:`~repro.engine.config.SimulationConfig.overload`.  Every
    default leaves the layer disabled; a config with ``overload=None``
    or an all-default plan is bit-identical to a build without this
    module.

Bounded priority-classed inboxes
    Every node gets a finite inbox and a service rate.  A message
    arriving at an idle node is processed immediately and the node is
    busy for ``1 / service_rate`` simulated seconds; arrivals during
    the busy period queue.  The queue is priority-classed: *control*
    traffic (subscribes, leases, acks, heartbeats, repairs — the
    ``CONTROL`` and ``KEEPALIVE`` categories) outranks *data* traffic
    (queries, replies, pushes).  When the inbox is full, an arriving
    data message is shed; an arriving control message evicts the
    newest queued data message instead, so control is only ever
    dropped when the entire inbox is already control.  Pending pushes
    for the same key coalesce by version (the authority's update storm
    collapses to the newest version in flight).  Every drop decision
    is a pure function of queue state — no RNG stream is consumed, so
    drop accounting is identical under any worker count.

Per-peer circuit breakers
    A breaker per ``(owner, peer)`` ordered pair trips to OPEN after
    ``breaker_threshold`` consecutive failures (reliable-channel
    give-ups or subscribe rejections), suppresses sends for
    ``breaker_cooldown`` simulated seconds, then HALF-OPENs: exactly
    one probe send is allowed through.  A success (an ack, or any
    recorded contact) closes the breaker; a failed probe re-opens it.
    A success arriving while the breaker is still OPEN — the peer
    healed before the cooldown elapsed — also closes it immediately,
    which is the "half-open race" the tests pin down.

The manager is a observer-friendly citizen: when a flight recorder is
armed it emits ``overload-shed``, ``breaker-trip``,
``breaker-half-open`` and ``breaker-close`` events, but recording never
changes a decision.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigError
from repro.net.message import Category, Message, PushMessage

#: Message categories that form the protected *control* class.
CONTROL_CATEGORIES = frozenset({Category.CONTROL, Category.KEEPALIVE})

#: Drop reasons, in the order they appear in the accounting table.
SHED_INBOX_FULL = "inbox-full"
SHED_EVICTED = "evicted-for-control"
SHED_CONTROL_OVERFLOW = "control-overflow"
SHED_COALESCED = "coalesced-push"


@dataclass(frozen=True)
class OverloadPlan:
    """Declarative overload-protection configuration.

    Attributes
    ----------
    inbox_capacity:
        Messages a busy node may hold queued (the server slot is not
        counted).  ``0`` means no waiting room at all: anything arriving
        while the node is busy is shed.
    service_rate:
        Messages per simulated second one node can process; ``0``
        disables the inbox/queueing model entirely (messages deliver
        instantly, exactly as without the layer).
    max_subscribers:
        Fanout cap for scheme-level graceful degradation: a DUP
        interior node holding this many subscribers refuses new ones
        with a redirect-to-parent NACK, and a CUP node stops accepting
        registrations beyond it.  ``0`` leaves fanout uncapped.
    coalesce_pushes:
        Whether a push queued behind another pending push for the same
        key is coalesced to the newest version instead of occupying a
        second slot.
    authority_coalesce_gap:
        Minimum simulated seconds between *forced* authority issues;
        ``force_update`` calls arriving faster are coalesced into one
        deferred issue (``0`` disables, keeping the authority
        bit-identical).
    breaker_threshold:
        Consecutive failures (give-ups / rejections) against one peer
        that trip that peer's circuit breaker (``0`` disables
        breakers).
    breaker_cooldown:
        Simulated seconds an OPEN breaker suppresses sends before it
        half-opens for a probe.
    """

    inbox_capacity: int = 64
    service_rate: float = 0.0
    max_subscribers: int = 0
    coalesce_pushes: bool = True
    authority_coalesce_gap: float = 0.0
    breaker_threshold: int = 0
    breaker_cooldown: float = 60.0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` on any invalid parameter."""
        if self.inbox_capacity < 0:
            raise ConfigError(
                f"inbox_capacity must be >= 0, got {self.inbox_capacity}"
            )
        if self.service_rate < 0:
            raise ConfigError(
                f"service_rate must be >= 0, got {self.service_rate}"
            )
        if self.max_subscribers < 0:
            raise ConfigError(
                f"max_subscribers must be >= 0, got {self.max_subscribers}"
            )
        if self.authority_coalesce_gap < 0:
            raise ConfigError(
                "authority_coalesce_gap must be >= 0, got "
                f"{self.authority_coalesce_gap}"
            )
        if self.breaker_threshold < 0:
            raise ConfigError(
                "breaker_threshold must be >= 0, got "
                f"{self.breaker_threshold}"
            )
        if self.breaker_threshold > 0 and self.breaker_cooldown <= 0:
            raise ConfigError(
                "breaker_cooldown must be positive when breakers are "
                f"enabled, got {self.breaker_cooldown}"
            )

    @property
    def inboxes_enabled(self) -> bool:
        """Whether the bounded-inbox service model is active."""
        return self.service_rate > 0

    @property
    def breakers_enabled(self) -> bool:
        """Whether per-peer circuit breakers are active."""
        return self.breaker_threshold > 0

    @property
    def enabled(self) -> bool:
        """Whether any part of the layer does anything at all."""
        return (
            self.inboxes_enabled
            or self.breakers_enabled
            or self.max_subscribers > 0
            or self.authority_coalesce_gap > 0
        )


class _Inbox:
    """One node's bounded, two-class inbox plus its server state."""

    __slots__ = ("busy", "control", "data", "peak")

    def __init__(self) -> None:
        self.busy = False
        self.control: deque = deque()
        self.data: deque = deque()
        self.peak = 0

    def depth(self) -> int:
        return len(self.control) + len(self.data)


#: Breaker states (module-level ints keep `_Breaker` slot-friendly).
CLOSED, OPEN, HALF_OPEN = 0, 1, 2

_STATE_NAMES = {CLOSED: "closed", OPEN: "open", HALF_OPEN: "half-open"}


class _Breaker:
    """Circuit-breaker state for one ``(owner, peer)`` pair."""

    __slots__ = ("state", "failures", "opened_at")

    def __init__(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0


class OverloadManager:
    """Runtime state of the overload layer for one simulation.

    Parameters
    ----------
    env:
        The simulation environment (for ``now`` and ``call_later``;
        scheduling consumes no RNG).
    plan:
        The validated :class:`OverloadPlan`.
    deliver:
        Callback ``(destination, message)`` that performs the actual
        dispatch of a message popped from an inbox.
    recorder:
        Optional flight recorder; a pure observer of shed/breaker
        decisions.
    """

    def __init__(
        self,
        env,
        plan: OverloadPlan,
        deliver: Callable[[object, Message], None],
        recorder=None,
    ) -> None:
        self._env = env
        self.plan = plan
        self._deliver = deliver
        self._recorder = recorder
        self._service_time = (
            1.0 / plan.service_rate if plan.service_rate > 0 else 0.0
        )
        self._inboxes: dict = {}
        self._breakers: dict = {}
        # Deterministic drop accounting.
        self.offered = 0
        self.shed_data = 0
        self.shed_control = 0
        self.evicted_for_control = 0
        self.pushes_coalesced = 0
        self.breaker_trips = 0
        self.breaker_suppressed = 0
        self.breaker_probes = 0

    # -- flight recorder ------------------------------------------------

    def _record(self, kind: str, node, subject=None, detail: str = "") -> None:
        recorder = self._recorder
        if recorder is not None:
            recorder.record(kind, node=node, subject=subject, detail=detail)

    # -- bounded priority inbox ----------------------------------------

    def admit(self, destination, message: Message) -> bool:
        """Admit ``message`` at ``destination``'s inbox.

        Returns ``True`` when the caller should process the message
        *now* (the node was idle); ``False`` when it was queued for
        later service or shed.  The decision is a pure function of the
        inbox state — no randomness.
        """
        self.offered += 1
        inbox = self._inboxes.get(destination)
        if inbox is None:
            inbox = self._inboxes[destination] = _Inbox()
        if not inbox.busy:
            inbox.busy = True
            self._env.call_later(
                self._service_time, self._drain, destination, inbox
            )
            return True

        control = message.category in CONTROL_CATEGORIES
        if (
            not control
            and self.plan.coalesce_pushes
            and type(message) is PushMessage
            and self._coalesce(inbox, destination, message)
        ):
            return False

        if inbox.depth() >= self.plan.inbox_capacity:
            if control and inbox.data:
                # Control outranks data: the newest pending data
                # message gives up its slot.
                victim = inbox.data.pop()
                self.shed_data += 1
                self.evicted_for_control += 1
                self._record(
                    "overload-shed",
                    destination,
                    detail=f"{SHED_EVICTED}:{type(victim).__name__}",
                )
            else:
                if control:
                    self.shed_control += 1
                    reason = SHED_CONTROL_OVERFLOW
                else:
                    self.shed_data += 1
                    reason = SHED_INBOX_FULL
                self._record(
                    "overload-shed",
                    destination,
                    detail=f"{reason}:{type(message).__name__}",
                )
                return False
        (inbox.control if control else inbox.data).append(message)
        depth = inbox.depth()
        if depth > inbox.peak:
            inbox.peak = depth
        return False

    def _coalesce(self, inbox: _Inbox, destination, message) -> bool:
        """Merge ``message`` with a pending push for the same key.

        The slot keeps whichever version is newer; either way one of
        the two duplicates is shed, which is exactly the "authority
        sheds duplicate pending pushes" degradation under a storm.
        """
        for index, pending in enumerate(inbox.data):
            if type(pending) is PushMessage and pending.key == message.key:
                if pending.version.version <= message.version.version:
                    inbox.data[index] = message
                self.pushes_coalesced += 1
                self._record(
                    "overload-shed",
                    destination,
                    detail=f"{SHED_COALESCED}:{message.key}",
                )
                return True
        return False

    def _drain(self, destination, inbox: _Inbox) -> None:
        """Service completion: pop the next message, control first."""
        if inbox.control:
            message = inbox.control.popleft()
        elif inbox.data:
            message = inbox.data.popleft()
        else:
            inbox.busy = False
            return
        self._env.call_later(
            self._service_time, self._drain, destination, inbox
        )
        self._deliver(destination, message)

    # -- per-peer circuit breakers -------------------------------------

    def allows(self, owner, peer) -> bool:
        """Whether ``owner`` may send to ``peer`` right now.

        OPEN breakers past their cooldown transition to HALF_OPEN and
        let exactly one probe through; everything else while OPEN or
        HALF_OPEN is suppressed (and counted).
        """
        breaker = self._breakers.get((owner, peer))
        if breaker is None or breaker.state == CLOSED:
            return True
        if breaker.state == OPEN:
            if self._env.now - breaker.opened_at >= self.plan.breaker_cooldown:
                breaker.state = HALF_OPEN
                self.breaker_probes += 1
                self._record("breaker-half-open", owner, subject=peer)
                return True
            self.breaker_suppressed += 1
            return False
        # HALF_OPEN with the probe still in flight.
        self.breaker_suppressed += 1
        return False

    def record_failure(self, owner, peer, reason: str = "") -> None:
        """Count one failure (give-up / rejection) of ``owner -> peer``."""
        if self.plan.breaker_threshold <= 0:
            return
        key = (owner, peer)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = self._breakers[key] = _Breaker()
        if breaker.state == OPEN:
            return
        if breaker.state == HALF_OPEN:
            breaker.state = OPEN
            breaker.opened_at = self._env.now
            breaker.failures = 0
            self.breaker_trips += 1
            self._record(
                "breaker-trip", owner, subject=peer, detail="probe-failed"
            )
            return
        breaker.failures += 1
        if breaker.failures >= self.plan.breaker_threshold:
            breaker.state = OPEN
            breaker.opened_at = self._env.now
            breaker.failures = 0
            self.breaker_trips += 1
            self._record("breaker-trip", owner, subject=peer, detail=reason)

    def record_success(self, owner, peer) -> None:
        """Count one successful contact ``peer -> owner``.

        Closes an OPEN or HALF_OPEN breaker: a peer that answered is a
        peer that healed, even if the cooldown has not elapsed yet (the
        half-open race the tests cover).
        """
        breaker = self._breakers.get((owner, peer))
        if breaker is None:
            return
        if breaker.state == CLOSED:
            breaker.failures = 0
            return
        breaker.state = CLOSED
        breaker.failures = 0
        self._record("breaker-close", owner, subject=peer)

    def breaker_state(self, owner, peer) -> str:
        """The named breaker state for tests and dashboards."""
        breaker = self._breakers.get((owner, peer))
        return _STATE_NAMES[breaker.state if breaker else CLOSED]

    # -- accounting -----------------------------------------------------

    @property
    def shed_total(self) -> int:
        return self.shed_data + self.shed_control

    @property
    def shed_fraction(self) -> float:
        """Fraction of offered messages shed (coalesces excluded)."""
        return self.shed_total / self.offered if self.offered else 0.0

    @property
    def max_queue_depth(self) -> int:
        """The deepest any node's inbox ever got."""
        if not self._inboxes:
            return 0
        return max(inbox.peak for inbox in self._inboxes.values())

    def queue_depth_percentile(self, fraction: float) -> int:
        """Percentile over the per-node peak queue depths."""
        peaks = sorted(inbox.peak for inbox in self._inboxes.values())
        if not peaks:
            return 0
        index = min(len(peaks) - 1, max(0, int(fraction * len(peaks))))
        return peaks[index]

    def counters(self) -> dict:
        """All accounting counters, for extras / gauges / tests."""
        return {
            "overload_offered": self.offered,
            "overload_shed_data": self.shed_data,
            "overload_shed_control": self.shed_control,
            "overload_evicted_for_control": self.evicted_for_control,
            "pushes_coalesced": self.pushes_coalesced,
            "shed_fraction": self.shed_fraction,
            "max_queue_depth": self.max_queue_depth,
            "queue_depth_p99": self.queue_depth_percentile(0.99),
            "breaker_trips": self.breaker_trips,
            "breaker_suppressed": self.breaker_suppressed,
            "breaker_probes": self.breaker_probes,
        }


def build_manager(
    env, plan: Optional[OverloadPlan], deliver, recorder=None
) -> Optional[OverloadManager]:
    """An :class:`OverloadManager` when the plan enables anything.

    Mirrors the fault-injector convention: a disabled plan yields
    ``None`` so the hot path keeps its one-attribute check and the run
    stays bit-identical to a build without the layer.
    """
    if plan is None or not plan.enabled:
        return None
    return OverloadManager(env, plan, deliver, recorder=recorder)
