"""Messaging substrate: typed messages, per-hop transport, cost accounting.

The paper's cost metric is "the total number of hops that the query related
messages such as requests, replies and updates traveled in the network
divided by the total number of queries", *including* the interest /
tree-maintenance traffic of CUP and DUP.  Every hop therefore flows through
:class:`~repro.net.transport.Transport`, which charges it to a
:class:`~repro.net.message.Category` in the shared cost ledger.
"""

from repro.net.message import (
    Category,
    ControlMessage,
    CupRegister,
    CupUnregister,
    KeepAliveMessage,
    Message,
    PushMessage,
    QueryMessage,
    ReplyMessage,
    Subscribe,
    Substitute,
    Unsubscribe,
)
from repro.net.transport import Transport, TransportEvent

__all__ = [
    "Category",
    "ControlMessage",
    "CupRegister",
    "CupUnregister",
    "KeepAliveMessage",
    "Message",
    "PushMessage",
    "QueryMessage",
    "ReplyMessage",
    "Subscribe",
    "Substitute",
    "Transport",
    "TransportEvent",
    "Unsubscribe",
]
