"""Messaging substrate: typed messages, per-hop transport, cost accounting.

The paper's cost metric is "the total number of hops that the query related
messages such as requests, replies and updates traveled in the network
divided by the total number of queries", *including* the interest /
tree-maintenance traffic of CUP and DUP.  Every hop therefore flows through
:class:`~repro.net.transport.Transport`, which charges it to a
:class:`~repro.net.message.Category` in the shared cost ledger.

Resilience lives here too: :class:`~repro.net.faults.FaultInjector`
perturbs the transport per a :class:`~repro.net.faults.FaultPlan`
(message loss, duplication, delay jitter, silent failures), and
:class:`~repro.net.reliable.ReliableChannel` layers acks, retransmission
with exponential backoff, and duplicate suppression on top for the
traffic that cannot tolerate loss.
"""

from repro.net.faults import FaultInjector, FaultPlan
from repro.net.message import (
    AckMessage,
    Category,
    ControlMessage,
    CupRegister,
    CupUnregister,
    KeepAliveMessage,
    LeaseRefresh,
    Message,
    PushMessage,
    QueryMessage,
    ReplyMessage,
    Subscribe,
    Substitute,
    Unsubscribe,
)
from repro.net.reliable import ReliableChannel
from repro.net.transport import Transport, TransportEvent

__all__ = [
    "AckMessage",
    "Category",
    "ControlMessage",
    "CupRegister",
    "CupUnregister",
    "FaultInjector",
    "FaultPlan",
    "KeepAliveMessage",
    "LeaseRefresh",
    "Message",
    "PushMessage",
    "QueryMessage",
    "ReliableChannel",
    "ReplyMessage",
    "Subscribe",
    "Substitute",
    "Transport",
    "TransportEvent",
    "Unsubscribe",
]
