"""Acked, retried delivery for DUP's hard-state traffic.

DUP's subscriber lists are *hard state*: a lost ``subscribe`` or
``substitute`` leaves the virtual path permanently wrong, and a lost
push starves a whole subtree until the next TTL cycle.  Under the benign
transport of the paper's evaluation that never happens; under a
:class:`~repro.net.faults.FaultPlan` it does.  This channel restores
delivery semantics the protocol can live with:

- every send is tagged with a delivery id and acknowledged by the
  receiving *engine* (one charged control hop per ack);
- an unacked delivery is retransmitted after a per-delivery timeout that
  backs off exponentially (``base_timeout * backoff ** attempt``), each
  retransmission charged honestly to the cost ledger;
- after ``retry_budget`` retransmissions the sender gives up and raises
  a *dead-peer suspicion* via ``on_give_up`` — the engine routes it into
  the existing Section III-C repair flows;
- the receiver deduplicates by delivery id, so retransmissions (and
  injected duplicates) are acked but processed at most once.

The channel is deliberately *not* used for CUP's registrations or lease
refreshes: those are soft state, kept alive by their own periodic
redundancy — exactly the contrast the paper draws between the two
designs.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.message import AckMessage, Message
from repro.net.transport import Transport
from repro.sim.core import Environment

NodeId = int
GiveUpCallback = Callable[[NodeId, NodeId, Message], None]


@dataclass
class _Pending:
    """One in-flight reliable delivery awaiting its ack."""

    destination: NodeId
    message: Message
    sender: NodeId
    hops: int
    attempts: int = field(default=0)


class ReliableChannel:
    """Ack/retry/dedup wrapper around :class:`Transport`.

    Parameters
    ----------
    env:
        The simulation environment (schedules retry timers).
    transport:
        The underlying lossy transport.
    retry_budget:
        Maximum retransmissions per delivery before giving up.
    base_timeout:
        Initial ack timeout in simulated seconds; attempt ``k`` waits
        ``base_timeout * backoff ** k``.
    backoff:
        Exponential backoff factor (>= 1).
    timeout_cap:
        Upper bound on any single retransmission timeout; attempt ``k``
        waits ``min(base_timeout * backoff ** k, timeout_cap)``.  The
        default (infinity) preserves pure exponential backoff.
    on_give_up:
        ``on_give_up(sender, destination, message)`` invoked when a
        delivery exhausts its budget — the dead-peer suspicion hook.
    functioning:
        Liveness predicate for *senders*: a node that crashed after
        transmitting must not keep retrying posthumously, so its timers
        are cancelled on expiry.
    dedup_window:
        Receiver-side memory of recently seen delivery ids.
    """

    def __init__(
        self,
        env: Environment,
        transport: Transport,
        retry_budget: int,
        base_timeout: float,
        backoff: float = 2.0,
        timeout_cap: float = math.inf,
        on_give_up: Optional[GiveUpCallback] = None,
        functioning: Optional[Callable[[NodeId], bool]] = None,
        dedup_window: int = 65536,
    ):
        if retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0, got {retry_budget}")
        if base_timeout <= 0:
            raise ValueError(f"base_timeout must be > 0, got {base_timeout}")
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {backoff}")
        if timeout_cap < base_timeout:
            raise ValueError(
                f"timeout_cap ({timeout_cap}) must be >= base_timeout "
                f"({base_timeout})"
            )
        self._env = env
        self._transport = transport
        self._budget = retry_budget
        self._base_timeout = base_timeout
        self._backoff = backoff
        self._timeout_cap = timeout_cap
        self._on_give_up = on_give_up
        self._functioning = functioning
        self._ids = itertools.count(1)
        self._pending: dict[int, _Pending] = {}
        self._seen: set[int] = set()
        self._seen_order: deque[int] = deque(maxlen=dedup_window)
        self.retries = 0
        self.acked = 0
        self.give_ups = 0
        self.acks_sent = 0
        self.duplicates_suppressed = 0

    # -- sender side ---------------------------------------------------------
    def send(
        self,
        destination: NodeId,
        message: Message,
        sender: NodeId,
        hops: int = 1,
    ) -> int:
        """Transmit with ack/retry semantics; returns the delivery id."""
        delivery_id = next(self._ids)
        message.reliable_id = delivery_id
        self._pending[delivery_id] = _Pending(
            destination=destination,
            message=message,
            sender=sender,
            hops=hops,
        )
        self._transmit(delivery_id)
        return delivery_id

    @property
    def outstanding(self) -> int:
        """Deliveries currently awaiting an ack."""
        return len(self._pending)

    def _transmit(self, delivery_id: int) -> None:
        pending = self._pending[delivery_id]
        self._transport.send(
            pending.destination,
            pending.message,
            hops=pending.hops,
            sender=pending.sender,
        )
        timeout = min(
            self._base_timeout * self._backoff**pending.attempts,
            self._timeout_cap,
        )
        self._env.call_later(
            timeout, self._expire, delivery_id, pending.attempts
        )

    def _expire(self, delivery_id: int, attempt: int) -> None:
        pending = self._pending.get(delivery_id)
        if pending is None or pending.attempts != attempt:
            return  # acked, or superseded by a newer timer
        if self._functioning is not None and not self._functioning(
            pending.sender
        ):
            # The sender itself died: its retry timers die with it.
            del self._pending[delivery_id]
            return
        if pending.attempts >= self._budget:
            del self._pending[delivery_id]
            self.give_ups += 1
            if self._on_give_up is not None:
                self._on_give_up(
                    pending.sender, pending.destination, pending.message
                )
            return
        pending.attempts += 1
        self.retries += 1
        self._transmit(delivery_id)

    def on_ack(self, destination: NodeId, ack: AckMessage) -> None:
        """An ack arrived at ``destination`` (the original sender)."""
        pending = self._pending.get(ack.acked)
        if pending is None or pending.sender != destination:
            return  # late duplicate, or ack gone astray
        del self._pending[ack.acked]
        self.acked += 1

    def drop_sender(self, node: NodeId) -> None:
        """Cancel every pending delivery transmitted by ``node``.

        Called when a node fails: a dead sender neither retries nor
        develops suspicions.
        """
        stale = [
            delivery_id
            for delivery_id, pending in self._pending.items()
            if pending.sender == node
        ]
        for delivery_id in stale:
            del self._pending[delivery_id]

    # -- receiver side -------------------------------------------------------
    def deliver(self, destination: NodeId, message: Message) -> bool:
        """Ack a reliable delivery; returns False for an already-seen one.

        The ack goes back to the message's sender (one charged control
        hop) even for duplicates — the previous ack may be the very
        thing that was lost.  The engine skips scheme dispatch when this
        returns False.
        """
        delivery_id = message.reliable_id
        origin = getattr(message, "sender", None)
        if origin is not None:
            ack = AckMessage(
                key=message.key, acked=delivery_id, sender=destination
            )
            ack.inherit_trace(message)
            self._transport.send(origin, ack, sender=destination)
            self.acks_sent += 1
        if delivery_id in self._seen:
            self.duplicates_suppressed += 1
            return False
        if (
            self._seen_order.maxlen is not None
            and len(self._seen_order) == self._seen_order.maxlen
        ):
            self._seen.discard(self._seen_order[0])
        self._seen_order.append(delivery_id)
        self._seen.add(delivery_id)
        return True
