"""Fault injection for the transport layer.

The paper's evaluation assumes a benign network: every hop is delivered
exactly once, and failures are announced to the repair machinery the
instant they happen.  Real overlays lose control traffic and discover
dead peers late — the conditions under which DUP's *hard-state* tree
(unlike CUP's soft-state registrations) must actively work to stay
consistent.  This module supplies those conditions:

- **Message loss** — each transmission is dropped with a per-category
  probability (``loss_by_category``, falling back to the global
  ``loss_rate``).  The hop is still charged: the network carried the
  message, the receiver just never saw it.
- **Duplication** — control/push/keep-alive transmissions are delivered
  twice with probability ``duplicate_rate``.  Queries and replies are
  exempt: the engine forwards those packets by mutating them in place
  (path, position), so a duplicated delivery would alias live state —
  an artifact of the simulation's object model, not of the protocol.
- **Delay jitter** — an exponential extra delay with mean
  ``extra_delay_mean`` added to every delivery.
- **Silent failures** — when ``silent_failures`` is set, the engine
  stops oracle-notifying schemes about crashes: the victim stays in the
  overlay and *blackholes* everything sent to it until some survivor
  develops a suspicion (exhausted retries, an expired lease) and
  triggers the Section III-C repair flows.
- **Partitions** — each :class:`PartitionWindow` splits the overlay
  into components for a scheduled interval.  Component membership is a
  seed-deterministic balanced split drawn from the ``faults-partition``
  stream when the window opens; every message whose sender and
  destination land in different components is dropped-but-charged (the
  packet left the sender, the cut ate it), and the window heals on
  schedule.  Partitions compose freely with loss, duplication, and
  silent failures.

All randomness comes from dedicated named streams of the simulation's
:class:`~repro.sim.rng.RandomStreams`, so fault decisions are
seed-deterministic and never perturb the streams existing runs consume
— a run with ``FaultPlan`` disabled is bit-identical to one without it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

from repro.errors import ConfigError
from repro.net.message import Category, Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.rng import RandomStreams
    from repro.stats.distributions import Distribution

NodeId = int

#: Categories whose in-flight packets are mutated while forwarding and
#: therefore must never be duplicated (see the module docstring).
_NO_DUPLICATION = (Category.QUERY, Category.REPLY)


@dataclass(frozen=True)
class PartitionWindow:
    """One scheduled network partition: split at ``start``, heal after
    ``duration``.

    The overlay is divided into ``components`` groups of (nearly) equal
    size; which node lands where is drawn from the dedicated
    ``faults-partition`` stream at split time, so the cut is
    seed-deterministic but uncorrelated with topology or workload
    randomness.  Nodes joining mid-partition are assigned a component by
    stable id hash, keeping late joiners deterministic without
    consuming stream draws.
    """

    start: float
    duration: float
    components: int = 2

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` on any invalid parameter."""
        if self.start < 0:
            raise ConfigError(
                f"partition start must be >= 0, got {self.start}"
            )
        if self.duration <= 0:
            raise ConfigError(
                f"partition duration must be positive, got {self.duration}"
            )
        if self.components < 2:
            raise ConfigError(
                f"a partition needs >= 2 components, got {self.components}"
            )

    @property
    def end(self) -> float:
        """When this window heals."""
        return self.start + self.duration


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults to inject into one run.

    Attributes
    ----------
    loss_rate:
        Probability that any transmission is lost (default 0).
    loss_by_category:
        Per-category loss probability overriding ``loss_rate``; keys are
        :class:`~repro.net.message.Category` values (``"control"``,
        ``"push"``, ...).
    duplicate_rate:
        Probability that a control/push/keep-alive transmission is
        delivered twice.
    extra_delay_mean:
        Mean of an exponential extra delay added to every delivery
        (0 disables jitter).
    silent_failures:
        Crashed nodes blackhole traffic instead of the engine
        oracle-notifying the scheme (see
        :meth:`repro.engine.simulation.Simulation.fail_silently`).
    partitions:
        Scheduled :class:`PartitionWindow` s, sorted by start time and
        non-overlapping; during each window cross-component messages are
        dropped-but-charged.
    """

    loss_rate: float = 0.0
    loss_by_category: Mapping[str, float] = field(default_factory=dict)
    duplicate_rate: float = 0.0
    extra_delay_mean: float = 0.0
    silent_failures: bool = False
    partitions: tuple[PartitionWindow, ...] = ()

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigError` on any invalid parameter."""
        known = {category.value for category in Category}
        for name, probability in (
            ("loss_rate", self.loss_rate),
            ("duplicate_rate", self.duplicate_rate),
            *(
                (f"loss_by_category[{key!r}]", value)
                for key, value in self.loss_by_category.items()
            ),
        ):
            if not 0.0 <= probability <= 1.0:
                raise ConfigError(
                    f"{name} must lie in [0, 1], got {probability}"
                )
        for key in self.loss_by_category:
            if key not in known:
                raise ConfigError(
                    f"unknown message category {key!r} in loss_by_category; "
                    f"use one of {sorted(known)}"
                )
        if self.extra_delay_mean < 0:
            raise ConfigError(
                f"extra_delay_mean must be >= 0, got {self.extra_delay_mean}"
            )
        previous_end = None
        for window in self.partitions:
            window.validate()
            if previous_end is not None and window.start < previous_end:
                raise ConfigError(
                    "partition windows must be sorted and non-overlapping; "
                    f"window at {window.start} starts before {previous_end}"
                )
            previous_end = window.end

    @property
    def enabled(self) -> bool:
        """Whether this plan injects anything at all."""
        return (
            self.loss_rate > 0
            or any(p > 0 for p in self.loss_by_category.values())
            or self.duplicate_rate > 0
            or self.extra_delay_mean > 0
            or self.silent_failures
            or bool(self.partitions)
        )

    def loss_probability(self, category: Category) -> float:
        """The loss probability applied to ``category`` transmissions."""
        return self.loss_by_category.get(category.value, self.loss_rate)


class FaultInjector:
    """Executes a :class:`FaultPlan` against the transport.

    The transport consults the injector at two points: :meth:`should_drop`
    / :meth:`should_duplicate` / :meth:`extra_delay` when a hop is sent,
    and :meth:`is_dead` when it completes — a silently failed destination
    swallows the delivery (blackhole).

    The injector is also the engine's record of *who is silently dead*:
    :meth:`mark_failed` registers a victim, and :meth:`mark_detected`
    closes the case when a survivor's suspicion triggers repair,
    returning the failure-detection latency exactly once per victim.
    """

    def __init__(
        self,
        plan: FaultPlan,
        streams: "RandomStreams",
        clock,
        recorder=None,
    ):
        self.plan = plan
        self._clock = clock
        self._recorder = recorder
        self._loss_rng = streams.get("faults-loss")
        self._dup_rng = streams.get("faults-duplicate")
        self._delay_rng = streams.get("faults-delay")
        # The partition stream is only opened when the plan schedules a
        # window, keeping partition-free runs byte-for-byte identical to
        # builds without partition support.
        self._partition_rng = (
            streams.get("faults-partition") if plan.partitions else None
        )
        self._component: dict[NodeId, int] = {}
        self._components = 0
        self._failed_at: dict[NodeId, float] = {}
        self._detected: set[NodeId] = set()
        self.injected_losses = 0
        self.injected_duplicates = 0
        self.blackholed = 0
        self.partitions_started = 0
        self.partition_drops = 0

    # -- send-time decisions ------------------------------------------------
    def should_drop(self, message: Message) -> bool:
        """Roll for loss of this transmission (counts injected losses)."""
        probability = self.plan.loss_probability(message.category)
        if probability <= 0.0:
            return False
        if self._loss_rng.random() < probability:
            self.injected_losses += 1
            return True
        return False

    def should_duplicate(self, message: Message) -> bool:
        """Roll for duplication (never for query/reply packets)."""
        if (
            self.plan.duplicate_rate <= 0.0
            or message.category in _NO_DUPLICATION
        ):
            return False
        if self._dup_rng.random() < self.plan.duplicate_rate:
            self.injected_duplicates += 1
            return True
        return False

    def extra_delay(self) -> float:
        """One draw of the configured delay jitter (0 when disabled)."""
        if self.plan.extra_delay_mean <= 0.0:
            return 0.0
        return float(self._delay_rng.exponential(self.plan.extra_delay_mean))

    def duplicate_delay(self, latency: "Distribution") -> float:
        """An independent delivery delay for a duplicated transmission."""
        return float(latency.sample(self._delay_rng)) + self.extra_delay()

    # -- partitions ---------------------------------------------------------
    def begin_partition(self, members, components: int) -> None:
        """Split ``members`` into ``components`` balanced groups.

        Assignment shuffles the sorted member list with the dedicated
        partition stream and deals it into contiguous chunks, so every
        component is non-empty whenever ``len(members) >= components``.
        """
        if self._partition_rng is None:
            raise ConfigError(
                "begin_partition on a plan with no partition windows"
            )
        order = sorted(members)
        permutation = self._partition_rng.permutation(len(order))
        self._component = {}
        chunk = max(1, -(-len(order) // components))
        for position, index in enumerate(permutation):
            self._component[order[int(index)]] = min(
                position // chunk, components - 1
            )
        self._components = components
        self.partitions_started += 1
        if self._recorder is not None:
            self._recorder.record(
                "partition-open",
                detail=f"components={components} members={len(order)}",
            )

    def heal_partition(self) -> None:
        """End the active partition; all components reconnect."""
        if self._components > 0 and self._recorder is not None:
            self._recorder.record(
                "partition-heal",
                detail=f"components={self._components}",
            )
        self._components = 0
        self._component = {}

    @property
    def partition_active(self) -> bool:
        """Whether a partition window is currently open."""
        return self._components > 0

    def component_of(self, node: NodeId) -> int:
        """The node's component under the active partition (0 if none)."""
        if self._components == 0:
            return 0
        component = self._component.get(node)
        if component is None:
            # A node that joined mid-partition: assign by stable id hash
            # so the choice is deterministic without consuming draws.
            component = node % self._components
            self._component[node] = component
        return component

    def crosses_partition(
        self, sender: Optional[NodeId], destination: NodeId
    ) -> bool:
        """Whether this hop spans the active cut (counts the drop)."""
        if self._components == 0 or sender is None:
            return False
        if self.component_of(sender) != self.component_of(destination):
            self.partition_drops += 1
            return True
        return False

    # -- silent-failure bookkeeping -----------------------------------------
    def mark_failed(self, node: NodeId) -> None:
        """Register ``node`` as silently dead from now on."""
        if node not in self._failed_at and self._recorder is not None:
            self._recorder.record("silent-fail", node=node)
        self._failed_at.setdefault(node, self._clock())

    def is_dead(self, node: NodeId) -> bool:
        """Whether ``node`` blackholes traffic."""
        return node in self._failed_at

    def note_blackholed(self) -> None:
        """Count one delivery swallowed by a dead destination."""
        self.blackholed += 1

    def failed_at(self, node: NodeId) -> Optional[float]:
        """When ``node`` silently failed (``None`` if it did not)."""
        return self._failed_at.get(node)

    def mark_detected(self, node: NodeId) -> Optional[float]:
        """Close the failure case for ``node``.

        Returns the detection latency (now minus failure time) the first
        time a given victim is reported, ``None`` on repeats or for
        nodes that never failed.
        """
        failed_at = self._failed_at.get(node)
        if failed_at is None or node in self._detected:
            return None
        self._detected.add(node)
        latency = self._clock() - failed_at
        if self._recorder is not None:
            self._recorder.record(
                "failure-detect", node=node, detail=f"latency={latency:.1f}"
            )
        return latency

    def revive(self, node: NodeId) -> None:
        """Forget a silent failure: ``node`` crash-restarted and is back.

        Used by the peer-fluctuation layer's rejoin path.  Whether the
        crash was ever detected, the case is closed without statistics:
        a node that returns on its own was not *repaired*, it recovered.
        """
        self._failed_at.pop(node, None)
        self._detected.discard(node)

    def undetected(self) -> tuple[NodeId, ...]:
        """Silently failed nodes no survivor has reported yet."""
        return tuple(
            node for node in self._failed_at if node not in self._detected
        )

    @property
    def detected_count(self) -> int:
        """Number of silent failures detected so far."""
        return len(self._detected)
