"""Per-node TTL index cache with per-entry timers.

The paper's weak-consistency model (Section I/II): "There is a
Time-To-Live (TTL) timer associated with the index.  The index will be
removed from the cache after its TTL expires."  The timer belongs to the
*cache entry* and starts when the copy is stored — each node's copy
expires ``ttl`` after that node obtained it, regardless of when the
authority issued the version.  This realizes both PCX drawbacks the paper
lists: a copy is unusable after its timer runs out even if the index never
changed, and a copy may serve *stale* data when the authority re-issued
before the timer expired.

Pushes refresh the timer (the push schemes deliver a new version one
minute before the previous one's timer would run out, so subscribers never
observe a miss).  Stores keep the newest version: an older version never
overwrites a newer one (pushes and replies can race over paths of
different latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import CacheError
from repro.index.entry import IndexVersion


@dataclass
class CacheStats:
    """Counters describing how a cache has been used."""

    lookups: int = 0
    hits: int = 0
    stores: int = 0
    refreshes: int = 0
    rejected_stale: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (``nan`` before any lookup)."""
        if self.lookups == 0:
            return float("nan")
        return self.hits / self.lookups


@dataclass(slots=True)
class CachedCopy:
    """One cached copy: a version plus this cache's own TTL timer."""

    version: IndexVersion
    stored_at: float

    @property
    def expires_at(self) -> float:
        """When this copy's timer runs out (store time + version TTL)."""
        return self.stored_at + self.version.ttl

    def is_valid(self, now: float) -> bool:
        """Whether the copy is still usable at ``now``."""
        return now < self.expires_at


class IndexCache:
    """A node's local cache of index copies, keyed by data key."""

    __slots__ = ("_entries", "stats")

    def __init__(self) -> None:
        self._entries: dict[int, CachedCopy] = {}
        self.stats = CacheStats()

    def get(self, key: int, now: float) -> Optional[IndexVersion]:
        """Return the cached valid version of ``key`` at ``now``, if any.

        Expired copies are evicted as a side effect.
        """
        stats = self.stats
        stats.lookups += 1
        copy = self._entries.get(key)
        if copy is None:
            return None
        # Inlined copy.is_valid(now): this is the hit-path check of every
        # query in the system.
        version = copy.version
        if now >= copy.stored_at + version.ttl:
            del self._entries[key]
            stats.evictions += 1
            return None
        stats.hits += 1
        return version

    def peek(self, key: int) -> Optional[CachedCopy]:
        """Return the stored copy without validity check or stats."""
        return self._entries.get(key)

    def put(self, version: IndexVersion, now: float) -> bool:
        """Store ``version``, starting (or restarting) this cache's timer.

        Returns ``True`` when the cache changed.  An older version never
        replaces a newer one; re-storing the already-cached version
        refreshes its timer (that is how pushes keep subscribers warm).
        """
        if not isinstance(version, IndexVersion):
            raise CacheError(f"not an IndexVersion: {version!r}")
        current = self._entries.get(version.key)
        if current is not None and current.is_valid(now):
            if version.version < current.version.version:
                self.stats.rejected_stale += 1
                return False
            if version.version == current.version.version:
                current.stored_at = now
                self.stats.refreshes += 1
                return True
        self._entries[version.key] = CachedCopy(version, now)
        self.stats.stores += 1
        return True

    def sweep(self, now: float) -> int:
        """Evict every expired copy in one pass; returns the count.

        The single-key engines evict lazily inside :meth:`get` (the
        check is already on the hit path); the multi-key scale engine
        holds thousands of entries per node and sweeps them together —
        one vectorized deadline comparison instead of per-key timer
        events.  Evictions are charged to stats exactly as lazy ones
        are, so a swept cache and a lazily-evicted cache agree on every
        counter the results report.
        """
        entries = self._entries
        if not entries:
            return 0
        if len(entries) <= 32:
            # Below numpy's call-overhead break-even a plain scan wins;
            # the scale engine sweeps per-node caches this small on
            # every expiry-wheel hint.
            dead = [key for key, copy in entries.items() if copy.expires_at <= now]
            for key in dead:
                del entries[key]
            self.stats.evictions += len(dead)
            return len(dead)
        keys = list(entries)
        deadlines = np.fromiter(
            (entries[key].expires_at for key in keys),
            dtype=np.float64,
            count=len(keys),
        )
        expired = np.flatnonzero(deadlines <= now)
        for index in expired:
            del entries[keys[index]]
        count = int(expired.size)
        self.stats.evictions += count
        return count

    def invalidate(self, key: int) -> bool:
        """Drop any cached copy of ``key``; returns whether one existed."""
        if key in self._entries:
            del self._entries[key]
            self.stats.evictions += 1
            return True
        return False

    def clear(self) -> None:
        """Drop everything (used when a node re-joins after failure)."""
        self.stats.evictions += len(self._entries)
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        return f"IndexCache(entries={len(self._entries)}, {self.stats})"
