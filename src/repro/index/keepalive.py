"""Keep-alive tracking of data-hosting nodes by the authority.

The system model (paper Section II-A): the node hosting the data "needs to
send keep-alive messages periodically to the authority node to deal with
node failures.  The authority node needs to update the index ... [when] it
did not receive the keep-alive message from the node for a specific amount
of time."

:class:`KeepAliveTracker` implements the authority side: it records beacon
arrival times per hosting node and reports hosts whose last beacon is older
than the timeout.  The simulation engine wires expirations to
:meth:`repro.index.authority.Authority.force_update` in the keep-alive
example/experiment.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigError
from repro.sim.core import Environment

HostDeadCallback = Callable[[int], None]


class KeepAliveTracker:
    """Tracks hosting-node liveness from periodic beacons.

    Parameters
    ----------
    env:
        Simulation environment (provides the clock and the sweep process).
    timeout:
        A host is declared dead when no beacon arrived for this long.
    check_interval:
        How often the tracker sweeps for expired hosts; defaults to the
        timeout itself.
    on_host_dead:
        Invoked once per host when it is declared dead.
    """

    def __init__(
        self,
        env: Environment,
        timeout: float,
        check_interval: Optional[float] = None,
        on_host_dead: Optional[HostDeadCallback] = None,
    ):
        if timeout <= 0:
            raise ConfigError(f"timeout must be positive, got {timeout}")
        self._env = env
        self._timeout = float(timeout)
        self._interval = float(
            timeout if check_interval is None else check_interval
        )
        if self._interval <= 0:
            raise ConfigError("check_interval must be positive")
        self._callback = on_host_dead
        self._last_seen: dict[int, float] = {}
        self._dead: set[int] = set()
        env.process(self._sweep_loop(), name="keepalive-sweeper")

    # -- beacon handling -----------------------------------------------------
    def beacon(self, host: int) -> None:
        """Record a keep-alive beacon from ``host`` at the current time.

        A beacon from a previously dead host resurrects it.
        """
        self._last_seen[host] = self._env.now
        self._dead.discard(host)

    def forget(self, host: int) -> None:
        """Stop tracking ``host`` (it de-registered cleanly)."""
        self._last_seen.pop(host, None)
        self._dead.discard(host)

    # -- queries -----------------------------------------------------------
    def is_alive(self, host: int) -> bool:
        """Whether ``host`` has beaconed within the timeout."""
        last = self._last_seen.get(host)
        if last is None:
            return False
        return (self._env.now - last) <= self._timeout and host not in self._dead

    @property
    def tracked_hosts(self) -> tuple[int, ...]:
        """All hosts with a recorded beacon (alive or dead)."""
        return tuple(self._last_seen)

    @property
    def dead_hosts(self) -> tuple[int, ...]:
        """Hosts currently declared dead."""
        return tuple(self._dead)

    # -- internals ------------------------------------------------------------
    def _expire(self) -> list[int]:
        now = self._env.now
        newly_dead = [
            host
            for host, last in self._last_seen.items()
            if host not in self._dead and now - last > self._timeout
        ]
        for host in newly_dead:
            self._dead.add(host)
            if self._callback is not None:
                self._callback(host)
        return newly_dead

    def _sweep_loop(self):
        while True:
            yield self._env.timeout(self._interval)
            self._expire()
