"""Index substrate: versioned (key, value) entries, TTL caches, authority.

An *index* maps a data key to the node(s) hosting the data.  The node
responsible for a key (its hash owner) is the key's **authority node**;
it holds the authoritative copy, rotates versions, and — under the push
schemes — disseminates new versions one minute before the previous ones
expire (paper Section IV).  Cached copies follow the weak-consistency TTL
model: a copy of version ``v`` is valid until ``issued_at(v) + TTL``
regardless of where it is cached.
"""

from repro.index.authority import Authority
from repro.index.cache import CacheStats, IndexCache
from repro.index.entry import IndexVersion
from repro.index.keepalive import KeepAliveTracker
from repro.index.registry import HostRegistry

__all__ = [
    "Authority",
    "CacheStats",
    "HostRegistry",
    "IndexCache",
    "IndexVersion",
    "KeepAliveTracker",
]
