"""The authority's host registry: what the index actually maps to.

Paper Section II-A: "The value in the pair indicates the nodes that host
the data corresponding to the key.  ...  Data is inserted or removed from
nodes in the network from time to time ...  When such a change happens,
the node that hosts the data should inform the authority node.  It also
needs to send keep-alive messages periodically to the authority node to
deal with node failures.  The authority node needs to update the index
whenever it receives update messages or considers the node hosting the
data is dead."

:class:`HostRegistry` implements that loop: explicit register/unregister
messages and keep-alive beacons maintain the live host set, and every
change to the set re-issues the index through
:meth:`repro.index.authority.Authority.force_update` — which the push
schemes then disseminate.
"""

from __future__ import annotations

from typing import Optional

from repro.index.authority import Authority
from repro.index.keepalive import KeepAliveTracker
from repro.sim.core import Environment

NodeId = int


class HostRegistry:
    """Tracks the hosting nodes behind one key's index.

    Parameters
    ----------
    env:
        Simulation environment.
    authority:
        The key's authority; re-issues the index on every host change.
    keepalive_timeout:
        A host missing beacons for this long is declared dead and
        removed (triggering a re-issue).
    check_interval:
        Keep-alive sweep cadence (defaults to the timeout).
    """

    def __init__(
        self,
        env: Environment,
        authority: Authority,
        keepalive_timeout: float = 600.0,
        check_interval: Optional[float] = None,
    ):
        self._env = env
        self._authority = authority
        self._hosts: set[NodeId] = set()
        self._updates = 0
        self._tracker = KeepAliveTracker(
            env,
            timeout=keepalive_timeout,
            check_interval=check_interval,
            on_host_dead=self._host_died,
        )

    # -- host-facing API -----------------------------------------------------
    def register_host(self, host: NodeId) -> bool:
        """A node announces it now hosts the data; returns whether new.

        Registration counts as a beacon.
        """
        self._tracker.beacon(host)
        if host in self._hosts:
            return False
        self._hosts.add(host)
        self._reissue()
        return True

    def unregister_host(self, host: NodeId) -> bool:
        """A node announces it dropped the data; returns whether known."""
        self._tracker.forget(host)
        if host not in self._hosts:
            return False
        self._hosts.discard(host)
        self._reissue()
        return True

    def beacon(self, host: NodeId) -> None:
        """Periodic keep-alive from a hosting node.

        A beacon from an unknown host implicitly (re-)registers it — the
        common recovery after an authority change lost the registry.
        """
        if host not in self._hosts:
            self.register_host(host)
        else:
            self._tracker.beacon(host)

    # -- state -----------------------------------------------------------------
    @property
    def hosts(self) -> frozenset[NodeId]:
        """The currently registered live hosts."""
        return frozenset(self._hosts)

    @property
    def update_count(self) -> int:
        """How many times host churn re-issued the index."""
        return self._updates

    def current_value(self) -> tuple[NodeId, ...]:
        """The value the index carries: the sorted live host set."""
        return tuple(sorted(self._hosts))

    # -- internals ----------------------------------------------------------
    def _host_died(self, host: NodeId) -> None:
        if host in self._hosts:
            self._hosts.discard(host)
            self._reissue()

    def _reissue(self) -> None:
        self._updates += 1
        self._authority.force_update(value=self.current_value())
