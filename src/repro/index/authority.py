"""The authority node's version life-cycle.

The authority node owns a key's (key, value) mapping.  Its copy never
expires; everyone else holds TTL-limited copies.  The paper's simulation
rotates versions on a fixed schedule: "the root pushes the updated index to
interested nodes exactly one minute before the previous index expires" —
i.e. version ``v+1`` is issued at ``expires_at(v) - push_lead``.

:class:`Authority` drives that schedule as a simulation process and invokes
a callback on every new version; push schemes hook their propagation there,
PCX simply refreshes the root's copy.  Out-of-schedule re-issues (e.g. a
hosting node declared dead by the keep-alive tracker) are supported via
:meth:`force_update`.

The authority is the root of the index search tree — a single point of
failure the paper never exercises.  This module also provides the
failover side: :meth:`Authority.state` snapshots everything a successor
needs (:class:`AuthorityState`), and :class:`StandbyPool` tracks the k
standby nodes that state is replicated to, watches authority liveness
through the replication/heartbeat stream (the same keep-alive idea as
:class:`repro.index.keepalive.KeepAliveTracker`), and promotes the first
functioning standby when the authority goes silent *and* has actually
crashed — a standby merely cut off by a partition waits the window out
rather than split-braining the tree (see docs/robustness.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.errors import ConfigError
from repro.index.entry import IndexVersion
from repro.sim.core import Environment

NodeId = int
VersionCallback = Callable[[IndexVersion], None]


@dataclass(frozen=True)
class AuthorityState:
    """Replicated authority state a standby needs to take over.

    ``next_version`` is the version counter *after* the last issue the
    standby saw; ``replicated_at`` dates the snapshot so a promoting
    standby can bump past issues that were lost with the old root.
    """

    key: int
    next_version: int
    value: object
    replicated_at: float


class Authority:
    """Owns one key's index and rotates its versions.

    Parameters
    ----------
    env:
        Simulation environment.
    key:
        The data key this authority is responsible for.
    ttl:
        Version lifetime (paper default: 3600 s).
    push_lead:
        How long before the current version's expiry the next version is
        issued (paper default: 60 s).
    on_new_version:
        Called with every newly issued :class:`IndexVersion`, including
        the initial one.
    value:
        The mapped value carried by every version (defaults to the key's
        hosting-node id in examples; opaque here).
    initial_version:
        Version number of the first issue.  0 for a fresh authority; a
        promoted standby passes its catch-up estimate so version numbers
        stay monotone across failovers.
    min_issue_gap:
        Overload protection: the minimum simulated time between
        *forced* issues.  :meth:`force_update` calls arriving within
        the gap of the previous issue are coalesced into one deferred
        issue at the gap boundary — an update storm collapses to one
        version per gap instead of one push fan-out per call.  ``0``
        (the default) disables coalescing and keeps the authority
        bit-identical to a build without the knob.
    """

    def __init__(
        self,
        env: Environment,
        key: int,
        ttl: float = 3600.0,
        push_lead: float = 60.0,
        on_new_version: Optional[VersionCallback] = None,
        value: object = None,
        initial_version: int = 0,
        min_issue_gap: float = 0.0,
    ):
        if ttl <= 0:
            raise ConfigError(f"ttl must be positive, got {ttl}")
        if not 0 <= push_lead < ttl:
            raise ConfigError(
                f"push_lead must lie in [0, ttl); got {push_lead} vs {ttl}"
            )
        if initial_version < 0:
            raise ConfigError(
                f"initial_version must be >= 0, got {initial_version}"
            )
        if min_issue_gap < 0:
            raise ConfigError(
                f"min_issue_gap must be >= 0, got {min_issue_gap}"
            )
        self._env = env
        self._key = key
        self._ttl = float(ttl)
        self._push_lead = float(push_lead)
        self._callback = on_new_version
        self._value = value
        self._current: Optional[IndexVersion] = None
        self._next_version = int(initial_version)
        self._stopped = False
        self._min_issue_gap = float(min_issue_gap)
        self._last_issue_at: Optional[float] = None
        self._flush_pending = False
        #: Forced updates absorbed by coalescing (never individually
        #: issued); the overload experiment's "duplicate pushes shed at
        #: the source" counter.
        self.coalesced_updates = 0
        self._process = env.process(self._refresh_loop(), name=f"authority-{key}")

    # -- public API ----------------------------------------------------------
    @property
    def key(self) -> int:
        """The key this authority owns."""
        return self._key

    @property
    def current(self) -> IndexVersion:
        """The authoritative (never expiring at the root) current version."""
        if self._current is None:
            raise RuntimeError("authority not started yet")
        return self._current

    @property
    def refresh_interval(self) -> float:
        """Time between consecutive version issues (= ttl - push_lead)."""
        return self._ttl - self._push_lead

    def force_update(self, value: object = None) -> IndexVersion:
        """Issue a new version immediately (out-of-schedule update).

        Used when the hosting node changes or is declared dead; the
        regular schedule continues relative to the new version.  With
        ``min_issue_gap`` set, calls arriving within the gap of the
        previous issue coalesce: the newest value wins and a single
        deferred issue fires at the gap boundary (the version returned
        is then the still-current one).
        """
        if self._stopped:
            raise RuntimeError("authority is stopped")
        if value is not None:
            self._value = value
        if self._min_issue_gap > 0 and self._last_issue_at is not None:
            elapsed = self._env.now - self._last_issue_at
            if elapsed < self._min_issue_gap:
                self.coalesced_updates += 1
                if not self._flush_pending:
                    self._flush_pending = True
                    self._env.call_later(
                        self._min_issue_gap - elapsed, self._flush_forced
                    )
                return self.current
        version = self._issue()
        self._process.interrupt("reschedule")
        return version

    def _flush_forced(self) -> None:
        """Deferred issue absorbing a burst of coalesced force_updates."""
        self._flush_pending = False
        if self._stopped:
            return
        self._issue()
        self._process.interrupt("reschedule")

    def stop(self) -> None:
        """Halt version rotation permanently (the authority crashed).

        Idempotent.  A stopped authority issues nothing further; a
        promoted standby builds a fresh :class:`Authority` from the
        replicated :class:`AuthorityState` instead of reviving this one.
        """
        if self._stopped:
            return
        self._stopped = True
        self._process.interrupt("stop")

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has been called."""
        return self._stopped

    def state(self) -> AuthorityState:
        """Snapshot the state a standby needs to take over."""
        return AuthorityState(
            key=self._key,
            next_version=self._next_version,
            value=self._value,
            replicated_at=self._env.now,
        )

    # -- internals ------------------------------------------------------------
    def _issue(self) -> IndexVersion:
        version = IndexVersion(
            key=self._key,
            version=self._next_version,
            issued_at=self._env.now,
            ttl=self._ttl,
            value=self._value,
        )
        self._next_version += 1
        self._current = version
        self._last_issue_at = self._env.now
        if self._callback is not None:
            self._callback(version)
        return version

    def _refresh_loop(self):
        from repro.sim.core import Interrupt

        self._issue()
        while True:
            wait = self.refresh_interval
            try:
                yield self._env.timeout(wait)
            except Interrupt:
                if self._stopped:
                    return
                # force_update already issued a fresh version; restart the
                # countdown from it.
                continue
            if self._stopped:
                return
            self._issue()


class StandbyPool:
    """Tracks the authority's k standbys and decides when one promotes.

    The engine replicates every issued version's :class:`AuthorityState`
    to each standby and sends heartbeats between issues; both arrivals
    funnel into :meth:`record_state` / :meth:`record_heartbeat`, which
    refresh the standby's ``last_heard`` clock.  A watch process (run by
    the engine at a quarter of ``failover_timeout``) calls
    :meth:`check`; once *every* functioning standby has been starved for
    ``failover_timeout``, the pool asks :meth:`promote` for a successor.

    Promotion is gated on the authority having actually crashed
    (``functioning(root)`` false): a standby starved only by a partition
    never promotes, because this simulation models a single logical
    authority and cannot represent the resulting split brain.  The
    ``force`` flag bypasses the gate for oracle-immediate crash paths
    where the engine knows the root is gone before marking it so.
    """

    def __init__(
        self,
        env: Environment,
        standbys: Sequence[NodeId],
        failover_timeout: float,
        recorder=None,
    ):
        if not standbys:
            raise ConfigError("StandbyPool needs at least one standby")
        if failover_timeout <= 0:
            raise ConfigError(
                f"failover_timeout must be positive, got {failover_timeout}"
            )
        self._env = env
        self._recorder = recorder
        self._ranked: tuple[NodeId, ...] = tuple(standbys)
        self._timeout = float(failover_timeout)
        self._last_heard: dict[NodeId, float] = {
            node: env.now for node in self._ranked
        }
        self._state: dict[NodeId, AuthorityState] = {}
        self._promoted: Optional[NodeId] = None
        self.replications = 0
        self.heartbeats = 0

    # -- public API ----------------------------------------------------------
    @property
    def standbys(self) -> tuple[NodeId, ...]:
        """The standbys in promotion-preference order."""
        return self._ranked

    @property
    def promoted(self) -> Optional[NodeId]:
        """The standby that took over, if failover has happened."""
        return self._promoted

    @property
    def failover_timeout(self) -> float:
        """How long a standby tolerates authority silence."""
        return self._timeout

    def record_state(self, standby: NodeId, state: AuthorityState) -> None:
        """A replication message reached ``standby``."""
        if standby not in self._last_heard:
            return
        self._state[standby] = state
        self._last_heard[standby] = self._env.now
        self.replications += 1

    def record_heartbeat(self, standby: NodeId) -> None:
        """A heartbeat reached ``standby``."""
        if standby not in self._last_heard:
            return
        self._last_heard[standby] = self._env.now
        self.heartbeats += 1

    def state_at(self, standby: NodeId) -> Optional[AuthorityState]:
        """The last state ``standby`` saw (``None`` before replication)."""
        return self._state.get(standby)

    def starved(self, functioning) -> bool:
        """Whether every functioning standby has hit the silence timeout."""
        if self._promoted is not None:
            return False
        now = self._env.now
        alive = [n for n in self._ranked if functioning(n)]
        if not alive:
            return False
        return all(
            now - self._last_heard[n] >= self._timeout for n in alive
        )

    def promote(self, functioning, force: bool = False) -> Optional[NodeId]:
        """Choose the successor: the first functioning ranked standby.

        Returns ``None`` (and promotes nobody) when failover already
        happened or no functioning standby holds replicated state.
        ``force`` is for oracle crash paths; without it the caller is
        expected to have verified the authority is dead (see class
        docstring).
        """
        if self._promoted is not None:
            return None
        for node in self._ranked:
            if functioning(node) and node in self._state:
                self._promoted = node
                if self._recorder is not None:
                    self._recorder.record(
                        "failover-promotion", node=node, detail="replicated"
                    )
                return node
        if force:
            # Desperation: promote a functioning standby even without a
            # replica on record — it restarts versioning from scratch.
            for node in self._ranked:
                if functioning(node):
                    self._promoted = node
                    if self._recorder is not None:
                        self._recorder.record(
                            "failover-promotion",
                            node=node,
                            detail="desperation",
                        )
                    return node
        return None
