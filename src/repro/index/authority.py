"""The authority node's version life-cycle.

The authority node owns a key's (key, value) mapping.  Its copy never
expires; everyone else holds TTL-limited copies.  The paper's simulation
rotates versions on a fixed schedule: "the root pushes the updated index to
interested nodes exactly one minute before the previous index expires" —
i.e. version ``v+1`` is issued at ``expires_at(v) - push_lead``.

:class:`Authority` drives that schedule as a simulation process and invokes
a callback on every new version; push schemes hook their propagation there,
PCX simply refreshes the root's copy.  Out-of-schedule re-issues (e.g. a
hosting node declared dead by the keep-alive tracker) are supported via
:meth:`force_update`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigError
from repro.index.entry import IndexVersion
from repro.sim.core import Environment

VersionCallback = Callable[[IndexVersion], None]


class Authority:
    """Owns one key's index and rotates its versions.

    Parameters
    ----------
    env:
        Simulation environment.
    key:
        The data key this authority is responsible for.
    ttl:
        Version lifetime (paper default: 3600 s).
    push_lead:
        How long before the current version's expiry the next version is
        issued (paper default: 60 s).
    on_new_version:
        Called with every newly issued :class:`IndexVersion`, including
        the initial one.
    value:
        The mapped value carried by every version (defaults to the key's
        hosting-node id in examples; opaque here).
    """

    def __init__(
        self,
        env: Environment,
        key: int,
        ttl: float = 3600.0,
        push_lead: float = 60.0,
        on_new_version: Optional[VersionCallback] = None,
        value: object = None,
    ):
        if ttl <= 0:
            raise ConfigError(f"ttl must be positive, got {ttl}")
        if not 0 <= push_lead < ttl:
            raise ConfigError(
                f"push_lead must lie in [0, ttl); got {push_lead} vs {ttl}"
            )
        self._env = env
        self._key = key
        self._ttl = float(ttl)
        self._push_lead = float(push_lead)
        self._callback = on_new_version
        self._value = value
        self._current: Optional[IndexVersion] = None
        self._next_version = 0
        self._process = env.process(self._refresh_loop(), name=f"authority-{key}")

    # -- public API ----------------------------------------------------------
    @property
    def key(self) -> int:
        """The key this authority owns."""
        return self._key

    @property
    def current(self) -> IndexVersion:
        """The authoritative (never expiring at the root) current version."""
        if self._current is None:
            raise RuntimeError("authority not started yet")
        return self._current

    @property
    def refresh_interval(self) -> float:
        """Time between consecutive version issues (= ttl - push_lead)."""
        return self._ttl - self._push_lead

    def force_update(self, value: object = None) -> IndexVersion:
        """Issue a new version immediately (out-of-schedule update).

        Used when the hosting node changes or is declared dead; the
        regular schedule continues relative to the new version.
        """
        if value is not None:
            self._value = value
        version = self._issue()
        self._process.interrupt("reschedule")
        return version

    # -- internals ------------------------------------------------------------
    def _issue(self) -> IndexVersion:
        version = IndexVersion(
            key=self._key,
            version=self._next_version,
            issued_at=self._env.now,
            ttl=self._ttl,
            value=self._value,
        )
        self._next_version += 1
        self._current = version
        if self._callback is not None:
            self._callback(version)
        return version

    def _refresh_loop(self):
        from repro.sim.core import Interrupt

        self._issue()
        while True:
            wait = self.refresh_interval
            try:
                yield self._env.timeout(wait)
            except Interrupt:
                # force_update already issued a fresh version; restart the
                # countdown from it.
                continue
            self._issue()
