"""Versioned index entries with absolute expiry times.

The paper's weak-consistency model attaches the TTL to the index *version*,
not to the cache fill: a copy cached half-way through a version's life is
only valid for the remaining half.  This realizes both PCX drawbacks the
paper lists (a copy is unusable after TTL expiry even if unchanged, and a
copy may be stale before expiry if the authority updated early).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class IndexVersion:
    """One immutable version of an index entry.

    Attributes
    ----------
    key:
        The data key this index maps.
    version:
        Monotonically increasing version number (per key).
    issued_at:
        Simulation time the authority issued this version.
    ttl:
        Lifetime; every copy of this version expires at
        ``issued_at + ttl``.
    value:
        The mapped value — in the paper, the address of the node hosting
        the data.
    """

    key: int
    version: int
    issued_at: float
    ttl: float
    value: Any = None

    def __post_init__(self) -> None:
        if self.ttl <= 0:
            raise ValueError(f"ttl must be positive, got {self.ttl}")
        if self.version < 0:
            raise ValueError(f"version must be >= 0, got {self.version}")

    @property
    def expires_at(self) -> float:
        """Absolute expiry time of every copy of this version."""
        return self.issued_at + self.ttl

    def is_valid(self, now: float) -> bool:
        """Whether a copy of this version is still usable at time ``now``."""
        return now < self.expires_at

    def remaining(self, now: float) -> float:
        """Remaining lifetime at ``now`` (clamped at 0)."""
        return max(0.0, self.expires_at - now)

    def newer_than(self, other: "IndexVersion | None") -> bool:
        """Whether this version supersedes ``other`` (``None`` counts)."""
        if other is None:
            return True
        if other.key != self.key:
            raise ValueError(
                f"cannot compare versions of keys {self.key} and {other.key}"
            )
        return self.version > other.version
