"""Command-line interface: ``repro-dup``.

Subcommands:

- ``repro-dup list`` — show available experiments and schemes.
- ``repro-dup run EXPERIMENT`` — regenerate a paper table/figure (or an
  ablation) and print the rows plus the shape checks.
- ``repro-dup simulate`` — one ad-hoc simulation with explicit
  parameters, printing the metrics report (``--trace-out`` /
  ``--metrics-out`` export JSONL traces and registry snapshots).
- ``repro-dup observe`` — an instrumented run: per-query tracing plus
  periodic metric snapshots, exported as JSONL, with a tail-latency and
  hop-attribution summary printed at the end.
- ``repro-dup trace`` — synthesize a reusable query trace, or replay a
  saved one against a scheme.
- ``repro-dup chaos`` — replay a named chaos scenario (partitions,
  authority crash, failover, consistency auditor) against a scheme;
  ``repro-dup chaos --list`` shows the stock scenarios.
- ``repro-dup top`` — render a sweep telemetry stream (written by
  ``run --telemetry-out``) as a one-screen progress dashboard.
  ``simulate`` and ``chaos`` take ``--flight-out`` (protocol flight
  recorder dump) and ``--telemetry-out`` (tree-evolution timeline).
- ``repro-dup profile`` — run an experiment under :mod:`cProfile`
  (serial, ``workers=1``) and print the hottest functions; the raw
  profile can be dumped for ``snakeviz``/``pstats`` with ``--out``.

Examples
--------
::

    repro-dup list
    repro-dup run figure4 --scale bench --replications 2
    repro-dup profile figure4 --top 20
    repro-dup profile table2 --scale quick --sort tottime --out prof.bin
    repro-dup run table3 --scale paper          # hours, full fidelity
    repro-dup run partition --scale smoke --replications 1
    repro-dup simulate --scheme dup --nodes 2048 --rate 10 --duration 36000
    repro-dup simulate --scheme dup --trace-out traces.jsonl
    repro-dup observe --scheme dup --nodes 512 --duration 14400
    repro-dup trace make workload.trace --nodes 512 --rate 5
    repro-dup trace replay workload.trace --scheme dup --nodes 512
    repro-dup chaos --list
    repro-dup chaos blackout --scheme dup --retry-budget 4 --lease-ttl 300
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.engine import SimulationConfig, run_simulation
from repro.experiments import get_experiment, list_experiments
from repro.experiments.spec import ExperimentResult
from repro.schemes import available_schemes


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dup",
        description=(
            "Reproduction of 'DUP: Dynamic-tree Based Update Propagation "
            "in Peer-to-Peer Networks' (Yin & Cao, ICDE 2005)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list experiments and schemes")

    run_parser = subparsers.add_parser(
        "run", help="regenerate a paper table/figure or ablation"
    )
    run_parser.add_argument(
        "experiment",
        help=f"one of: {', '.join(list_experiments())}",
    )
    run_parser.add_argument(
        "--scale",
        default="bench",
        choices=("smoke", "quick", "bench", "paper"),
        help=(
            "parameter scale (default: bench; 'smoke' is a CI-sized "
            "variant supported by the resilience study)"
        ),
    )
    run_parser.add_argument(
        "--replications", type=int, default=2, help="seeds per data point"
    )
    run_parser.add_argument("--seed", type=int, default=1, help="root seed")
    run_parser.add_argument(
        "--workers",
        default="auto",
        metavar="N",
        help=(
            "worker processes for the trial fan-out: an integer or 'auto' "
            "(default) for one per core; results are bit-identical for "
            "every worker count, and --workers 1 runs the serial path"
        ),
    )
    run_parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help=(
            "stream structured per-trial progress events as JSONL to "
            "PATH (render live with 'repro-dup top PATH')"
        ),
    )
    run_parser.add_argument(
        "--keep-going",
        action="store_true",
        help=(
            "continue past failing trials/experiments and print a "
            "per-experiment failure table at the end ('all' only "
            "continues to the next experiment)"
        ),
    )

    sim_parser = subparsers.add_parser(
        "simulate", help="run one ad-hoc simulation"
    )
    sim_parser.add_argument(
        "--scheme", default="dup", choices=available_schemes()
    )
    sim_parser.add_argument("--nodes", type=int, default=1024)
    sim_parser.add_argument("--degree", type=int, default=4)
    sim_parser.add_argument(
        "--rate", type=float, default=1.0, help="queries/second network-wide"
    )
    sim_parser.add_argument(
        "--arrival", default="exponential", choices=("exponential", "pareto")
    )
    sim_parser.add_argument("--pareto-alpha", type=float, default=1.05)
    sim_parser.add_argument("--theta", type=float, default=0.95)
    sim_parser.add_argument("--threshold", type=int, default=6)
    sim_parser.add_argument("--ttl", type=float, default=3600.0)
    sim_parser.add_argument("--duration", type=float, default=3600.0 * 6)
    sim_parser.add_argument("--warmup", type=float, default=3600.0 * 2)
    sim_parser.add_argument(
        "--topology",
        default="random-tree",
        choices=("random-tree", "chord", "can", "balanced", "chain", "star"),
    )
    sim_parser.add_argument("--seed", type=int, default=1)
    sim_parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="enable per-query tracing and export JSONL traces to PATH",
    )
    sim_parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="export periodic metric-registry snapshots as JSONL to PATH",
    )
    sim_parser.add_argument(
        "--snapshot-interval",
        type=float,
        default=600.0,
        help="simulated seconds between registry snapshots (default: 600)",
    )
    sim_parser.add_argument(
        "--churn-rate",
        type=float,
        default=0.0,
        help=(
            "network-wide join and leave rate in events/second "
            "(0 disables churn; failures stay off)"
        ),
    )
    _add_fault_arguments(sim_parser)
    _add_overload_arguments(sim_parser)
    _add_fluctuation_arguments(sim_parser)
    _add_interest_arguments(sim_parser)
    _add_telemetry_arguments(sim_parser)

    observe_parser = subparsers.add_parser(
        "observe", help="run one fully instrumented simulation"
    )
    observe_parser.add_argument(
        "--scheme", default="dup", choices=available_schemes()
    )
    observe_parser.add_argument("--nodes", type=int, default=512)
    observe_parser.add_argument("--degree", type=int, default=4)
    observe_parser.add_argument("--rate", type=float, default=1.0)
    observe_parser.add_argument("--theta", type=float, default=0.95)
    observe_parser.add_argument("--threshold", type=int, default=6)
    observe_parser.add_argument("--ttl", type=float, default=3600.0)
    observe_parser.add_argument("--duration", type=float, default=3600.0 * 4)
    observe_parser.add_argument("--warmup", type=float, default=3600.0)
    observe_parser.add_argument(
        "--topology",
        default="random-tree",
        choices=("random-tree", "chord", "can", "balanced", "chain", "star"),
    )
    observe_parser.add_argument("--seed", type=int, default=1)
    observe_parser.add_argument(
        "--trace-out", default="traces.jsonl", metavar="PATH"
    )
    observe_parser.add_argument(
        "--metrics-out", default="metrics.jsonl", metavar="PATH"
    )
    observe_parser.add_argument(
        "--snapshot-interval", type=float, default=600.0
    )
    observe_parser.add_argument(
        "--top",
        type=int,
        default=5,
        help="slowest traces to print (default: 5)",
    )
    _add_fault_arguments(observe_parser)

    trace_parser = subparsers.add_parser(
        "trace", help="synthesize or replay a query trace"
    )
    trace_parser.add_argument("action", choices=("make", "replay"))
    trace_parser.add_argument("path", help="trace file path")
    trace_parser.add_argument("--scheme", default="dup",
                              choices=available_schemes())
    trace_parser.add_argument("--nodes", type=int, default=512)
    trace_parser.add_argument("--rate", type=float, default=1.0)
    trace_parser.add_argument("--duration", type=float, default=3600.0 * 5)
    trace_parser.add_argument("--theta", type=float, default=0.95)
    trace_parser.add_argument(
        "--arrival", default="exponential", choices=("exponential", "pareto")
    )
    trace_parser.add_argument("--seed", type=int, default=1)

    chaos_parser = subparsers.add_parser(
        "chaos", help="replay a named chaos scenario"
    )
    chaos_parser.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="scenario name (omit or use --list to see them)",
    )
    chaos_parser.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="list the stock scenarios and exit",
    )
    chaos_parser.add_argument(
        "--scheme", default="dup", choices=available_schemes()
    )
    chaos_parser.add_argument("--nodes", type=int, default=64)
    chaos_parser.add_argument("--degree", type=int, default=4)
    chaos_parser.add_argument(
        "--rate", type=float, default=3.0, help="queries/second network-wide"
    )
    chaos_parser.add_argument("--theta", type=float, default=0.95)
    chaos_parser.add_argument("--threshold", type=int, default=6)
    chaos_parser.add_argument("--ttl", type=float, default=600.0)
    chaos_parser.add_argument("--push-lead", type=float, default=60.0)
    chaos_parser.add_argument("--duration", type=float, default=3600.0)
    chaos_parser.add_argument("--warmup", type=float, default=900.0)
    chaos_parser.add_argument(
        "--topology",
        default="random-tree",
        choices=("random-tree", "chord", "can", "balanced", "chain", "star"),
    )
    chaos_parser.add_argument("--seed", type=int, default=1)
    _add_fault_arguments(chaos_parser)
    _add_overload_arguments(chaos_parser)
    _add_fluctuation_arguments(chaos_parser)
    _add_interest_arguments(chaos_parser)
    _add_telemetry_arguments(chaos_parser)

    top_parser = subparsers.add_parser(
        "top", help="render a sweep telemetry stream as a dashboard"
    )
    top_parser.add_argument(
        "path", help="telemetry JSONL file (from run --telemetry-out)"
    )
    top_parser.add_argument(
        "--tail",
        type=int,
        default=5,
        help="recent trials to list (default: 5)",
    )

    profile_parser = subparsers.add_parser(
        "profile", help="profile an experiment run under cProfile"
    )
    profile_parser.add_argument(
        "experiment",
        help=f"one of: {', '.join(list_experiments())}",
    )
    profile_parser.add_argument(
        "--scale",
        default="quick",
        choices=("smoke", "quick", "bench", "paper"),
        help="parameter scale (default: quick)",
    )
    profile_parser.add_argument(
        "--replications", type=int, default=1, help="seeds per data point"
    )
    profile_parser.add_argument(
        "--seed", type=int, default=1, help="root seed"
    )
    profile_parser.add_argument(
        "--top",
        type=int,
        default=20,
        help="number of functions to print (default: 20)",
    )
    profile_parser.add_argument(
        "--sort",
        default="cumulative",
        choices=("cumulative", "tottime", "calls"),
        help="pstats sort key (default: cumulative)",
    )
    profile_parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also dump the raw profile (pstats format) to PATH",
    )
    profile_parser.add_argument(
        "--nodes",
        type=int,
        default=None,
        help=(
            "override the population size (scale experiment only; "
            "e.g. --nodes 100000 for the 10^5-node tier)"
        ),
    )
    profile_parser.add_argument(
        "--keys",
        type=int,
        default=None,
        help="override the key count (scale experiment only)",
    )
    return parser


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """Flight-recorder / timeline flags shared by simulate and chaos."""
    group = parser.add_argument_group("telemetry")
    group.add_argument(
        "--flight-out",
        default=None,
        metavar="PATH",
        help=(
            "arm the protocol flight recorder and dump its event ring "
            "as JSONL to PATH after the run"
        ),
    )
    group.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help=(
            "sample the tree-evolution timeline and export the windowed "
            "series as JSONL to PATH"
        ),
    )
    group.add_argument(
        "--timeline-window",
        type=float,
        default=600.0,
        help="simulated seconds per timeline window (default: 600)",
    )


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    """Resilience flags shared by ``simulate`` and ``observe``."""
    group = parser.add_argument_group("resilience")
    group.add_argument(
        "--loss-rate",
        type=float,
        default=0.0,
        help="probability each transmission is lost (default: 0)",
    )
    group.add_argument(
        "--duplicate-rate",
        type=float,
        default=0.0,
        help="probability a control/push hop is delivered twice (default: 0)",
    )
    group.add_argument(
        "--silent-failures",
        action="store_true",
        help=(
            "crashed nodes blackhole traffic until suspected instead of "
            "being oracle-announced to the scheme"
        ),
    )
    group.add_argument(
        "--retry-budget",
        type=int,
        default=0,
        help=(
            "retransmissions per reliable delivery for hard-state "
            "schemes (0 disables the reliable channel)"
        ),
    )
    group.add_argument(
        "--ack-timeout",
        type=float,
        default=2.0,
        help="initial ack timeout in simulated seconds (default: 2)",
    )
    group.add_argument(
        "--retry-timeout-cap",
        type=float,
        default=0.0,
        help=(
            "ceiling on the exponential retry backoff in simulated "
            "seconds (0: uncapped)"
        ),
    )
    group.add_argument(
        "--lease-ttl",
        type=float,
        default=0.0,
        help="lease duration for DUP subscriptions (0 disables leases)",
    )
    group.add_argument(
        "--partition-at",
        type=float,
        default=0.0,
        help="open a network partition at this simulated time (0: none)",
    )
    group.add_argument(
        "--partition-duration",
        type=float,
        default=300.0,
        help="how long the partition lasts before healing (default: 300)",
    )
    group.add_argument(
        "--partition-components",
        type=int,
        default=2,
        help="how many components the partition splits into (default: 2)",
    )
    group.add_argument(
        "--standbys",
        type=int,
        default=0,
        help=(
            "authority standbys receiving replicated version state "
            "(0 disables replication and failover)"
        ),
    )
    group.add_argument(
        "--failover-timeout",
        type=float,
        default=120.0,
        help=(
            "authority silence a standby tolerates before promoting "
            "itself (default: 120)"
        ),
    )
    group.add_argument(
        "--authority-crash-at",
        type=float,
        default=0.0,
        help=(
            "deliberately crash the authority at this simulated time "
            "(0: never; needs --standbys >= 1)"
        ),
    )
    group.add_argument(
        "--audit-interval",
        type=float,
        default=0.0,
        help=(
            "cadence of the runtime consistency auditor (0 disables; "
            "DUP-family schemes only)"
        ),
    )


def _add_overload_arguments(parser: argparse.ArgumentParser) -> None:
    """Overload-layer / storm flags shared by ``simulate`` and ``chaos``."""
    group = parser.add_argument_group("overload")
    group.add_argument(
        "--service-rate",
        type=float,
        default=0.0,
        help=(
            "per-node message service rate in messages/second; enables "
            "the bounded priority inboxes (0 keeps the instant-service "
            "model and the whole overload layer off)"
        ),
    )
    group.add_argument(
        "--inbox-capacity",
        type=int,
        default=64,
        help="queued messages per node inbox (default: 64)",
    )
    group.add_argument(
        "--max-subscribers",
        type=int,
        default=0,
        help=(
            "graceful-degradation fanout cap: DUP interior nodes refuse "
            "fresh subscribers past this many branches, CUP caps its "
            "registration tables (0: uncapped)"
        ),
    )
    group.add_argument(
        "--breaker-threshold",
        type=int,
        default=0,
        help=(
            "consecutive delivery failures before a per-peer circuit "
            "breaker trips (0 disables breakers)"
        ),
    )
    group.add_argument(
        "--breaker-cooldown",
        type=float,
        default=60.0,
        help=(
            "seconds an open breaker waits before its half-open probe "
            "(default: 60)"
        ),
    )
    group.add_argument(
        "--coalesce-gap",
        type=float,
        default=0.0,
        help=(
            "minimum gap between forced authority updates; faster "
            "force_update calls coalesce into one deferred issue "
            "(0 disables)"
        ),
    )
    group.add_argument(
        "--storm",
        action="append",
        default=None,
        metavar="KIND",
        choices=("flash-crowd", "update-storm", "thrash"),
        help=(
            "inject an overload storm phase (repeatable); shaped by the "
            "--storm-* flags, which apply to every phase"
        ),
    )
    group.add_argument(
        "--storm-start",
        type=float,
        default=0.0,
        help="storm phase onset in simulated seconds (default: warmup)",
    )
    group.add_argument(
        "--storm-duration",
        type=float,
        default=0.0,
        help=(
            "storm phase length in simulated seconds (default: the "
            "post-warmup window)"
        ),
    )
    group.add_argument(
        "--storm-rate",
        type=float,
        default=1.0,
        help="storm events per simulated second (default: 1)",
    )
    group.add_argument(
        "--storm-rank-flips",
        type=int,
        default=8,
        help="flash-crowd: nodes promoted to the Zipf head (default: 8)",
    )
    group.add_argument(
        "--storm-burst",
        type=int,
        default=0,
        help="thrash: queries per burst (default: threshold_c + 1)",
    )


def _add_fluctuation_arguments(parser: argparse.ArgumentParser) -> None:
    """Peer-fluctuation flags shared by ``simulate`` and ``chaos``."""
    group = parser.add_argument_group("peer fluctuation")
    group.add_argument(
        "--mean-session",
        type=float,
        default=0.0,
        help=(
            "mean alive-session length in simulated seconds (Pareto); "
            "enables the crash-restart lifecycle (0 keeps it off)"
        ),
    )
    group.add_argument(
        "--mean-downtime",
        type=float,
        default=0.0,
        help=(
            "mean downtime (MTTR) in simulated seconds (log-normal); "
            "required whenever anything crashes"
        ),
    )
    group.add_argument(
        "--session-alpha",
        type=float,
        default=1.5,
        help="Pareto tail index of session lengths (default: 1.5)",
    )
    group.add_argument(
        "--downtime-sigma",
        type=float,
        default=0.75,
        help="log-space shape of the downtime distribution (default: 0.75)",
    )
    group.add_argument(
        "--diurnal-amplitude",
        type=float,
        default=0.0,
        help=(
            "relative amplitude of the diurnal arrival-rate curve in "
            "[0, 1) (0 disables it)"
        ),
    )
    group.add_argument(
        "--diurnal-period",
        type=float,
        default=86_400.0,
        help="period of the diurnal curve in seconds (default: one day)",
    )
    group.add_argument(
        "--regional-rate",
        type=float,
        default=0.0,
        help=(
            "correlated regional failure bursts per simulated second "
            "(0 disables them)"
        ),
    )
    group.add_argument(
        "--regional-radius",
        type=int,
        default=2,
        help="BFS radius of the neighborhood a burst crashes (default: 2)",
    )
    group.add_argument(
        "--damp-suppress",
        type=float,
        default=0.0,
        help=(
            "flap-damping penalty at which a peer is suppressed "
            "(0 disables damping)"
        ),
    )
    group.add_argument(
        "--damp-reuse",
        type=float,
        default=1.0,
        help="penalty below which a suppressed peer is released",
    )
    group.add_argument(
        "--damp-penalty",
        type=float,
        default=1.0,
        help="penalty charged per crash (default: 1)",
    )
    group.add_argument(
        "--damp-half-life",
        type=float,
        default=300.0,
        help="exponential half-life of the penalty decay (default: 300)",
    )


def _fluctuation_overrides(args: argparse.Namespace) -> dict:
    """SimulationConfig overrides from the peer-fluctuation flags."""
    from repro.workload.sessions import SessionPlan

    plan = SessionPlan(
        mean_session=args.mean_session,
        session_alpha=args.session_alpha,
        mean_downtime=args.mean_downtime,
        downtime_sigma=args.downtime_sigma,
        diurnal_amplitude=args.diurnal_amplitude,
        diurnal_period=args.diurnal_period,
        regional_rate=args.regional_rate,
        regional_radius=args.regional_radius,
        damp_penalty=args.damp_penalty,
        damp_half_life=args.damp_half_life,
        damp_suppress=args.damp_suppress,
        damp_reuse=args.damp_reuse,
    )
    return {"sessions": plan} if plan.enabled else {}


def _add_interest_arguments(parser: argparse.ArgumentParser) -> None:
    """Interest-policy flags shared by ``simulate`` and ``chaos``."""
    group = parser.add_argument_group("interest policy")
    group.add_argument(
        "--interest-policy",
        default="window",
        choices=("window", "ewma", "adaptive"),
        help=(
            "per-node interest estimator: the paper's sliding window, "
            "the EWMA ablation, or the self-tuning adaptive policy "
            "(dup-adaptive forces 'adaptive' regardless)"
        ),
    )
    group.add_argument(
        "--threshold-floor",
        type=int,
        default=2,
        help="adaptive policy: lower bound on the per-node threshold",
    )
    group.add_argument(
        "--threshold-ceiling",
        type=int,
        default=10,
        help="adaptive policy: upper bound on the per-node threshold",
    )
    group.add_argument(
        "--adaptive-gain",
        type=float,
        default=0.5,
        help=(
            "adaptive policy: threshold per observed query-per-window "
            "(a node seeing r queries/TTL settles near round(gain * r))"
        ),
    )


def _interest_overrides(args: argparse.Namespace) -> dict:
    """SimulationConfig overrides from the interest-policy flags."""
    overrides: dict = {}
    if args.interest_policy != "window":
        overrides["interest_policy"] = args.interest_policy
    if args.threshold_floor != 2:
        overrides["threshold_floor"] = args.threshold_floor
    if args.threshold_ceiling != 10:
        overrides["threshold_ceiling"] = args.threshold_ceiling
    if args.adaptive_gain != 0.5:
        overrides["adaptive_gain"] = args.adaptive_gain
    return overrides


def _overload_overrides(args: argparse.Namespace) -> dict:
    """SimulationConfig overrides from the overload/storm flags."""
    from repro.net.overload import OverloadPlan
    from repro.workload.storms import StormPhase, StormPlan

    overrides: dict = {}
    plan = OverloadPlan(
        inbox_capacity=args.inbox_capacity,
        service_rate=args.service_rate,
        max_subscribers=args.max_subscribers,
        authority_coalesce_gap=args.coalesce_gap,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )
    if plan.enabled:
        overrides["overload"] = plan
    if args.storm:
        start = args.storm_start or args.warmup
        duration = args.storm_duration or max(
            args.duration - start, 1.0
        )
        overrides["storms"] = StormPlan(
            phases=tuple(
                StormPhase(
                    kind=kind,
                    start=start,
                    duration=duration,
                    rate=args.storm_rate,
                    rank_flips=args.storm_rank_flips,
                    burst=args.storm_burst,
                )
                for kind in args.storm
            )
        )
    return overrides


def _fault_overrides(args: argparse.Namespace) -> dict:
    """SimulationConfig overrides from the resilience flags."""
    from repro.net.faults import FaultPlan, PartitionWindow

    overrides: dict = {}
    plan_fields: dict = {}
    if args.loss_rate > 0:
        plan_fields["loss_rate"] = args.loss_rate
    if args.duplicate_rate > 0:
        plan_fields["duplicate_rate"] = args.duplicate_rate
    if args.silent_failures:
        plan_fields["silent_failures"] = True
    if args.partition_at > 0:
        plan_fields["partitions"] = (
            PartitionWindow(
                start=args.partition_at,
                duration=args.partition_duration,
                components=args.partition_components,
            ),
        )
    if plan_fields:
        overrides["faults"] = FaultPlan(**plan_fields)
    if args.retry_budget > 0:
        overrides["retry_budget"] = args.retry_budget
        overrides["ack_timeout"] = args.ack_timeout
        if args.retry_timeout_cap > 0:
            overrides["retry_timeout_cap"] = args.retry_timeout_cap
    if args.lease_ttl > 0:
        overrides["lease_ttl"] = args.lease_ttl
    if args.standbys > 0:
        overrides["authority_standbys"] = args.standbys
        overrides["failover_timeout"] = args.failover_timeout
    if args.authority_crash_at > 0:
        overrides["authority_crash_at"] = args.authority_crash_at
    if args.audit_interval > 0:
        overrides["audit_interval"] = args.audit_interval
    return overrides


def _command_list() -> int:
    print("experiments:")
    for name in list_experiments():
        print(f"  {name}")
    print("schemes:")
    for name in available_schemes():
        print(f"  {name}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    from repro.engine.parallel import (
        resolve_workers,
        set_default_event_sink,
        set_default_progress,
    )
    from repro.engine.telemetry import TelemetryWriter
    from repro.errors import ExperimentError
    from repro.experiments.registry import format_failure_table, run_all

    runner = get_experiment(args.experiment)
    workers = resolve_workers(args.workers)

    def progress(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    kwargs = dict(
        scale=args.scale,
        replications=args.replications,
        seed=args.seed,
        workers=workers,
    )
    failures: list = []
    if args.keep_going and runner is run_all:
        kwargs.update(keep_going=True, failures=failures)
    writer = TelemetryWriter(args.telemetry_out) if args.telemetry_out else None
    previous = set_default_progress(progress)
    previous_sink = set_default_event_sink(writer)
    try:
        outcome = runner(**kwargs)
    except ExperimentError as error:
        if not args.keep_going:
            raise
        failures.extend(getattr(error, "trial_failures", ()) or ())
        outcome = []
    finally:
        set_default_progress(previous)
        set_default_event_sink(previous_sink)
        if writer is not None:
            for failure in failures:
                writer.write_record(failure.to_record())
            writer.close()
            print(
                f"wrote {writer.written} telemetry records to "
                f"{args.telemetry_out}",
                file=sys.stderr,
            )
    results = outcome if isinstance(outcome, list) else [outcome]
    failed = bool(failures)
    for result in results:
        print(result.render())
        print()
        failed = failed or not result.all_shapes_hold
    if failures:
        print(format_failure_table(failures))
    return 1 if failed else 0


def _instrumented_run(
    config,
    trace_out,
    metrics_out,
    snapshot_interval,
    flight_out=None,
    telemetry_out=None,
    timeline_window=600.0,
):
    """Run one simulation with the requested observability attached.

    Returns ``(result, tracer)``; ``tracer`` is ``None`` when tracing
    was not requested.  ``flight_out`` dumps the protocol flight
    recorder as JSONL after the run; ``telemetry_out`` samples the
    tree-evolution timeline every ``timeline_window`` simulated seconds
    and exports the windowed series.
    """
    import dataclasses

    from repro.engine.simulation import Simulation
    from repro.metrics.export import export_registry, export_traces, write_jsonl

    # Fail on an unwritable output path now, not after an hours-long run.
    for path in (trace_out, metrics_out, flight_out, telemetry_out):
        if path:
            open(path, "w", encoding="utf-8").close()
    if flight_out and not config.flight_recorder:
        config = dataclasses.replace(config, flight_recorder=True)
    sim = Simulation(config)
    tracer = sim.enable_tracing() if trace_out else None
    if metrics_out:
        sim.enable_snapshots(interval=snapshot_interval)
    if telemetry_out:
        sim.enable_timeline(window=timeline_window)
    result = sim.run()
    if trace_out:
        count = export_traces(tracer, trace_out)
        print(f"wrote {count} trace records to {trace_out}")
    if metrics_out:
        count = export_registry(sim.registry, metrics_out)
        print(f"wrote {count} snapshot records to {metrics_out}")
    if flight_out:
        count = sim.dump_flight(flight_out)
        print(f"wrote {count} flight records to {flight_out}")
    if telemetry_out:
        count = write_jsonl(telemetry_out, sim.timeline.records())
        print(f"wrote {count} timeline records to {telemetry_out}")
    return result, tracer


def _command_simulate(args: argparse.Namespace) -> int:
    overrides = _fault_overrides(args)
    overrides.update(_overload_overrides(args))
    overrides.update(_fluctuation_overrides(args))
    overrides.update(_interest_overrides(args))
    if args.churn_rate > 0:
        from repro.workload.churn import ChurnConfig

        overrides["churn"] = ChurnConfig(
            join_rate=args.churn_rate, leave_rate=args.churn_rate
        )
    config = SimulationConfig(
        scheme=args.scheme,
        num_nodes=args.nodes,
        max_degree=args.degree,
        query_rate=args.rate,
        arrival=args.arrival,
        pareto_alpha=args.pareto_alpha,
        zipf_theta=args.theta,
        threshold_c=args.threshold,
        ttl=args.ttl,
        duration=args.duration,
        warmup=args.warmup,
        topology=args.topology,
        seed=args.seed,
        **overrides,
    )
    print(f"config: {config.describe()}")
    if (
        args.trace_out
        or args.metrics_out
        or args.flight_out
        or args.telemetry_out
    ):
        result, _ = _instrumented_run(
            config,
            args.trace_out,
            args.metrics_out,
            args.snapshot_interval,
            flight_out=args.flight_out,
            telemetry_out=args.telemetry_out,
            timeline_window=args.timeline_window,
        )
    else:
        result = run_simulation(config)
    print(result)
    if result.extras:
        print(f"extras: {dict(result.extras)}")
    print(f"wall: {result.wall_seconds:.1f}s")
    return 0


def _command_observe(args: argparse.Namespace) -> int:
    config = SimulationConfig(
        scheme=args.scheme,
        num_nodes=args.nodes,
        max_degree=args.degree,
        query_rate=args.rate,
        zipf_theta=args.theta,
        threshold_c=args.threshold,
        ttl=args.ttl,
        duration=args.duration,
        warmup=args.warmup,
        topology=args.topology,
        seed=args.seed,
        **_fault_overrides(args),
    )
    print(f"config: {config.describe()}")
    result, tracer = _instrumented_run(
        config, args.trace_out, args.metrics_out, args.snapshot_interval
    )
    print(result)
    summary = tracer.summary()
    print(
        f"traces: {summary['completed']} complete, "
        f"{summary['incomplete']} incomplete, {summary['open']} open "
        f"({tracer.untraced} in warm-up)"
    )
    tails = " ".join(
        f"{name}={value:g}" for name, value in tracer.percentiles().items()
    )
    print(f"latency percentiles (hops): {tails}")
    levels = tracer.hops_by_level()
    if levels:
        rendered = " ".join(
            f"L{level}:{hops}" for level, hops in levels.items()
        )
        print(f"request hops by tree level: {rendered}")
    if args.top > 0:
        for trace in tracer.slowest(args.top):
            print(f"  {trace}")
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    from repro.engine.simulation import Simulation
    from repro.workload.trace import QueryTrace

    if args.action == "make":
        trace = QueryTrace.synthesize(
            nodes=list(range(1, args.nodes)),  # node 0 is the authority
            rate=args.rate,
            duration=args.duration,
            seed=args.seed,
            arrival=args.arrival,
            zipf_theta=args.theta,
        )
        trace.save(args.path)
        print(
            f"wrote {len(trace)} events over {trace.duration:.0f}s "
            f"({trace.mean_rate():.3g}/s) to {args.path}"
        )
        return 0
    trace = QueryTrace.load(args.path)
    config = SimulationConfig(
        scheme=args.scheme,
        num_nodes=args.nodes,
        duration=max(trace.duration + 60.0, 120.0),
        warmup=0.0,
        seed=args.seed,
    )
    sim = Simulation(config)
    sim.use_trace(trace)
    result = sim.run()
    print(f"replayed {len(trace)} events: {result}")
    return 0


def _command_chaos(args: argparse.Namespace) -> int:
    from repro.engine.chaos import SCENARIOS, get_scenario

    if args.list_scenarios or args.scenario is None:
        print("chaos scenarios:")
        for name in sorted(SCENARIOS):
            print(f"  {name:10s} {SCENARIOS[name].description}")
        return 0
    scenario = get_scenario(args.scenario)
    overrides = _fault_overrides(args)
    overrides.update(_overload_overrides(args))
    overrides.update(_fluctuation_overrides(args))
    overrides.update(_interest_overrides(args))
    config = SimulationConfig(
        scheme=args.scheme,
        num_nodes=args.nodes,
        max_degree=args.degree,
        query_rate=args.rate,
        zipf_theta=args.theta,
        threshold_c=args.threshold,
        ttl=args.ttl,
        push_lead=args.push_lead,
        duration=args.duration,
        warmup=args.warmup,
        topology=args.topology,
        seed=args.seed,
        **overrides,
    )
    config = scenario.apply(config)
    print(f"scenario: {scenario.name} -- {scenario.description}")
    print(f"config: {config.describe()}")
    if args.flight_out or args.telemetry_out:
        result, _ = _instrumented_run(
            config,
            None,
            None,
            0.0,
            flight_out=args.flight_out,
            telemetry_out=args.telemetry_out,
            timeline_window=args.timeline_window,
        )
    else:
        result = run_simulation(config)
    print(result)
    if result.extras:
        chaos_keys = tuple(
            k
            for k in sorted(result.extras)
            if k.split("_")[0]
            in (
                "audit",
                "failover",
                "partition",
                "partitions",
                "standby",
                "session",
                "flap",
                "rejoin",
            )
        )
        for key in chaos_keys:
            print(f"  {key}: {result.extras[key]}")
        rest = {
            k: v for k, v in result.extras.items() if k not in chaos_keys
        }
        if rest:
            print(f"  other extras: {rest}")
    print(f"wall: {result.wall_seconds:.1f}s")
    return 0


def _command_top(args: argparse.Namespace) -> int:
    from repro.engine.telemetry import render_top
    from repro.metrics.export import read_jsonl

    print(render_top(read_jsonl(args.path), tail=args.tail))
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    runner = get_experiment(args.experiment)
    kwargs: dict = {}
    nodes = getattr(args, "nodes", None)
    keys = getattr(args, "keys", None)
    if nodes is not None or keys is not None:
        if args.experiment != "scale":
            print(
                "--nodes/--keys only apply to the 'scale' experiment",
                file=sys.stderr,
            )
            return 2
        # A single explicit grid point; unset knobs fall back to the
        # scale preset's largest grid entry.
        from repro.experiments.scale_study import GRIDS

        default_nodes, default_keys = GRIDS.get(
            args.scale, GRIDS["bench"]
        )[-1]
        kwargs["grid"] = (
            (nodes or default_nodes, keys or default_keys),
        )
    # Profiling fans out to nothing: the serial path is the one whose
    # per-event costs the profile is meant to expose, and cProfile only
    # sees the current process anyway.
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        outcome = runner(
            scale=args.scale,
            replications=args.replications,
            seed=args.seed,
            workers=1,
            **kwargs,
        )
    finally:
        profiler.disable()
    results = outcome if isinstance(outcome, list) else [outcome]
    for result in results:
        print(
            f"{result.experiment_id}: {len(result.rows)} rows, "
            f"shapes hold: {result.all_shapes_hold}"
        )
    print()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if args.out:
        stats.dump_stats(args.out)
        print(f"wrote raw profile data to {args.out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-dup`` console script."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "observe":
        return _command_observe(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "chaos":
        return _command_chaos(args)
    if args.command == "top":
        return _command_top(args)
    if args.command == "profile":
        return _command_profile(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
