"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """A failure inside the discrete-event simulation kernel."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a finished environment."""


class ProcessError(SimulationError):
    """A simulation process misbehaved (e.g. yielded a non-event)."""


class ConfigError(ReproError):
    """An invalid simulation or experiment configuration."""


class TopologyError(ReproError):
    """An invalid operation on a tree or overlay topology."""


class NodeNotFoundError(TopologyError):
    """A node id was not present in the topology."""


class ProtocolError(ReproError):
    """A protocol invariant was violated (PCX / CUP / DUP state machines)."""


class SubscriptionError(ProtocolError):
    """An invalid subscribe/unsubscribe/substitute transition in DUP."""


class CacheError(ReproError):
    """An invalid operation on an index cache."""


class WorkloadError(ReproError):
    """An invalid workload specification."""


class ExperimentError(ReproError):
    """A failure while running a paper experiment."""
