"""Confidence intervals for simulation output analysis.

The paper runs each configuration "until at least the 95% confidence
interval of the query latency is obtained".  We provide the two standard
estimators used for that:

- :func:`mean_confidence_interval` over independent replications, and
- :func:`batch_means_interval` over one long run split into batches.

Both use the Student-t quantile from :mod:`scipy.stats`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as _scipy_stats

from repro.stats.running import RunningStat


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean estimate with a symmetric confidence half-width.

    Attributes
    ----------
    mean:
        Point estimate of the mean.
    half_width:
        Half the width of the interval (``nan`` for < 2 samples).
    confidence:
        Confidence level, e.g. ``0.95``.
    count:
        Number of samples (replications or batches) behind the estimate.
    """

    mean: float
    half_width: float
    confidence: float
    count: int

    @property
    def low(self) -> float:
        """Lower bound of the interval."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound of the interval."""
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """Half-width divided by |mean| (``inf`` for mean 0)."""
        if self.mean == 0:
            return math.inf
        return abs(self.half_width / self.mean)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        if self.half_width != self.half_width:  # nan
            return False
        return self.low <= value <= self.high

    def __str__(self) -> str:
        if self.half_width != self.half_width:  # nan
            return f"{self.mean:.4g} (±n/a)"
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of i.i.d. samples.

    Parameters
    ----------
    samples:
        Observations, typically one summary value per replication.
    confidence:
        Confidence level in (0, 1).

    Returns
    -------
    ConfidenceInterval
        With ``half_width = nan`` when fewer than two samples are given.
    """
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    samples = [float(x) for x in samples]
    count = len(samples)
    if count == 0:
        return ConfidenceInterval(math.nan, math.nan, confidence, 0)
    stat = RunningStat()
    stat.extend(samples)
    if count == 1:
        return ConfidenceInterval(stat.mean, math.nan, confidence, 1)
    t_quantile = _scipy_stats.t.ppf((1 + confidence) / 2, df=count - 1)
    half_width = t_quantile * stat.stdev / math.sqrt(count)
    return ConfidenceInterval(stat.mean, half_width, confidence, count)


def batch_means_interval(
    observations: Sequence[float],
    batches: int = 20,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Batch-means confidence interval over one long output sequence.

    The sequence is split into ``batches`` contiguous batches; batch means
    are treated as approximately independent samples.  Used when only a
    single long simulation run is available.

    Parameters
    ----------
    observations:
        Per-query observations from a single run, in order.
    batches:
        Number of batches to split into (observations beyond an exact
        multiple are dropped from the tail).
    confidence:
        Confidence level in (0, 1).
    """
    if batches < 2:
        raise ValueError(f"need at least 2 batches, got {batches}")
    observations = [float(x) for x in observations]
    batch_size = len(observations) // batches
    if batch_size == 0:
        return mean_confidence_interval(observations, confidence)
    means = []
    for index in range(batches):
        chunk = observations[index * batch_size : (index + 1) * batch_size]
        means.append(sum(chunk) / batch_size)
    return mean_confidence_interval(means, confidence)
