"""Random variates used by the paper's workload model.

The paper (Section IV) draws from three distributions:

- **Exponential** inter-arrival times and message latencies.
- **Pareto** inter-arrival times with CDF ``F(x) = 1 - (k / (x + k))^alpha``
  (a Lomax / Pareto-II form shifted to start at 0).  For ``alpha > 1`` the
  mean is ``k / (alpha - 1)``, i.e. the mean *rate* is ``(alpha - 1) / k``;
  the paper sets ``k`` so this rate equals the sweep's lambda.
- **Zipf-like** placement of queries over nodes:
  ``P_i = (1 / i^theta) / sum_k (1 / k^theta)``.

Each distribution is a small object holding its parameters; sampling takes
the :class:`numpy.random.Generator` explicitly so streams stay controlled
by the caller.
"""

from __future__ import annotations

import math
from typing import Protocol

import numpy as np

from repro.errors import WorkloadError


class Distribution(Protocol):
    """Anything that can draw a non-negative float given a generator."""

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one variate."""
        ...

    @property
    def mean(self) -> float:
        """Theoretical mean of the distribution."""
        ...


class Deterministic:
    """A degenerate distribution always returning ``value``."""

    __slots__ = ("_value",)

    def __init__(self, value: float):
        if value < 0:
            raise WorkloadError(f"value must be non-negative, got {value}")
        self._value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        """Return the fixed value (``rng`` unused, kept for the protocol)."""
        return self._value

    @property
    def mean(self) -> float:
        """The fixed value."""
        return self._value

    def __repr__(self) -> str:
        return f"Deterministic({self._value})"


class Uniform:
    """Uniform distribution on ``[low, high]``."""

    __slots__ = ("_low", "_high")

    def __init__(self, low: float, high: float):
        if not 0 <= low <= high:
            raise WorkloadError(f"need 0 <= low <= high, got [{low}, {high}]")
        self._low = float(low)
        self._high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one uniform variate."""
        return float(rng.uniform(self._low, self._high))

    @property
    def mean(self) -> float:
        """Midpoint of the interval."""
        return (self._low + self._high) / 2

    def __repr__(self) -> str:
        return f"Uniform({self._low}, {self._high})"


class Exponential:
    """Exponential distribution parameterized by its mean.

    The paper uses mean 0.1 s for per-hop message latency and mean
    ``1 / lambda`` for query inter-arrival times.
    """

    __slots__ = ("_mean",)

    def __init__(self, mean: float):
        if mean <= 0:
            raise WorkloadError(f"mean must be positive, got {mean}")
        self._mean = float(mean)

    @classmethod
    def from_rate(cls, rate: float) -> "Exponential":
        """Construct from a rate (events per unit time)."""
        if rate <= 0:
            raise WorkloadError(f"rate must be positive, got {rate}")
        return cls(1.0 / rate)

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one exponential variate."""
        return float(rng.exponential(self._mean))

    @property
    def mean(self) -> float:
        """Theoretical mean."""
        return self._mean

    @property
    def rate(self) -> float:
        """Theoretical rate (1 / mean)."""
        return 1.0 / self._mean

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean})"


class Pareto:
    """The paper's heavy-tailed inter-arrival distribution.

    CDF ``F(x) = 1 - (k / (x + k))^alpha`` for ``x >= 0``.  Inversion gives
    ``x = k * (u^(-1/alpha) - 1)`` for uniform ``u``.  The paper uses
    ``alpha`` in {1.05, 1.20} and chooses ``k`` so that the mean rate
    ``(alpha - 1) / k`` equals the sweep's query arrival rate.
    """

    __slots__ = ("_alpha", "_k")

    def __init__(self, alpha: float, k: float):
        if alpha <= 0:
            raise WorkloadError(f"alpha must be positive, got {alpha}")
        if k <= 0:
            raise WorkloadError(f"k must be positive, got {k}")
        self._alpha = float(alpha)
        self._k = float(k)

    @classmethod
    def from_rate(cls, alpha: float, rate: float) -> "Pareto":
        """Construct with ``k`` chosen so the mean rate equals ``rate``.

        Requires ``alpha > 1`` (otherwise the mean is infinite and no such
        ``k`` exists).
        """
        if alpha <= 1:
            raise WorkloadError(
                f"mean rate undefined for alpha={alpha} <= 1"
            )
        if rate <= 0:
            raise WorkloadError(f"rate must be positive, got {rate}")
        return cls(alpha, (alpha - 1) / rate)

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one variate by CDF inversion."""
        u = rng.random()
        # Guard u == 0 which would overflow the power.
        while u == 0.0:  # pragma: no cover - probability ~0
            u = rng.random()
        return self._k * (u ** (-1.0 / self._alpha) - 1.0)

    @property
    def alpha(self) -> float:
        """Tail index; smaller means burstier."""
        return self._alpha

    @property
    def k(self) -> float:
        """Scale parameter."""
        return self._k

    @property
    def mean(self) -> float:
        """Theoretical mean (``inf`` for alpha <= 1)."""
        if self._alpha <= 1:
            return math.inf
        return self._k / (self._alpha - 1)

    def __repr__(self) -> str:
        return f"Pareto(alpha={self._alpha}, k={self._k})"


class LogNormal:
    """Log-normal distribution (used in latency-model extensions)."""

    __slots__ = ("_mu", "_sigma")

    def __init__(self, mu: float, sigma: float):
        if sigma < 0:
            raise WorkloadError(f"sigma must be non-negative, got {sigma}")
        self._mu = float(mu)
        self._sigma = float(sigma)

    @classmethod
    def from_mean(cls, mean: float, sigma: float = 0.5) -> "LogNormal":
        """Construct with the given arithmetic mean and log-space sigma."""
        if mean <= 0:
            raise WorkloadError(f"mean must be positive, got {mean}")
        mu = math.log(mean) - sigma * sigma / 2
        return cls(mu, sigma)

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one log-normal variate."""
        return float(rng.lognormal(self._mu, self._sigma))

    @property
    def mean(self) -> float:
        """Theoretical (arithmetic) mean."""
        return math.exp(self._mu + self._sigma * self._sigma / 2)

    def __repr__(self) -> str:
        return f"LogNormal(mu={self._mu}, sigma={self._sigma})"


class ZipfSelector:
    """Zipf-like selection of one item out of ``n`` ranked items.

    ``P_i = (1 / i^theta) / H_n(theta)`` for rank ``i`` in ``1..n``.
    ``theta = 0`` degenerates to uniform; large ``theta`` concentrates
    probability on the first few ranks ("hot spots" in the paper).

    Sampling uses a precomputed CDF and binary search, O(log n) per draw.
    """

    __slots__ = ("_n", "_theta", "_cdf")

    def __init__(self, n: int, theta: float):
        if n < 1:
            raise WorkloadError(f"need at least one item, got n={n}")
        if theta < 0:
            raise WorkloadError(f"theta must be non-negative, got {theta}")
        self._n = int(n)
        self._theta = float(theta)
        ranks = np.arange(1, self._n + 1, dtype=np.float64)
        weights = ranks**-self._theta
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, rng: np.random.Generator) -> int:
        """Draw a rank index in ``0..n-1`` (0 is the hottest)."""
        # ndarray.searchsorted skips the np.searchsorted dispatch wrapper;
        # the result is identical.
        return int(self._cdf.searchsorted(rng.random(), side="right"))

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` rank indices at once."""
        return self._cdf.searchsorted(
            rng.random(count), side="right"
        ).astype(np.int64)

    def probability(self, rank: int) -> float:
        """Probability of rank ``rank`` (0-based)."""
        if not 0 <= rank < self._n:
            raise WorkloadError(f"rank {rank} out of range [0, {self._n})")
        if rank == 0:
            return float(self._cdf[0])
        return float(self._cdf[rank] - self._cdf[rank - 1])

    @property
    def n(self) -> int:
        """Number of ranked items."""
        return self._n

    @property
    def theta(self) -> float:
        """Skewness parameter."""
        return self._theta

    def __repr__(self) -> str:
        return f"ZipfSelector(n={self._n}, theta={self._theta})"

    # -- shared-table access -------------------------------------------------
    def cumulative(self, rank: int) -> float:
        """CDF value at 0-based ``rank``: P(X <= rank)."""
        if not 0 <= rank < self._n:
            raise WorkloadError(f"rank {rank} out of range [0, {self._n})")
        return float(self._cdf[rank])

    def slice(self, lo: int, hi: int) -> "ZipfSlice":
        """The conditional distribution over ranks ``[lo, hi)``.

        Shares this selector's CDF table — no per-slice O(n) setup.
        """
        return ZipfSlice(self, lo, hi)


_SHARED_ZIPF: dict[tuple[int, float], ZipfSelector] = {}


def shared_zipf(n: int, theta: float) -> ZipfSelector:
    """A process-wide shared :class:`ZipfSelector` for ``(n, theta)``.

    Every multi-key engine draws keys from the same ranked Zipf law, but
    constructing a selector is O(n) (the cumsum over ranks).  With 4096
    keys sharded over worker processes the eager per-shard construction
    is pure duplicated setup; this memo builds the table once per
    process and hands out the same immutable selector.  Selectors are
    stateless between draws (the caller owns the RNG), so sharing is
    safe.
    """
    key = (int(n), float(theta))
    selector = _SHARED_ZIPF.get(key)
    if selector is None:
        selector = ZipfSelector(n, theta)
        _SHARED_ZIPF[key] = selector
    return selector


class ZipfSlice:
    """A Zipf law conditioned on a contiguous rank range ``[lo, hi)``.

    Used by the sharded scale engine: the key population follows one
    global Zipf law, each shard owns a rank range, and per-shard draws
    must be the *conditional* distribution so that the union over
    shards reproduces the global law exactly.  Sampling maps a uniform
    draw into the slice's CDF span — ``u' = cdf[lo-1] + u * mass`` —
    and binary-searches the shared table, so a slice is O(1) to build
    and O(log n) per draw, with no per-slice table copy.
    """

    __slots__ = ("_parent", "_lo", "_hi", "_base", "_mass")

    def __init__(self, parent: ZipfSelector, lo: int, hi: int):
        if not 0 <= lo < hi <= parent.n:
            raise WorkloadError(
                f"need 0 <= lo < hi <= {parent.n}, got [{lo}, {hi})"
            )
        self._parent = parent
        self._lo = int(lo)
        self._hi = int(hi)
        self._base = parent.cumulative(lo - 1) if lo > 0 else 0.0
        self._mass = parent.cumulative(hi - 1) - self._base

    def sample(self, rng: np.random.Generator) -> int:
        """Draw a *global* rank index in ``[lo, hi)``."""
        u = self._base + rng.random() * self._mass
        rank = int(self._parent._cdf.searchsorted(u, side="right"))
        # Clamp float round-off at the span edges.
        if rank < self._lo:
            return self._lo
        if rank >= self._hi:
            return self._hi - 1
        return rank

    @property
    def mass(self) -> float:
        """Total probability of the slice under the parent law.

        The sharded engine thins the global arrival rate by this factor
        so each shard sees exactly its share of the query stream.
        """
        return self._mass

    @property
    def lo(self) -> int:
        """First rank (inclusive) of the slice."""
        return self._lo

    @property
    def hi(self) -> int:
        """Last rank (exclusive) of the slice."""
        return self._hi

    def __repr__(self) -> str:
        return (
            f"ZipfSlice([{self._lo}, {self._hi}) of {self._parent!r}, "
            f"mass={self._mass:.4f})"
        )
