"""Running (single-pass) statistical estimators.

:class:`RunningStat` implements Welford's numerically stable online
algorithm for mean and variance; :class:`TimeWeightedStat` integrates a
piecewise-constant signal over simulated time (used for, e.g., average
number of subscribed nodes).  :func:`percentile` is the shared
linear-interpolation quantile estimator used for the tail-latency
metrics (p50/p95/p99).
"""

from __future__ import annotations

import math
from typing import Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` by linear interpolation.

    ``q`` is given in percent (0-100).  Returns ``nan`` for an empty
    sequence; matches numpy's default ("linear") interpolation so
    results are consistent with offline analysis of exported samples.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must lie in [0, 100], got {q}")
    if not values:
        return math.nan
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * (q / 100.0)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return float(ordered[int(rank)])
    fraction = rank - lower
    return float(ordered[lower] * (1 - fraction) + ordered[upper] * fraction)


class RunningStat:
    """Single-pass mean / variance / extrema accumulator (Welford).

    Example
    -------
    >>> stat = RunningStat()
    >>> for x in (2.0, 4.0, 6.0):
    ...     stat.add(x)
    >>> stat.mean
    4.0
    >>> stat.variance
    4.0
    """

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max", "_total")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total = 0.0

    def add(self, value: float) -> None:
        """Accumulate one observation."""
        value = float(value)
        self._count += 1
        self._total += value
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values) -> None:
        """Accumulate an iterable of observations."""
        for value in values:
            self.add(value)

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Return a new accumulator combining two (Chan et al. merge)."""
        merged = RunningStat()
        if self._count == 0:
            merged.__setstate(other)
            return merged
        if other._count == 0:
            merged.__setstate(self)
            return merged
        count = self._count + other._count
        delta = other._mean - self._mean
        merged._count = count
        merged._total = self._total + other._total
        merged._mean = self._mean + delta * other._count / count
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self._count * other._count / count
        )
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    def __setstate(self, source: "RunningStat") -> None:
        self._count = source._count
        self._mean = source._mean
        self._m2 = source._m2
        self._min = source._min
        self._max = source._max
        self._total = source._total

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of observations."""
        return self._total

    @property
    def mean(self) -> float:
        """Sample mean (``nan`` when empty)."""
        return self._mean if self._count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (``nan`` for fewer than 2 samples)."""
        if self._count < 2:
            return math.nan
        return self._m2 / (self._count - 1)

    @property
    def stdev(self) -> float:
        """Unbiased sample standard deviation."""
        variance = self.variance
        return math.sqrt(variance) if variance == variance else math.nan

    @property
    def minimum(self) -> float:
        """Smallest observation (``nan`` when empty)."""
        return self._min if self._count else math.nan

    @property
    def maximum(self) -> float:
        """Largest observation (``nan`` when empty)."""
        return self._max if self._count else math.nan

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return (
            f"RunningStat(count={self._count}, mean={self.mean:.6g}, "
            f"stdev={self.stdev:.6g})"
        )


class TimeWeightedStat:
    """Time-average of a piecewise-constant signal.

    Call :meth:`update` whenever the tracked value changes; the accumulator
    weights each value by how long it was held.

    Example
    -------
    >>> stat = TimeWeightedStat(start_time=0.0, value=0.0)
    >>> stat.update(at=10.0, value=4.0)   # value was 0 during [0, 10)
    >>> stat.mean(at=20.0)                # 0*10 + 4*10 over 20
    2.0
    """

    __slots__ = ("_last_time", "_value", "_area", "_start")

    def __init__(self, start_time: float = 0.0, value: float = 0.0):
        self._start = float(start_time)
        self._last_time = float(start_time)
        self._value = float(value)
        self._area = 0.0

    def update(self, at: float, value: float) -> None:
        """Record that the signal changed to ``value`` at time ``at``."""
        if at < self._last_time:
            raise ValueError(
                f"time moved backwards: {at} < {self._last_time}"
            )
        self._area += self._value * (at - self._last_time)
        self._last_time = float(at)
        self._value = float(value)

    @property
    def current(self) -> float:
        """The last recorded value."""
        return self._value

    def mean(self, at: float) -> float:
        """Time-average of the signal over ``[start, at]``."""
        if at < self._last_time:
            raise ValueError(
                f"time moved backwards: {at} < {self._last_time}"
            )
        elapsed = at - self._start
        if elapsed <= 0:
            return math.nan
        area = self._area + self._value * (at - self._last_time)
        return area / elapsed

    def __repr__(self) -> str:
        return (
            f"TimeWeightedStat(current={self._value}, "
            f"since={self._start})"
        )
