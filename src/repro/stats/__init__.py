"""Statistics substrate: running estimators, confidence intervals, variates.

Used by the simulation engine to compute the paper's two performance
metrics (average query latency, average query cost) together with 95 %
confidence intervals, and by the workload generators to draw the paper's
inter-arrival and placement distributions.
"""

from repro.stats.confidence import (
    ConfidenceInterval,
    batch_means_interval,
    mean_confidence_interval,
)
from repro.stats.distributions import (
    Deterministic,
    Distribution,
    Exponential,
    LogNormal,
    Pareto,
    Uniform,
    ZipfSelector,
)
from repro.stats.running import RunningStat, TimeWeightedStat, percentile

__all__ = [
    "ConfidenceInterval",
    "Deterministic",
    "Distribution",
    "Exponential",
    "LogNormal",
    "Pareto",
    "RunningStat",
    "TimeWeightedStat",
    "Uniform",
    "ZipfSelector",
    "batch_means_interval",
    "mean_confidence_interval",
    "percentile",
]
