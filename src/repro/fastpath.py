"""Runtime toggle for the simulator's optimised hot paths.

The event kernel carries a handful of fast paths (an inlined run loop and
a :class:`~repro.sim.core.Timeout` free-list) that are bit-identical to
the straightforward implementations but measurably faster.  They are
enabled by default and can be disabled for A/B verification with the
``REPRO_FAST`` environment variable (``REPRO_FAST=0``) or, in-process,
with :func:`set_enabled`.

Determinism contract: every simulation result — goldens, serial/parallel
fingerprints, metric counters — must be identical under both settings.
``tests/test_perf_fastpath.py`` enforces this by running the same
experiment under both flags and comparing fingerprints.

The flag is captured by :class:`~repro.sim.core.Environment` at
construction, so flipping it never affects a simulation that is already
running.
"""

from __future__ import annotations

import os

_FALSE_VALUES = ("0", "false", "no", "off")

#: Whether new environments use the optimised kernel paths.  Read once
#: per Environment construction; seed it from ``REPRO_FAST`` (default on).
ENABLED: bool = (
    os.environ.get("REPRO_FAST", "1").strip().lower() not in _FALSE_VALUES
)


def set_enabled(value: bool) -> bool:
    """Set the fast-path flag in-process; returns the previous value.

    Only environments constructed *after* the call observe the change —
    the flag is captured at :class:`~repro.sim.core.Environment`
    construction time.  Intended for the determinism regression tests;
    production configuration goes through ``REPRO_FAST``.
    """
    global ENABLED
    previous = ENABLED
    ENABLED = bool(value)
    return previous
